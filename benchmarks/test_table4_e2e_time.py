"""Table 4 — end-to-end execution time of a single training iteration.

For each workload: the original iteration time, the original excluding
operators the replayer does not support (the calibrated reference the paper
compares against), and the replayed benchmark's time.  The paper reports
replay errors of 5.4% (PARAM linear), 9.8% (ResNet), 4.3% (ASR) and 2.5%
(RM) against the calibrated original.
"""

from repro.bench.harness import compare_workload
from repro.bench.reporting import format_table
from repro.workloads import build_workload

from benchmarks.conftest import PAPER_WORKLOADS, save_report


def run_table4(paper_captures):
    comparisons = {}
    for name in PAPER_WORKLOADS:
        workload = build_workload(name)
        comparisons[name] = compare_workload(workload, capture=paper_captures[name])
    return comparisons


def test_table4_e2e_execution_time(benchmark, paper_captures):
    comparisons = benchmark.pedantic(run_table4, args=(paper_captures,), rounds=1, iterations=1)

    rows = []
    for name in PAPER_WORKLOADS:
        comparison = comparisons[name]
        rows.append([
            name,
            comparison.original_time_us / 1e3,
            comparison.original_time_excl_unsupported_us / 1e3,
            comparison.replay_time_us / 1e3,
            f"{comparison.replay_error * 100:.1f}%",
        ])
    text = format_table(
        ["Model", "Original (ms)", "Original excl. unsupported (ms)", "Replay (ms)", "Error"],
        rows,
        title="Table 4: end-to-end execution time of a single iteration",
    )
    save_report("table4_e2e_time", text)
    print("\n" + text)

    for name in PAPER_WORKLOADS:
        comparison = comparisons[name]
        # Replay matches the calibrated original within 10% for every
        # workload (paper errors: 2.5%-9.8%).
        assert comparison.replay_error < 0.10, name
        # The calibrated original never exceeds the raw original.
        assert comparison.original_time_excl_unsupported_us <= comparison.original_time_us + 1e-6
    # Workloads with full coverage need no calibration.
    assert comparisons["param_linear"].original_time_excl_unsupported_us == comparisons["param_linear"].original_time_us
    # ASR is the workload with the largest calibration gap.
    gaps = {
        name: comparisons[name].original_time_us - comparisons[name].original_time_excl_unsupported_us
        for name in PAPER_WORKLOADS
    }
    assert gaps["asr"] == max(gaps.values())
