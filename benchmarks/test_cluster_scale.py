"""Event-scheduler fleet throughput at 1024 ranks — the scale lock-in.

The thread-per-rank engine topped out around the host's thread budget;
the event-driven scheduler replays a 1024-rank DDP-RM what-if fleet on a
single thread.  This benchmark locks that capability in: the sweep must
*complete*, stay fully matched, and its fleet throughput (total replayed
operators across every rank per wall-clock second) is recorded in the
``cluster_scale`` section of ``BENCH_replay_throughput.json`` so the
number forms a trajectory across commits alongside the single-rank
replay-throughput floors.
"""

from repro.bench.throughput import (
    format_cluster_scale,
    merge_cluster_scale,
    run_cluster_scale_benchmark,
)

from benchmarks.conftest import save_report

WORLD_SIZE = 1024


def test_cluster_scale_1024_rank_sweep(benchmark):
    section = benchmark.pedantic(
        run_cluster_scale_benchmark,
        kwargs={"world_size": WORLD_SIZE},
        rounds=1,
        iterations=1,
    )

    path = merge_cluster_scale(section)
    text = format_cluster_scale(section)
    save_report("cluster_scale", text)
    print(f"\n{text}\nwrote {path}")

    # The sweep completed: every rank replayed, every collective matched.
    assert section["replicas"] == WORLD_SIZE
    assert section["engine"] == "event"
    assert section["matched_collectives"] > 0
    assert section["total_replayed_ops"] >= WORLD_SIZE  # every rank did work
    assert section["critical_path_us"] > 0

    # Fleet throughput floor (ranks x ops / sec).  Measured ~1,900 on the
    # CI-class host; 250 leaves an order-of-magnitude margin for slow
    # runners without letting the scheduler regress to unusable.
    assert section["rank_ops_per_sec"] > 250.0
