"""Table 3 — operator coverage rate across the evaluated workloads.

Coverage = fraction of a workload's (deduplicated) operators the replayer
can reproduce, by count and by execution time.  Paper values: PARAM linear
and ResNet at 100%/100%; ASR and RM below 100% in execution time because of
unsupported custom (and fused) operators.
"""

from repro.bench.reporting import format_table
from repro.core.registry import ReplaySupport
from repro.core.selection import OperatorSelector

from benchmarks.conftest import PAPER_WORKLOADS, save_report


def run_table3(paper_captures):
    selector = OperatorSelector(ReplaySupport())
    rows = []
    coverages = {}
    for name in PAPER_WORKLOADS:
        capture = paper_captures[name]
        selection = selector.select(capture.execution_trace, capture.profiler_trace)
        coverage = selection.coverage()
        coverages[name] = coverage
        rows.append([name, f"{coverage.count_coverage * 100:.1f}%", f"{coverage.time_coverage * 100:.1f}%"])
    text = format_table(
        ["Model", "Count coverage", "Execution time coverage"],
        rows,
        title="Table 3: operator coverage across workloads",
    )
    return text, coverages


def test_table3_operator_coverage(benchmark, paper_captures):
    text, coverages = benchmark.pedantic(run_table3, args=(paper_captures,), rounds=1, iterations=1)
    save_report("table3_coverage", text)
    print("\n" + text)

    # PARAM linear and ResNet: full coverage on both metrics.
    assert coverages["param_linear"].count_coverage == 1.0
    assert coverages["param_linear"].time_coverage == 1.0
    assert coverages["resnet"].count_coverage == 1.0
    assert coverages["resnet"].time_coverage == 1.0
    # ASR: count coverage stays high, execution-time coverage drops the most
    # (custom LSTM kernels dominate the gap).
    assert coverages["asr"].count_coverage > 0.90
    assert coverages["asr"].time_coverage < 0.90
    # RM: high count coverage, execution-time coverage below 100%.
    assert coverages["rm"].count_coverage > 0.90
    assert 0.80 < coverages["rm"].time_coverage < 1.0
    # ASR has the lowest execution-time coverage of all workloads.
    assert coverages["asr"].time_coverage == min(c.time_coverage for c in coverages.values())
