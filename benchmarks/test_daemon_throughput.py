"""Daemon throughput under concurrent clients — the service lock-in.

The replay daemon exists so many tenants can share one replay service;
this benchmark drives a real :class:`~repro.daemon.daemon.ReplayDaemon`
(with its HTTP front-end) from 8 concurrent client threads, each
submitting one-point sweep jobs with unique configurations (no cache
hits), and measures sustained jobs/sec through the full path: HTTP
submit -> fair queue -> executor -> replay -> HTTP result.  The number
is recorded in the ``daemon_throughput`` section of
``BENCH_replay_throughput.json`` so it forms a trajectory across commits
alongside the single-rank replay floors and the 1024-rank fleet number.
"""

from repro.bench.throughput import (
    format_daemon_throughput,
    merge_daemon_throughput,
    run_daemon_throughput_benchmark,
)

from benchmarks.conftest import save_report

CLIENTS = 8
JOBS_PER_CLIENT = 4


def test_daemon_throughput_8_clients(benchmark):
    section = benchmark.pedantic(
        run_daemon_throughput_benchmark,
        kwargs={"clients": CLIENTS, "jobs_per_client": JOBS_PER_CLIENT},
        rounds=1,
        iterations=1,
    )

    path = merge_daemon_throughput(section)
    text = format_daemon_throughput(section)
    save_report("daemon_throughput", text)
    print(f"\n{text}\nwrote {path}")

    # Every job from every client completed (nothing lost, nothing failed).
    assert section["jobs_total"] == CLIENTS * JOBS_PER_CLIENT
    assert section["jobs_completed"] == section["jobs_total"]
    # Unique configurations -> one cache entry per job, every one priced.
    assert section["cache_entries"] == section["jobs_total"]

    # Throughput floor: measured well above this on a CI-class host; the
    # floor only guards against the daemon path regressing to unusable
    # (e.g. a serialization or lock bottleneck dwarfing replay time).
    assert section["jobs_per_sec"] > 0.5
