"""Figure 8 — energy-efficiency sensitivity to the device power limit.

The GPU power limit is swept from 100 W to 350 W; energy efficiency
(throughput per watt, normalised to its maximum across the sweep) is
compared between each original workload and its generated benchmark.  The
claim: the replay tracks the original's sensitivity curve, so the benchmark
can stand in for the real workload in power-efficiency studies.
"""

from repro.bench.harness import run_original
from repro.bench.reporting import format_series
from repro.core.replayer import ReplayConfig, Replayer
from repro.hardware.power import PowerModel
from repro.hardware.specs import A100
from repro.workloads import build_workload

from benchmarks.conftest import PAPER_WORKLOADS, save_report

POWER_LIMITS = (100.0, 150.0, 200.0, 250.0, 300.0, 350.0)


def _efficiency(time_us, stats, limit):
    model = PowerModel(A100, limit)
    return model.energy_efficiency(1.0, time_us, stats.busy_fraction, stats.sm_utilization)


def _normalise(curve):
    peak = max(curve.values())
    return {limit: value / peak for limit, value in curve.items()}


def run_fig8(paper_captures):
    curves = {}
    for name in PAPER_WORKLOADS:
        capture = paper_captures[name]
        workload = build_workload(name)
        original_curve = {}
        replay_curve = {}
        for limit in POWER_LIMITS:
            original = run_original(workload, iterations=1, warmup_iterations=0, power_limit_w=limit)
            original_curve[limit] = _efficiency(
                original.mean_iteration_time_us, original.timeline_stats, limit
            )
            replay = Replayer(
                capture.execution_trace, capture.profiler_trace,
                ReplayConfig(device="A100", power_limit_w=limit),
            ).run()
            replay_curve[limit] = _efficiency(
                replay.mean_iteration_time_us, replay.timeline_stats, limit
            )
        curves[name] = (_normalise(original_curve), _normalise(replay_curve))
    return curves


def test_fig8_power_efficiency_sweep(benchmark, paper_captures):
    curves = benchmark.pedantic(run_fig8, args=(paper_captures,), rounds=1, iterations=1)

    series = {}
    for name, (original, replay) in curves.items():
        series[f"{name} original"] = original
        series[f"{name} replay"] = replay
    text = format_series(series, x_label="power limit (W)",
                         title="Figure 8: normalised energy efficiency vs device power limit")
    save_report("fig8_power_sweep", text)
    print("\n" + text)

    for name, (original, replay) in curves.items():
        # The replay tracks the original's curve point by point.
        for limit in POWER_LIMITS:
            assert abs(replay[limit] - original[limit]) < 0.10, (name, limit)
        # And follows the same trend direction between consecutive limits.
        limits = sorted(POWER_LIMITS)
        for low, high in zip(limits, limits[1:]):
            original_delta = original[high] - original[low]
            replay_delta = replay[high] - replay[low]
            if abs(original_delta) > 0.02:
                assert (original_delta > 0) == (replay_delta > 0), (name, low, high)
