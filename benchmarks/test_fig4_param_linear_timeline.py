"""Figure 4 — single-iteration runtime traces of PARAM linear vs its replay.

The paper shows the original and the replayed benchmark side by side in the
trace viewer: same end-to-end time (14.9 ms vs 14.2 ms), same per-operator
durations and interleaving, two CPU threads (main + autograd), with only the
framework wrapper nodes missing from the replay.  This benchmark reproduces
the comparable quantities: end-to-end time, per-operator GPU time for the
top operators, thread structure and kernel counts.
"""

from repro.bench.harness import replay_capture
from repro.bench.metrics import operator_gpu_time_breakdown
from repro.bench.reporting import format_table
from repro.et.comparator import TraceComparator

from benchmarks.conftest import save_report


def run_fig4(capture):
    replay = replay_capture(capture)
    original_ops = operator_gpu_time_breakdown(capture.kernel_launches)
    replay_ops = operator_gpu_time_breakdown(replay.kernel_launches)
    return replay, original_ops, replay_ops


def test_fig4_param_linear_timeline(benchmark, paper_captures):
    capture = paper_captures["param_linear"]
    replay, original_ops, replay_ops = benchmark.pedantic(
        run_fig4, args=(capture,), rounds=1, iterations=1
    )

    rows = [["end-to-end (ms)", capture.iteration_time_us / 1e3, replay.mean_iteration_time_us / 1e3]]
    for op_name in sorted(original_ops, key=original_ops.get, reverse=True)[:6]:
        rows.append([
            f"GPU time {op_name} (ms)",
            original_ops[op_name] / 1e3,
            replay_ops.get(op_name, 0.0) / 1e3,
        ])
    rows.append(["CPU threads", len(capture.profiler_trace.threads()),
                 len(replay.profiler_trace.threads())])
    rows.append(["GPU kernels", len(capture.profiler_trace.kernels()),
                 len(replay.profiler_trace.kernels())])
    text = format_table(["Quantity", "Original", "Replay"], rows,
                        title="Figure 4: PARAM linear, one training iteration")
    save_report("fig4_param_linear_timeline", text)
    print("\n" + text)

    # End-to-end time matches within a few percent (paper: 14.9 vs 14.2 ms).
    error = abs(replay.mean_iteration_time_us - capture.iteration_time_us) / capture.iteration_time_us
    assert error < 0.06
    # The original has the autograd thread; the replay issues everything
    # from the main thread (wrappers are not replayed).
    assert "autograd" in capture.profiler_trace.threads()
    # Per-operator GPU time matches for the dominant operators.
    report = TraceComparator().compare_operator_times(original_ops, replay_ops, top_k=5)
    assert report.mean_operator_error < 0.05
    # The replay launches the same number of GPU kernels.
    assert len(replay.profiler_trace.kernels()) == len(capture.profiler_trace.kernels())
