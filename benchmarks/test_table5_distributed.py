"""Table 5 — scalability evaluation on 8 nodes with 64 GPUs (RM).

The RM workload is trained data-parallel across 64 ranks (8-GPU NVLink
nodes, 200 Gb/s NIC per GPU); per-GPU execution time, SM utilisation, HBM
bandwidth and power are compared between the original run and the replayed
benchmark.  The paper reports a close match with the replay slightly
underestimating utilisation/bandwidth because of small communication-replay
inaccuracies.

Because data-parallel ranks are symmetric, the simulation captures and
replays a subset of ranks while the collective cost model still prices the
full 64-rank topology.
"""

from repro.bench.reporting import format_table
from repro.core.replayer import ReplayConfig, Replayer
from repro.workloads.ddp import DistributedRunner
from repro.workloads.rm import RMConfig, RMWorkload

from benchmarks.conftest import save_report

WORLD_SIZE = 64
RANKS_TO_SIMULATE = 2

#: "To enable large-scale execution, we adjust RM's parameters" (Section 6.6):
#: a larger global batch and heavier pooling than the single-GPU run.
LARGE_SCALE_CONFIG = dict(batch_size=2048, pooling_factor=64)


def run_table5():
    runner = DistributedRunner(
        lambda rank, world: RMWorkload(RMConfig(**LARGE_SCALE_CONFIG), rank=rank, world_size=world),
        world_size=WORLD_SIZE,
    )
    captures = runner.run(ranks_to_simulate=RANKS_TO_SIMULATE)
    original = DistributedRunner.aggregate_metrics(captures)

    replay_metrics = []
    for capture in captures:
        result = Replayer(
            capture.execution_trace, capture.profiler_trace,
            ReplayConfig(device="A100", rank=capture.rank),
        ).run()
        replay_metrics.append({
            "execution_time_ms": result.mean_iteration_time_ms,
            "sm_utilization_pct": result.system_metrics.sm_utilization_pct,
            "hbm_bandwidth_gbps": result.system_metrics.hbm_bandwidth_gbps,
            "gpu_power_w": result.system_metrics.gpu_power_w,
        })
    replay = {
        key: sum(metrics[key] for metrics in replay_metrics) / len(replay_metrics)
        for key in replay_metrics[0]
    }
    return original, replay


def test_table5_distributed_scalability(benchmark):
    original, replay = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    rows = [
        ["Execution time (ms)", original["execution_time_ms"], replay["execution_time_ms"]],
        ["SM utilization (%)", original["sm_utilization_pct"], replay["sm_utilization_pct"]],
        ["HBM bandwidth (GB/s)", original["hbm_bandwidth_gbps"], replay["hbm_bandwidth_gbps"]],
        ["GPU power (W)", original["gpu_power_w"], replay["gpu_power_w"]],
    ]
    text = format_table(
        ["Metric", "Original", "Replay"],
        rows,
        title=f"Table 5: RM on {WORLD_SIZE} GPUs (per-GPU averages, {RANKS_TO_SIMULATE} ranks simulated)",
    )
    save_report("table5_distributed", text)
    print("\n" + text)

    # Replay matches the original within 15% on every metric.
    for key in original:
        error = abs(replay[key] - original[key]) / original[key]
        assert error < 0.15, key
    # Communication exposure pushes per-GPU utilisation below the
    # single-GPU operating point (paper: 49.6% at 64 GPUs vs the near-100%
    # single-GPU run; the simulated workload is less communication-bound, so
    # the drop is smaller but in the same direction).
    assert original["sm_utilization_pct"] < 99.0
    assert original["execution_time_ms"] > 0.0
