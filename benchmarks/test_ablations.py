"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper tables/figures; they quantify why each design choice in
the reproduction matters:

* roofline vs pure-FLOP kernel cost model,
* value-aware vs value-agnostic embedding-index synthesis,
* profiler-guided multi-stream replay vs single-stream replay,
* parent/child operator deduplication on vs off.
"""

import pytest

from repro.bench.harness import capture_workload, replay_capture, unsupported_gpu_time_us
from repro.bench.reporting import format_table
from repro.core.replayer import ReplayConfig, Replayer
from repro.core.selection import OperatorSelector
from repro.core.tensors import EmbeddingValueConfig
from repro.et.analyzer import iter_top_level_operators
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.runtime import Runtime
from repro.workloads import build_workload
from repro.workloads.rm import RMConfig, RMWorkload

from benchmarks.conftest import save_report


def test_ablation_cost_model(benchmark, paper_captures):
    """Roofline vs pure-FLOP cost model: memory-bound workloads diverge."""

    def run():
        capture = paper_captures["rm"]
        roofline = Replayer(capture.execution_trace, capture.profiler_trace,
                            ReplayConfig(cost_model_mode="roofline")).run()
        flops_only = Replayer(capture.execution_trace, capture.profiler_trace,
                              ReplayConfig(cost_model_mode="flops")).run()
        return roofline, flops_only

    roofline, flops_only = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["roofline (ms)", roofline.mean_iteration_time_ms],
        ["flops-only (ms)", flops_only.mean_iteration_time_ms],
    ]
    text = format_table(["Cost model", "RM replay time"], rows, title="Ablation: kernel cost model")
    save_report("ablation_costmodel", text)
    print("\n" + text)
    # RM is embedding/memory heavy: dropping the bandwidth roof makes the
    # model substantially optimistic.
    assert flops_only.mean_iteration_time_us < 0.8 * roofline.mean_iteration_time_us


def test_ablation_embedding_values(benchmark, paper_captures):
    """Value-aware index synthesis matters for embedding-heavy replay accuracy."""

    def run():
        capture = paper_captures["rm"]
        value_aware = replay_capture(capture)
        value_agnostic = Replayer(
            capture.execution_trace, capture.profiler_trace,
            ReplayConfig(embedding_config=None),
        ).run()
        return capture, value_aware, value_agnostic

    capture, value_aware, value_agnostic = benchmark.pedantic(run, rounds=1, iterations=1)
    # Compare against the Table 4 calibrated reference (the original minus
    # the GPU time of operators the replayer skips).
    reference = capture.iteration_time_us - unsupported_gpu_time_us(capture)
    rows = [
        ["original excl. unsupported (ms)", reference / 1e3],
        ["replay with empirical index values (ms)", value_aware.mean_iteration_time_ms],
        ["replay with shape-only index tensors (ms)", value_agnostic.mean_iteration_time_ms],
    ]
    text = format_table(["Configuration", "Time"], rows, title="Ablation: embedding index values")
    save_report("ablation_embedding_values", text)
    print("\n" + text)
    error_aware = abs(value_aware.mean_iteration_time_us - reference)
    error_agnostic = abs(value_agnostic.mean_iteration_time_us - reference)
    # Shape-only index tensors lose the access-pattern information and make
    # the embedding kernels slower than the original (Section 4.4).
    assert value_agnostic.mean_iteration_time_us > value_aware.mean_iteration_time_us
    assert error_aware < error_agnostic


def test_ablation_parallel_streams(benchmark):
    """Profiler-guided stream placement preserves compute/comm overlap."""

    def run():
        dist = DistributedContext(rank=0, world_size=16)
        runtime = Runtime("A100", dist=dist)
        workload = RMWorkload(RMConfig(), rank=0, world_size=16)
        capture = capture_workload(workload, warmup_iterations=0, runtime=runtime)
        capture.execution_trace.metadata["world_size"] = 16
        multi_stream = Replayer(capture.execution_trace, capture.profiler_trace,
                                ReplayConfig(use_streams=True)).run()
        single_stream = Replayer(capture.execution_trace, capture.profiler_trace,
                                 ReplayConfig(use_streams=False)).run()
        return capture, multi_stream, single_stream

    capture, multi_stream, single_stream = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["original (ms)", capture.iteration_time_us / 1e3],
        ["replay, profiler-guided streams (ms)", multi_stream.mean_iteration_time_ms],
        ["replay, single stream (ms)", single_stream.mean_iteration_time_ms],
    ]
    text = format_table(["Configuration", "Time"], rows, title="Ablation: parallel stream execution")
    save_report("ablation_streams", text)
    print("\n" + text)
    # Serialising everything onto one stream removes compute/communication
    # overlap and overestimates the iteration time.
    assert single_stream.mean_iteration_time_us > multi_stream.mean_iteration_time_us
    error_multi = abs(multi_stream.mean_iteration_time_us - capture.iteration_time_us)
    error_single = abs(single_stream.mean_iteration_time_us - capture.iteration_time_us)
    assert error_multi < error_single


def test_ablation_operator_selection(benchmark, paper_captures):
    """Parent/child dedup halts double-counting of composite operators."""

    def run():
        capture = paper_captures["param_linear"]
        deduplicated = iter_top_level_operators(capture.execution_trace)
        all_operators = capture.execution_trace.operators()
        replay = replay_capture(capture)
        return capture, deduplicated, all_operators, replay

    capture, deduplicated, all_operators, replay = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["operators in trace", len(all_operators)],
        ["operators after dedup", len(deduplicated)],
        ["original (ms)", capture.iteration_time_us / 1e3],
        ["replay of deduplicated plan (ms)", replay.mean_iteration_time_ms],
    ]
    text = format_table(["Quantity", "Value"], rows, title="Ablation: operator selection (dedup)")
    save_report("ablation_selection", text)
    print("\n" + text)
    # aten::linear contributes three trace nodes (linear, t, addmm) but only
    # one replayed operator; without dedup the replay would execute the GEMM
    # twice per layer.
    assert len(deduplicated) < len(all_operators)
    assert replay.mean_iteration_time_us == pytest.approx(capture.iteration_time_us, rel=0.06)
