"""Figure 9 — subtrace replay of the RM forward pass.

A ``record_function`` label delimits the forward pass; the replayer then
replays only the operators under that label, repeatedly, and the measured
subtrace time matches the same segment of the original run while everything
outside the label is left out.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.replayer import ReplayConfig, Replayer

from benchmarks.conftest import save_report

FORWARD_LABEL = "## forward ##"


def run_fig9(capture):
    # The original GPU time of the labelled segment, restricted to the
    # operators the replayer supports (unsupported customs are skipped in
    # the replay, exactly as in the full-trace comparison of Table 4).
    from repro.core.selection import OperatorSelector

    forward_selection = OperatorSelector().select(
        capture.execution_trace, capture.profiler_trace, subtrace_label=FORWARD_LABEL
    )
    forward_gpu_time = forward_selection.coverage().supported_gpu_time_us

    subtrace_results = [
        Replayer(
            capture.execution_trace, capture.profiler_trace,
            ReplayConfig(subtrace_label=FORWARD_LABEL, iterations=1),
        ).run()
        for _ in range(2)  # two replay iterations, as in the paper's figure
    ]
    full_result = Replayer(
        capture.execution_trace, capture.profiler_trace, ReplayConfig(iterations=1)
    ).run()
    return forward_gpu_time, subtrace_results, full_result


def test_fig9_subtrace_replay(benchmark, paper_captures):
    capture = paper_captures["rm"]
    forward_gpu_time, subtrace_results, full_result = benchmark.pedantic(
        run_fig9, args=(capture,), rounds=1, iterations=1
    )

    rows = [
        ["original forward-segment GPU time (ms)", forward_gpu_time / 1e3],
        ["subtrace replay #1 (ms)", subtrace_results[0].mean_iteration_time_ms],
        ["subtrace replay #2 (ms)", subtrace_results[1].mean_iteration_time_ms],
        ["full replay (ms)", full_result.mean_iteration_time_ms],
        ["subtrace ops", subtrace_results[0].replayed_ops],
        ["full-trace ops", full_result.replayed_ops],
    ]
    text = format_table(["Quantity", "Value"], rows, title="Figure 9: RM forward-pass subtrace replay")
    save_report("fig9_subtrace", text)
    print("\n" + text)

    first, second = subtrace_results
    # Repeated subtrace replays are consistent with each other (paper: 9.8
    # vs 9.7 ms across iterations).
    assert abs(first.mean_iteration_time_us - second.mean_iteration_time_us) < 0.05 * first.mean_iteration_time_us
    # The subtrace replay captures the original segment's GPU time.
    assert first.timeline_stats.total_kernel_time_us == pytest.approx(forward_gpu_time, rel=0.20)
    # Only the target subtrace is replayed: fewer operators, less time.
    assert first.replayed_ops < full_result.replayed_ops
    assert first.mean_iteration_time_us < full_result.mean_iteration_time_us
