"""Figure 6 — per-kernel micro-architectural similarity for ResNet.

The paper compares the top-10 CUDA kernels (by runtime) of ResNet and its
replay on IPC, L1 hit rate, L2 hit rate and SM throughput, normalised to the
original, and reports the overall deviation across all kernels within 2%.
"""

from repro.bench.harness import replay_capture
from repro.bench.metrics import kernel_counters_by_name, top_kernel_names
from repro.bench.reporting import format_table
from repro.hardware.counters import aggregate_kernel_counters
from repro.hardware.specs import A100

from benchmarks.conftest import save_report


def run_fig6(capture):
    replay = replay_capture(capture)
    original_counters = kernel_counters_by_name(capture.kernel_launches, A100)
    replay_counters = kernel_counters_by_name(replay.kernel_launches, A100)
    top = top_kernel_names(capture.kernel_launches, top_k=10)
    return original_counters, replay_counters, top


def test_fig6_microarchitectural_similarity(benchmark, paper_captures):
    capture = paper_captures["resnet"]
    original_counters, replay_counters, top = benchmark.pedantic(
        run_fig6, args=(capture,), rounds=1, iterations=1
    )

    rows = []
    for name in top:
        original = original_counters[name]
        replay = replay_counters.get(name)
        assert replay is not None, f"kernel {name} missing from the replay"
        rows.append([
            name,
            replay.ipc / original.ipc if original.ipc else 1.0,
            replay.l1_hit_rate / original.l1_hit_rate if original.l1_hit_rate else 1.0,
            replay.l2_hit_rate / original.l2_hit_rate if original.l2_hit_rate else 1.0,
            replay.sm_throughput / original.sm_throughput if original.sm_throughput else 1.0,
        ])
    overall_original = aggregate_kernel_counters(original_counters.values())
    overall_replay = aggregate_kernel_counters(replay_counters.values())
    rows.append([
        "overall",
        overall_replay.ipc / overall_original.ipc,
        overall_replay.l1_hit_rate / overall_original.l1_hit_rate,
        overall_replay.l2_hit_rate / overall_original.l2_hit_rate,
        overall_replay.sm_throughput / overall_original.sm_throughput,
    ])
    text = format_table(
        ["Kernel", "IPC (norm)", "L1 hit rate (norm)", "L2 hit rate (norm)", "SM throughput (norm)"],
        rows,
        title="Figure 6: per-kernel similarity, ResNet replay normalised to original",
    )
    save_report("fig6_microarch", text)
    print("\n" + text)

    # The top-10 kernels account for a large share of total GPU time.
    total = sum(c.duration_us for c in original_counters.values())
    top_share = sum(original_counters[name].duration_us for name in top) / total
    assert top_share > 0.40

    # Per-kernel ratios stay near 1 and the overall deviation is within 2%.
    for row in rows[:-1]:
        for ratio in row[1:]:
            assert 0.9 < ratio < 1.1
    for ratio in rows[-1][1:]:
        assert abs(ratio - 1.0) < 0.02
