"""Shared fixtures for the table/figure regeneration benchmarks.

Each benchmark file regenerates one table or figure of the paper's
evaluation section (see DESIGN.md for the per-experiment index).  Captures
of the four paper workloads are produced once per session and shared, and
every benchmark writes its rendered table/series to
``benchmarks/results/<experiment>.txt`` so the numbers quoted in
EXPERIMENTS.md can be re-derived from a single run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.bench.harness import CaptureResult, capture_workload
from repro.workloads import build_workload

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The four evaluated workloads of Section 6.2, at their paper-style
#: (default) configurations.
PAPER_WORKLOADS = ("param_linear", "resnet", "asr", "rm")


@pytest.fixture(scope="session")
def paper_captures() -> Dict[str, CaptureResult]:
    """One captured iteration per paper workload on the A100 model."""
    captures: Dict[str, CaptureResult] = {}
    for name in PAPER_WORKLOADS:
        workload = build_workload(name)
        captures[name] = capture_workload(workload, device="A100", warmup_iterations=1)
    return captures


@pytest.fixture(scope="session")
def paper_workload_factory():
    """Factory producing fresh paper-scale workload instances."""
    return build_workload


def save_report(name: str, text: str) -> Path:
    """Persist a rendered table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture
def report_writer():
    return save_report
