"""Table 1 — MLPerf training benchmarks and their last-update dates.

Static reference data that motivates Mystique: curated benchmark suites age
quickly relative to production workload churn.
"""

from repro.bench.reporting import MLPERF_TRAINING_BENCHMARKS, format_table

from benchmarks.conftest import save_report


def render_table1() -> str:
    rows = [
        [entry["area"], entry["model"], entry["last_updated"]]
        for entry in MLPERF_TRAINING_BENCHMARKS
    ]
    return format_table(["Area", "Model", "Last updated"], rows, title="Table 1: MLPerf training benchmarks")


def test_table1_mlperf_staleness(benchmark):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    save_report("table1_mlperf", text)
    print("\n" + text)
    assert "ResNet-50" in text
    assert "DLRM" in text
    assert len(MLPERF_TRAINING_BENCHMARKS) == 7
