"""Schema guard for the BENCH trajectory file.

``make bench`` must leave a schema-valid, versioned
``BENCH_replay_throughput.json`` at the repository root — scripts diff
these files across commits, so shape drift is a breaking change.  This
test writes a quick single-workload report through the real
``run_benchmark``/``write_report`` path and asserts the contract; the full
measurement in ``test_replay_throughput.py`` (which sorts after this file)
then overwrites the root file with the complete numbers.
"""

import json

from repro.bench.throughput import (
    BENCH_FILENAME,
    BENCH_SCHEMA_VERSION,
    run_benchmark,
    write_report,
)

#: Per-workload keys scripts parsing the trajectory rely on.
WORKLOAD_KEYS = {"ops", "scalar_ops_per_sec", "vectorized_ops_per_sec", "speedup"}


def test_bench_file_is_schema_valid_and_versioned():
    report = run_benchmark(workloads=("param_linear",), min_seconds=0.05)
    path = write_report(report)

    assert path.name == BENCH_FILENAME
    data = json.loads(path.read_text())

    assert data["schema_version"] == BENCH_SCHEMA_VERSION
    assert data["device"]
    assert data["workloads"], "BENCH file must cover at least one workload"
    for name, entry in data["workloads"].items():
        assert WORKLOAD_KEYS <= set(entry), name
        assert entry["ops"] > 0, name
        assert entry["scalar_ops_per_sec"] > 0, name
        assert entry["vectorized_ops_per_sec"] > 0, name
        # The vectorized path must at least match the scalar loop.
        assert entry["vectorized_ops_per_sec"] >= entry["scalar_ops_per_sec"], name
    # The profiler section accompanies the headline (RM) workload run.
    if "profiler" in data:
        assert data["profiler"]["baseline_ops_per_sec"] > 0
        assert data["profiler"]["profiled_ops_per_sec"] > 0


def test_bench_report_round_trips_to_custom_path(tmp_path):
    report = run_benchmark(workloads=("param_linear",), min_seconds=0.02)
    path = write_report(report, tmp_path / BENCH_FILENAME)
    assert json.loads(path.read_text()) == json.loads(json.dumps(report))
