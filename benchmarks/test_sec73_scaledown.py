"""Section 7.3 — scaled-down performance emulation.

The 64-GPU RM training run is reproduced on a 2-rank test setup: the
captured per-rank traces are replayed with the recorded (64-rank) process
groups, so the communication cost model injects the delay the full-scale
collectives would incur.  The estimate from the 2-rank emulation should
match the 64-GPU per-iteration time.
"""

from repro.bench.reporting import format_table
from repro.core.scaledown import ScaleDownConfig, ScaleDownEmulator
from repro.workloads.ddp import DistributedRunner
from repro.workloads.rm import RMConfig, RMWorkload

from benchmarks.conftest import save_report

WORLD_SIZE = 64
REPLAY_RANKS = 2


def run_sec73():
    runner = DistributedRunner(
        lambda rank, world: RMWorkload(RMConfig(batch_size=2048, pooling_factor=64), rank=rank, world_size=world),
        world_size=WORLD_SIZE,
    )
    captures = runner.run(ranks_to_simulate=REPLAY_RANKS)
    original_time_ms = DistributedRunner.aggregate_metrics(captures)["execution_time_ms"]

    emulator = ScaleDownEmulator(
        ScaleDownConfig(emulated_world_size=WORLD_SIZE, replay_ranks=REPLAY_RANKS)
    )
    outcome = emulator.emulate(
        [capture.execution_trace for capture in captures],
        [capture.profiler_trace for capture in captures],
    )
    return original_time_ms, outcome


def test_sec73_scaled_down_emulation(benchmark):
    original_time_ms, outcome = benchmark.pedantic(run_sec73, rounds=1, iterations=1)

    estimated_ms = outcome["estimated_iteration_time_ms"]
    rows = [
        [f"original ({WORLD_SIZE}-GPU) iteration time (ms)", original_time_ms],
        [f"estimate from {REPLAY_RANKS}-rank emulation (ms)", estimated_ms],
        ["error", f"{abs(estimated_ms - original_time_ms) / original_time_ms * 100:.1f}%"],
    ]
    text = format_table(["Quantity", "Value"], rows,
                        title="Section 7.3: scaled-down emulation of the 64-GPU RM run")
    save_report("sec73_scaledown", text)
    print("\n" + text)

    # The paper demonstrates reproducing the 64-GPU iteration time with only
    # 2 GPUs; the emulation estimate should land within 15%.
    assert abs(estimated_ms - original_time_ms) / original_time_ms < 0.15
    assert outcome["replay_ranks"] == REPLAY_RANKS
    assert outcome["emulated_world_size"] == WORLD_SIZE
