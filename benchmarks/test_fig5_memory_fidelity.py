"""Figure 5 (memory fidelity) — simulated peak device memory vs goldens.

The paper validates replay fidelity on system-level metrics, memory usage
among them.  This reproduction has no physical GPU to read ``nvidia-smi``
from, so memory fidelity is checked the other way around: the caching-
allocator simulation (``repro.memory``) replays each workload's trace and
its **peak allocated bytes** are compared against golden values pinned
from the analytical model — with the allocator's overhead (rounding,
segment granularity, fragmentation) bounded on top of the exact live-byte
curve.

Workloads, as in the paper's system-metrics figure:

* **PARAM-linear** (single A100),
* **RM** at paper scale — under this reproduction's dense-gradient
  assumption its embedding tables + gradients need ~61 GiB, so fidelity is
  measured on the 80 GiB NewPlatform part, and the A100 run doubles as the
  OOM-aware what-if: a structured OOM naming the embedding-backward op,
* **DDP** — a 2-rank data-parallel RM through ``DistributedRunner``.
"""

from repro.bench.reporting import format_table
from repro.memory import format_bytes, simulate_memory
from repro.workloads import DistributedRunner
from repro.workloads.rm import RMConfig, RMWorkload

from benchmarks.conftest import save_report

#: Golden simulated peaks (bytes), pinned from the deterministic
#: simulation; the assertion tolerance absorbs cross-version drift.
GOLDEN_PEAK_ALLOCATED = {
    "param_linear": 510_596_608,   # ~487 MiB on A100
    "rm": 65_700_617_216,          # ~61.2 GiB on NewPlatform
    "ddp_rm": 265_201_664,         # ~253 MiB per rank on A100
}
TOLERANCE = 0.02
#: The caching allocator may need more than the analytical live peak
#: (rounding + segment granularity) but never less, and not much more.
MAX_ALLOCATOR_OVERHEAD = 1.10

DDP_CONFIG = dict(
    batch_size=256, num_tables=8, rows_per_table=100_000,
    embedding_dim=64, pooling_factor=16,
)


def run_fig5_memory(paper_captures):
    reports = {}
    reports["param_linear"] = simulate_memory(
        paper_captures["param_linear"].execution_trace,
        device="A100", trace_name="param_linear",
    )
    reports["rm"] = simulate_memory(
        paper_captures["rm"].execution_trace,
        device="NewPlatform", trace_name="rm",
    )
    runner = DistributedRunner(
        lambda rank, world: RMWorkload(RMConfig(**DDP_CONFIG), rank=rank, world_size=world),
        world_size=2, warmup_iterations=0,
    )
    captures = runner.run()
    reports["ddp_rm"] = simulate_memory(
        captures[0].execution_trace, device="A100", trace_name="ddp_rm",
    )
    # The OOM-aware what-if: paper-scale RM against the 40 GiB A100.
    reports["rm@A100"] = simulate_memory(
        paper_captures["rm"].execution_trace, device="A100", trace_name="rm",
    )
    return reports


def test_fig5_memory_fidelity(benchmark, paper_captures):
    reports = benchmark.pedantic(
        run_fig5_memory, args=(paper_captures,), rounds=1, iterations=1
    )

    rows = []
    for name in ("param_linear", "rm", "ddp_rm"):
        report = reports[name]
        golden = GOLDEN_PEAK_ALLOCATED[name]
        rows.append([
            name,
            report.device,
            format_bytes(report.live_bytes_peak),
            format_bytes(report.peak_allocated_bytes),
            format_bytes(report.peak_reserved_bytes),
            f"{abs(report.peak_allocated_bytes - golden) / golden * 100.0:.2f} %",
        ])
    what_if = reports["rm@A100"]
    rows.append([
        "rm (what-if)", "A100", format_bytes(what_if.live_bytes_peak),
        "-", "-",
        f"OOM at {what_if.oom.op_name}" if what_if.oom else "unexpected fit",
    ])
    text = format_table(
        ["Workload", "Device", "Live peak", "Sim peak alloc", "Sim peak reserved",
         "vs golden"],
        rows,
        title="Figure 5 (memory): simulated peak device memory vs goldens",
    )
    save_report("fig5_memory_fidelity", text)
    print("\n" + text)

    for name in ("param_linear", "rm", "ddp_rm"):
        report = reports[name]
        golden = GOLDEN_PEAK_ALLOCATED[name]
        # Simulated peak tracks the golden value.
        assert abs(report.peak_allocated_bytes - golden) <= golden * TOLERANCE, name
        # The allocator never undershoots the analytical live peak, and its
        # overhead stays bounded.
        assert report.live_bytes_peak <= report.peak_allocated_bytes, name
        assert report.peak_allocated_bytes <= report.live_bytes_peak * MAX_ALLOCATOR_OVERHEAD, name
        assert report.peak_reserved_bytes >= report.peak_allocated_bytes, name
        assert report.fits, name

    # RM is the most memory-hungry workload (as in the paper's Figure 5).
    assert reports["rm"].peak_allocated_bytes == max(
        reports[name].peak_allocated_bytes for name in GOLDEN_PEAK_ALLOCATED
    )
    # The what-if run raises a structured OOM naming the failing operator.
    assert not what_if.fits
    assert what_if.oom.op_name.startswith("fbgemm::")
    assert what_if.oom.capacity_bytes == 40 * (1 << 30)
