"""Figure 2 — operator-category breakdown of a production model on 8 GPUs.

Reproduces the count / CPU-time / exposed-GPU-time fractions per operator
category (ATen, Comms, Fused, Custom) for the RM workload running
data-parallel on 8 GPUs.  The paper's qualitative findings:

* ATen operators dominate all three metrics,
* fused operators are second in count but negligible in GPU time,
* custom and communication operators are few but expensive on the GPU.
"""

from repro.bench.reporting import format_table
from repro.et.analyzer import ALL_CATEGORIES, ETAnalyzer
from repro.workloads.ddp import DistributedRunner
from repro.workloads.rm import RMConfig, RMWorkload

from benchmarks.conftest import save_report


def run_fig2():
    runner = DistributedRunner(
        lambda rank, world: RMWorkload(RMConfig(), rank=rank, world_size=world),
        world_size=8,
    )
    capture = runner.run(ranks_to_simulate=1)[0]
    analyzer = ETAnalyzer(capture.execution_trace, capture.profiler_trace)
    return analyzer.category_breakdown()


def test_fig2_operator_breakdown(benchmark):
    breakdown = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    count = breakdown.count_fractions()
    cpu = breakdown.cpu_time_fractions()
    gpu = breakdown.gpu_exposed_fractions()

    rows = [
        [category, count[category], cpu[category], gpu[category]]
        for category in ALL_CATEGORIES
    ]
    text = format_table(
        ["Category", "Count fraction", "CPU time fraction", "Exposed GPU time fraction"],
        rows,
        title="Figure 2: operator breakdown, RM on 8 GPUs",
    )
    save_report("fig2_operator_breakdown", text)
    print("\n" + text)

    # ATen dominates count and CPU time (paper: "lion share" on all metrics).
    assert count["aten"] == max(count.values())
    assert cpu["aten"] == max(cpu.values())
    # Communication and custom operators are few in number...
    assert count["comms"] < count["aten"]
    assert count["custom"] < count["aten"]
    # ...but both are visible in exposed GPU time.
    assert gpu["comms"] > 0.0
    assert gpu["custom"] > 0.0
    # Fused operators have negligible GPU-time impact.
    assert gpu["fused"] < 0.05
