"""Replay-engine throughput — the perf-regression lock-in.

Unlike the table/figure benchmarks (which regenerate the *paper's*
numbers), this one measures the replay engine itself and writes the
versioned ``BENCH_replay_throughput.json`` trajectory file at the repo
root: scalar vs vectorized execute-loop throughput for the PARAM-linear,
RM and DDP-RM traces, plus the :class:`~repro.profiling.ProfileHook` and
:class:`~repro.telemetry.TelemetryHook` overheads.  The assertions pin
the vectorized executor's headline win (>=10x on RM) and the <5% per-op
cost of either attached hook so future changes cannot silently regress
any of them.
"""

from repro.bench.throughput import (
    BENCH_WORKLOADS,
    HEADLINE_WORKLOAD,
    format_report,
    run_benchmark,
    write_report,
)

from benchmarks.conftest import save_report


def test_replay_throughput_trajectory(benchmark):
    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    path = write_report(report)
    text = format_report(report)
    save_report("replay_throughput", text)
    print(f"\n{text}\nwrote {path}")

    assert set(report["workloads"]) == set(BENCH_WORKLOADS)
    for name, entry in report["workloads"].items():
        assert entry["ops"] > 0, name
        assert entry["scalar_ops_per_sec"] > 0, name
        assert entry["vectorized_ops_per_sec"] > 0, name
        # The vectorized executor must never be a slowdown on any workload.
        assert entry["speedup"] >= 1.0, name

    # The ISSUE's headline target: >=10x replay throughput on RM (measured
    # at ~15-27x; 10 leaves noise margin without letting a real regression
    # through).
    assert report["workloads"][HEADLINE_WORKLOAD]["speedup"] >= 10.0

    # Attaching the profiler hook costs <5% on the scalar per-op loop.
    assert report["profiler"]["overhead_pct"] < 5.0

    # So does an attached, *enabled* telemetry hook (the ISSUE's budget);
    # the disabled path is separately pinned byte-identical by
    # tests/test_telemetry_fastpath.py.
    assert report["telemetry_overhead"]["overhead_pct"] < 5.0
