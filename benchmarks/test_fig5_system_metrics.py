"""Figure 5 — SM utilisation, HBM bandwidth and GPU power, original vs replay.

Single-A100 runs of all four workloads.  Paper findings: the workloads span
very different operating points (RM has the highest utilisation and power),
and the replayed benchmarks track the originals closely, with ASR showing
the largest HBM-bandwidth gap because of its unsupported custom operators.
"""

from repro.bench.harness import replay_capture
from repro.bench.reporting import format_table
from repro.et.comparator import TraceComparator

from benchmarks.conftest import PAPER_WORKLOADS, save_report


def run_fig5(paper_captures):
    results = {}
    for name in PAPER_WORKLOADS:
        capture = paper_captures[name]
        replay = replay_capture(capture)
        results[name] = (capture.system_metrics, replay.system_metrics)
    return results


def test_fig5_system_level_metrics(benchmark, paper_captures):
    results = benchmark.pedantic(run_fig5, args=(paper_captures,), rounds=1, iterations=1)

    rows = []
    for name in PAPER_WORKLOADS:
        original, replay = results[name]
        rows.append([
            name,
            original.sm_utilization_pct, replay.sm_utilization_pct,
            original.hbm_bandwidth_gbps, replay.hbm_bandwidth_gbps,
            original.gpu_power_w, replay.gpu_power_w,
        ])
    text = format_table(
        ["Model", "SM util orig (%)", "SM util replay (%)",
         "HBM orig (GB/s)", "HBM replay (GB/s)", "Power orig (W)", "Power replay (W)"],
        rows,
        title="Figure 5: system-level metrics, original vs replay (A100)",
    )
    save_report("fig5_system_metrics", text)
    print("\n" + text)

    comparator = TraceComparator()
    hbm_errors = {}
    for name in PAPER_WORKLOADS:
        original, replay = results[name]
        report = comparator.compare_metrics(original.as_dict(), replay.as_dict())
        hbm_errors[name] = abs(replay.hbm_bandwidth_gbps - original.hbm_bandwidth_gbps) / original.hbm_bandwidth_gbps
        # SM utilisation and power match within 15% for every workload.
        assert report.metric_errors["sm_utilization_pct"] < 0.15, name
        assert report.metric_errors["gpu_power_w"] < 0.15, name
    # The fully-covered workloads also match on HBM bandwidth.
    assert hbm_errors["param_linear"] < 0.10
    assert hbm_errors["resnet"] < 0.10
    # ASR shows the largest HBM-bandwidth gap (paper: "a little larger than
    # the others, due to the custom operators we do not yet support").
    assert hbm_errors["asr"] == max(hbm_errors.values())
    # RM is the most resource-hungry workload of the four (highest HBM use).
    assert results["rm"][0].hbm_bandwidth_gbps == max(results[n][0].hbm_bandwidth_gbps for n in PAPER_WORKLOADS)
