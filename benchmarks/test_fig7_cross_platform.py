"""Figure 7 — cross-platform validation (CPU, V100, A100).

Benchmarks are generated once, from traces collected on the A100, and then
run unchanged on every platform.  The figure normalises the replay's
execution time to the original's on each platform; values near 1.0 mean the
generated benchmark is portable without regeneration.  As in the paper, the
production workloads (ASR, RM) are only evaluated on the two GPU platforms.
"""

from repro.bench.harness import capture_workload, unsupported_gpu_time_us
from repro.bench.reporting import format_series
from repro.core.replayer import ReplayConfig, Replayer
from repro.workloads import build_workload

from benchmarks.conftest import PAPER_WORKLOADS, save_report

PLATFORMS = ("CPU", "V100", "A100")
#: The production workloads cannot run on the CPU-only platform (paper §6.7).
GPU_ONLY_WORKLOADS = ("asr", "rm")


def run_fig7(paper_captures):
    """Replay (generated from the A100 trace) vs original on each platform.

    As in Table 4, the original time is calibrated by removing the GPU time
    of the operators the replayer does not support, so the ratio isolates
    portability rather than coverage.
    """
    ratios = {}
    for name in PAPER_WORKLOADS:
        capture = paper_captures[name]
        platforms = [p for p in PLATFORMS if not (name in GPU_ONLY_WORKLOADS and p == "CPU")]
        ratios[name] = {}
        for platform in platforms:
            original = capture_workload(
                build_workload(name), device=platform, warmup_iterations=0
            )
            calibrated = original.iteration_time_us - unsupported_gpu_time_us(original)
            replay = Replayer(
                capture.execution_trace, capture.profiler_trace, ReplayConfig(device=platform)
            ).run()
            ratios[name][platform] = replay.mean_iteration_time_us / calibrated
    return ratios


def test_fig7_cross_platform_portability(benchmark, paper_captures):
    ratios = benchmark.pedantic(run_fig7, args=(paper_captures,), rounds=1, iterations=1)

    text = format_series(
        {name: ratios[name] for name in PAPER_WORKLOADS},
        x_label="platform",
        title="Figure 7: replay time normalised to original, per platform (trace captured on A100)",
    )
    save_report("fig7_cross_platform", text)
    print("\n" + text)

    for name, per_platform in ratios.items():
        for platform, ratio in per_platform.items():
            # Portability: the A100-captured benchmark tracks the original
            # within 15% on every platform, without regeneration.
            assert 0.85 < ratio < 1.15, (name, platform)
    # GPU-only workloads skip the CPU platform, as in the paper.
    assert "CPU" not in ratios["rm"]
    assert "CPU" in ratios["param_linear"]
