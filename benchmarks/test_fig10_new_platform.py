"""Figure 10 — early-stage evaluation of a new, experimental platform.

The generated benchmark has minimal software dependencies, so it can run on
a platform that only has the base stack installed, and predict the speedup
the real workload would see there.  The figure shows the speedup over CPU
for the existing platforms (where both original and replay run) and the
replay-predicted speedup for the new platform (where the original cannot yet
run).
"""

from repro.bench.harness import run_original
from repro.bench.reporting import format_series
from repro.core.replayer import ReplayConfig, Replayer
from repro.workloads import build_workload

from benchmarks.conftest import save_report

WORKLOAD = "param_linear"
ESTABLISHED_PLATFORMS = ("CPU", "V100", "A100")
NEW_PLATFORM = "NewPlatform"


def run_fig10(paper_captures):
    capture = paper_captures[WORKLOAD]
    original_times = {}
    replay_times = {}
    for platform in ESTABLISHED_PLATFORMS:
        original = run_original(build_workload(WORKLOAD), device=platform, iterations=1, warmup_iterations=0)
        original_times[platform] = original.mean_iteration_time_us
        replay = Replayer(
            capture.execution_trace, capture.profiler_trace, ReplayConfig(device=platform)
        ).run()
        replay_times[platform] = replay.mean_iteration_time_us
    # The new platform only runs the generated benchmark.
    new_platform_replay = Replayer(
        capture.execution_trace, capture.profiler_trace, ReplayConfig(device=NEW_PLATFORM)
    ).run()
    replay_times[NEW_PLATFORM] = new_platform_replay.mean_iteration_time_us
    return original_times, replay_times


def test_fig10_early_stage_platform_evaluation(benchmark, paper_captures):
    original_times, replay_times = benchmark.pedantic(
        run_fig10, args=(paper_captures,), rounds=1, iterations=1
    )

    original_speedup = {
        platform: original_times["CPU"] / original_times[platform]
        for platform in ESTABLISHED_PLATFORMS
    }
    replay_speedup = {
        platform: replay_times["CPU"] / replay_times[platform]
        for platform in list(ESTABLISHED_PLATFORMS) + [NEW_PLATFORM]
    }
    text = format_series(
        {"Original speedup over CPU": original_speedup, "Replay speedup over CPU": replay_speedup},
        x_label="platform",
        title="Figure 10: speedup over CPU, including the not-yet-supported new platform",
    )
    save_report("fig10_new_platform", text)
    print("\n" + text)

    # Replay-predicted speedups agree with the measured ones on the
    # established platforms.
    for platform in ESTABLISHED_PLATFORMS:
        assert abs(replay_speedup[platform] - original_speedup[platform]) < 0.15 * original_speedup[platform]
    # The new platform is predicted to beat the A100 (the point of the
    # early-stage evaluation).
    assert replay_speedup[NEW_PLATFORM] > replay_speedup["A100"] > replay_speedup["V100"] > 1.0
