#!/usr/bin/env python3
"""Batch sweep: replay a fleet of traces across devices through the service layer.

The production workflow Mystique targets is not "replay one trace once" but
"keep a repository of captured traces and continuously evaluate them across
candidate platforms and configurations".  This example drives that workflow
through :mod:`repro.service`:

1. capture three workloads (PARAM linear, ResNet, RM) and store their
   execution traces in a :class:`TraceRepository` directory,
2. sweep every trace across two devices and two power limits with a
   2-worker pool, caching each result,
3. run the same sweep again — every job is now a cache hit — and print the
   aggregate report.

The same sweep is available from the command line::

    python -m repro sweep --repo examples/trace_repo --cache examples/trace_repo/.cache \\
        --device A100 --device NewPlatform --power-limit 250 --power-limit 400

Run with:  python examples/batch_sweep.py
"""

from pathlib import Path

from repro.bench.aggregate import cache_summary_line, format_batch_report, format_device_aggregate
from repro.bench.harness import capture_workload
from repro.core.replayer import ReplayConfig
from repro.service import BatchReplayer, ResultCache, SweepRunner, SweepSpec, TraceRepository
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload
from repro.workloads.resnet import ResNetConfig, ResNetWorkload
from repro.workloads.rm import RMConfig, RMWorkload


def build_workloads():
    # Reduced configurations keep the example snappy; see the benchmarks/
    # directory for the paper-scale versions.
    return [
        ParamLinearWorkload(
            ParamLinearConfig(batch_size=64, num_layers=4, hidden_size=256, input_size=256)
        ),
        ResNetWorkload(ResNetConfig(batch_size=4, image_size=64, num_classes=100, blocks_per_stage=1)),
        RMWorkload(
            RMConfig(
                batch_size=32,
                num_tables=8,
                rows_per_table=10_000,
                embedding_dim=32,
                pooling_factor=4,
                bottom_mlp=(64, 32),
                top_mlp=(128, 64),
            )
        ),
    ]


def main() -> None:
    root = Path(__file__).resolve().parent / "trace_repo"
    repository = TraceRepository(root)

    print("== 1. capture three workloads into the trace repository ==")
    for workload in build_workloads():
        record = repository.add(workload.name, capture_workload(workload).execution_trace)
        print(f"   {record.name:14s} {record.num_nodes:4d} nodes  digest {record.digest[:12]}")

    print("== 2. sweep: traces x (A100, NewPlatform) x (250 W, 400 W), 2 workers ==")
    cache = ResultCache(root / ".cache")
    runner = SweepRunner(repository, BatchReplayer(cache=cache, max_workers=2, backend="thread"))
    spec = SweepSpec(
        devices=("A100", "NewPlatform"),
        axes={"power_limit_w": [250.0, 400.0]},
        base=ReplayConfig(iterations=2),
    )
    result = runner.run(spec)
    print(f"   {cache_summary_line(result.batch)}")

    print("== 3. run the identical sweep again: served from the cache ==")
    rerun = runner.run(spec)
    print(f"   {cache_summary_line(rerun.batch)}")
    print()
    print(format_batch_report(rerun.batch))
    print()
    print(format_device_aggregate(rerun.batch))


if __name__ == "__main__":
    main()
