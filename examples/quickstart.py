#!/usr/bin/env python3
"""Quickstart: capture a workload's execution trace and replay it as a benchmark.

This walks the whole Mystique pipeline on the PARAM linear workload, driven
entirely through the public :mod:`repro.api` facade:

1. run the model with the ExecutionGraphObserver and profiler hooks attached
   and capture one training iteration (Section 4.1 of the paper),
2. replay the captured traces as a generated benchmark — fluently, through
   the stage pipeline, with a progress hook watching each stage — and
   compare its execution time and system-level metrics against the original,
3. emit a standalone benchmark program plus its trace files, which can be
   run on its own (``python generated/param_linear_benchmark.py``).

Run with:  python examples/quickstart.py
"""

from pathlib import Path

import repro.api as api
from repro.core.generator import BenchmarkGenerator
from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload


def main() -> None:
    # A reduced PARAM linear model keeps the example fast; drop the config
    # argument to use the paper-scale 20-layer model.
    workload = ParamLinearWorkload(
        ParamLinearConfig(batch_size=256, num_layers=10, hidden_size=1024, input_size=1024)
    )

    print("== 1. capture one training iteration on the simulated A100 ==")
    capture = api.capture(workload, device="A100", warmup_iterations=1)
    print(f"   execution-trace nodes : {len(capture.execution_trace)}")
    print(f"   GPU kernels captured  : {len(capture.profiler_trace.kernels())}")
    print(f"   iteration time        : {capture.iteration_time_us / 1e3:.2f} ms")

    print("== 2. replay the trace as a generated benchmark ==")
    replay = api.replay(capture).on("A100").iterations(3).run()
    error = abs(replay.mean_iteration_time_us - capture.iteration_time_us) / capture.iteration_time_us
    print(f"   replayed operators    : {replay.replayed_ops // 3} per iteration")
    print(f"   replay time           : {replay.mean_iteration_time_ms:.2f} ms  (error {error * 100:.1f}%)")
    print(f"   SM utilization        : {capture.system_metrics.sm_utilization_pct:.1f}% -> "
          f"{replay.system_metrics.sm_utilization_pct:.1f}%")
    print(f"   HBM bandwidth         : {capture.system_metrics.hbm_bandwidth_gbps:.0f} -> "
          f"{replay.system_metrics.hbm_bandwidth_gbps:.0f} GB/s")
    print(f"   GPU power             : {capture.system_metrics.gpu_power_w:.0f} -> "
          f"{replay.system_metrics.gpu_power_w:.0f} W")

    print("== 3. emit a standalone benchmark program ==")
    output_dir = Path(__file__).resolve().parent / "generated"
    artifacts = BenchmarkGenerator(api.ReplayConfig(device="A100", iterations=5)).write(
        output_dir, workload.name, capture.execution_trace, capture.profiler_trace
    )
    print(f"   benchmark script      : {artifacts.script_path}")
    print(f"   execution trace       : {artifacts.et_path}")
    print("   run it with           : python " + str(artifacts.script_path))


if __name__ == "__main__":
    main()
