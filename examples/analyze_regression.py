"""The perf-regression watchdog, end to end, on a synthetic trajectory.

1. Record a few healthy benchmark payloads into an append-only
   ``TrajectoryStore`` (the JSON-lines history ``make bench`` grows via
   ``python -m repro analyze regressions --record``).
2. Check a new healthy payload against the history — everything passes.
3. Seed a drop (throughput halved, overhead through its ceiling) and
   watch the watchdog flag exactly the regressed metrics; this is the
   condition under which the CLI exits non-zero and fails CI.

The real trajectory lives at the repo root (``BENCH_history.jsonl``,
gitignored) and tracks ``BENCH_replay_throughput.json``.

Run with ``PYTHONPATH=src python examples/analyze_regression.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.insights import TrajectoryStore, check_regressions, format_regressions


def bench_payload(ops_per_sec: float, overhead_pct: float) -> dict:
    """A minimal BENCH-shaped payload (only watched metrics matter)."""
    return {
        "workloads": {
            "rm": {"vectorized_ops_per_sec": ops_per_sec, "speedup": 30.0},
        },
        "telemetry_overhead": {"overhead_pct": overhead_pct},
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = TrajectoryStore(Path(tmp) / "BENCH_history.jsonl")

        print("Recording three healthy runs into the trajectory ...")
        for ops in (95_000.0, 100_000.0, 105_000.0):
            store.append(bench_payload(ops, overhead_pct=0.4))
        print(f"  history entries: {len(store.entries())} "
              f"(median baseline: 100000 ops/s)\n")

        print("=== A healthy run checks clean ===")
        healthy = check_regressions(
            bench_payload(98_000.0, overhead_pct=0.2), history=store.history()
        )
        print(format_regressions(healthy))
        assert healthy.ok

        print("\n=== A seeded drop fails the watchdog ===")
        seeded = check_regressions(
            # Throughput halved (beyond the 30% drop threshold) and
            # telemetry overhead above its hard 5% ceiling.
            bench_payload(50_000.0, overhead_pct=7.5),
            history=store.history(),
        )
        print(format_regressions(seeded))
        assert not seeded.ok
        print(
            "\nThe CLI equivalent — `python -m repro analyze regressions` — "
            "exits 1 here,\nwhich is how `make bench` and CI turn this "
            "report into a failed build."
        )


if __name__ == "__main__":
    main()
