#!/usr/bin/env python3
"""Early-stage platform evaluation with a generated benchmark.

The scenario of Sections 6.7 and 7.2 of the paper: traces are collected
*once*, on the production platform (A100), and the generated benchmark is
then used to evaluate other platforms — including a new experimental
accelerator on which the full production software stack cannot run yet.

The example prints, for the ResNet workload:

* the original-vs-replay time on each established platform (portability,
  Figure 7), and
* the predicted speedup of the hypothetical "NewPlatform" over CPU/A100
  (early-stage evaluation, Figure 10).

Run with:  python examples/cross_platform_evaluation.py
"""

from repro.bench.harness import capture_workload, run_original
from repro.bench.reporting import format_table
from repro.core.replayer import ReplayConfig, Replayer
from repro.workloads.resnet import ResNetConfig, ResNetWorkload


def build_workload() -> ResNetWorkload:
    # Reduced batch keeps the example snappy; the benchmark harness uses the
    # paper-scale configuration.
    return ResNetWorkload(ResNetConfig(batch_size=32))


def main() -> None:
    print("capturing ResNet traces on the A100 ...")
    capture = capture_workload(build_workload(), device="A100", warmup_iterations=1)

    rows = []
    replay_times = {}
    for platform in ("CPU", "V100", "A100", "NewPlatform"):
        replay = Replayer(
            capture.execution_trace, capture.profiler_trace, ReplayConfig(device=platform)
        ).run()
        replay_times[platform] = replay.mean_iteration_time_us
        if platform == "NewPlatform":
            # The experimental platform cannot run the original workload yet:
            # only the generated benchmark produces a number here.
            rows.append([platform, "n/a", replay.mean_iteration_time_ms])
        else:
            original = run_original(build_workload(), device=platform, iterations=1)
            rows.append([platform, original.mean_iteration_time_ms, replay.mean_iteration_time_ms])

    print(format_table(
        ["Platform", "Original (ms)", "Generated benchmark (ms)"],
        rows,
        title="ResNet iteration time per platform (benchmark generated from the A100 trace)",
    ))

    speedup_rows = [
        [platform, replay_times["CPU"] / replay_times[platform]]
        for platform in ("CPU", "V100", "A100", "NewPlatform")
    ]
    print()
    print(format_table(
        ["Platform", "Predicted speedup over CPU"],
        speedup_rows,
        title="Early-stage platform evaluation (Figure 10 use case)",
    ))


if __name__ == "__main__":
    main()
