#!/usr/bin/env python3
"""Subtrace replay and the custom-operator registration interface.

Two of the fine-grained use cases enabled by the composability of the
execution trace (Sections 6.3 and 7.1 of the paper):

* **Subtrace replay** — a ``record_function`` label ("## forward ##") marks
  the RM forward pass; the replayer then reproduces only that segment,
  repeatedly, without touching the rest of the iteration.
* **Operator-type filtering** — replaying only the communication operators,
  which the paper uses to localise network problems in production.
* **Custom-operator registration** — the ASR workload uses fused LSTM
  kernels from a custom library; out of the box the replayer skips them
  (lower execution-time coverage), and registering the library through the
  interface closes the gap.

Run with:  python examples/subtrace_and_custom_ops.py
"""

from repro.bench.harness import capture_workload
from repro.bench.reporting import format_table
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, Replayer
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.runtime import Runtime
from repro.workloads.asr import ASRConfig, ASRWorkload
from repro.workloads.rm import RMConfig, RMWorkload


def subtrace_replay_demo() -> None:
    print("capturing a distributed RM iteration (4 ranks) ...")
    dist = DistributedContext(rank=0, world_size=4)
    runtime = Runtime("A100", dist=dist)
    workload = RMWorkload(RMConfig(batch_size=512), rank=0, world_size=4)
    capture = capture_workload(workload, warmup_iterations=0, runtime=runtime)
    capture.execution_trace.metadata["world_size"] = 4

    full = Replayer(capture.execution_trace, capture.profiler_trace, ReplayConfig()).run()
    forward_only = Replayer(
        capture.execution_trace, capture.profiler_trace,
        ReplayConfig(subtrace_label="## forward ##"),
    ).run()
    comms_only = Replayer(
        capture.execution_trace, capture.profiler_trace,
        ReplayConfig(categories=["comms"]),
    ).run()

    print(format_table(
        ["Replay scope", "Operators", "Time (ms)"],
        [
            ["full iteration", full.replayed_ops, full.mean_iteration_time_ms],
            ["forward subtrace only", forward_only.replayed_ops, forward_only.mean_iteration_time_ms],
            ["communication operators only", comms_only.replayed_ops, comms_only.mean_iteration_time_ms],
        ],
        title="Subtrace replay and operator-type filtering (RM, 4 ranks)",
    ))


def custom_op_registration_demo() -> None:
    print("\ncapturing an ASR iteration ...")
    workload = ASRWorkload(ASRConfig(batch_size=8, num_frames=200, num_ffn_blocks=3))
    capture = capture_workload(workload, warmup_iterations=0)

    default_replay = Replayer(capture.execution_trace, capture.profiler_trace, ReplayConfig()).run()

    support = ReplaySupport()
    support.register_library("fairseq")  # user-provided implementations
    extended_replay = Replayer(
        capture.execution_trace, capture.profiler_trace, ReplayConfig(), support=support
    ).run()

    print(format_table(
        ["Replay policy", "Count coverage", "Time coverage", "Replay time (ms)"],
        [
            [
                "default (ATen + c10d + FBGEMM)",
                f"{default_replay.coverage.count_coverage * 100:.1f}%",
                f"{default_replay.coverage.time_coverage * 100:.1f}%",
                default_replay.mean_iteration_time_ms,
            ],
            [
                "with fairseq custom ops registered",
                f"{extended_replay.coverage.count_coverage * 100:.1f}%",
                f"{extended_replay.coverage.time_coverage * 100:.1f}%",
                extended_replay.mean_iteration_time_ms,
            ],
        ],
        title="Custom-operator registration raises ASR coverage (Table 3 use case)",
    ))
    print(f"\noriginal ASR iteration time: {capture.iteration_time_us / 1e3:.2f} ms")


def main() -> None:
    subtrace_replay_demo()
    custom_op_registration_demo()


if __name__ == "__main__":
    main()
