"""Multi-rank fleet replay and a straggler study via ``repro.cluster``.

1. Capture one execution trace per rank from a 4-rank data-parallel RM run
   (the fleet format of the paper's Table 5 evaluation).
2. Co-replay the fleet under the virtual-time collective scheduler — all
   collectives matched across ranks, priced once, released together.
3. Replay the *same* fleet again with rank 0 moved to a slower device, and
   watch the straggler surface in the report: the fast ranks stall at
   every shared collective, skew becomes non-zero, and the fleet's
   critical path moves to rank 0.

Run with ``PYTHONPATH=src python examples/cluster_straggler.py``.
"""

from __future__ import annotations

import repro.api as api
from repro.bench.aggregate import format_cluster_report
from repro.workloads.ddp import DistributedRunner
from repro.workloads.rm import RMConfig, RMWorkload

WORLD_SIZE = 4


def make_rm(rank: int, world_size: int) -> RMWorkload:
    return RMWorkload(
        RMConfig(
            batch_size=64,
            num_tables=8,
            rows_per_table=50_000,
            embedding_dim=64,
            pooling_factor=8,
            bottom_mlp=(128, 64),
            top_mlp=(256, 128),
        ),
        rank=rank,
        world_size=world_size,
    )


def main() -> None:
    print(f"Capturing one trace per rank from a {WORLD_SIZE}-rank DDP-RM run ...")
    captures = DistributedRunner(make_rm, world_size=WORLD_SIZE).run()

    print("\n=== Homogeneous fleet (all ranks on A100) ===")
    baseline = api.replay_cluster(captures).on("A100").iterations(2, warmup=1).run()
    print(format_cluster_report(baseline))

    print("\n=== Same fleet, rank 0 on a V100 (straggler) ===")
    straggler = (
        api.replay_cluster(captures)
        .on("A100")
        .iterations(2, warmup=1)
        .configure_rank(0, device="V100")
        .run()
    )
    print(format_cluster_report(straggler))

    slowdown = straggler.critical_path_us - baseline.critical_path_us
    fast_ranks = [r for r in straggler.ranks if r.rank != straggler.straggler_rank]
    print(
        f"\nStraggler: rank {straggler.straggler_rank} stretches the critical path by "
        f"{slowdown / 1e3:.3f} ms; the other ranks stall a mean of "
        f"{sum(r.stall_us for r in fast_ranks) / len(fast_ranks) / 1e3:.3f} ms "
        f"waiting at shared collectives (max skew {straggler.max_skew_us:.1f} us)."
    )


if __name__ == "__main__":
    main()
