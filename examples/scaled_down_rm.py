#!/usr/bin/env python3
"""Distributed trace collection and scaled-down performance emulation.

Reproduces the workflow of Sections 6.6 and 7.3 of the paper on the RM
(recommendation model) workload:

1. run RM data-parallel across a 64-rank deployment (8-GPU NVLink nodes with
   a 200 Gb/s NIC per GPU) and collect one execution + profiler trace per
   rank — ranks are symmetric, so the example simulates two of them,
2. report the per-GPU metrics of the distributed run (Table 5),
3. replay the captured rank traces on a 2-rank test setup while keeping the
   recorded 64-rank process groups, so the communication delay matches the
   full-scale deployment, and compare the estimated iteration time with the
   actual 64-GPU run (the scale-down emulation of Section 7.3).

Run with:  python examples/scaled_down_rm.py
"""

from repro.bench.reporting import format_table
from repro.core.scaledown import ScaleDownConfig, ScaleDownEmulator
from repro.workloads.ddp import DistributedRunner
from repro.workloads.rm import RMConfig, RMWorkload

WORLD_SIZE = 64
RANKS_TO_SIMULATE = 2


def main() -> None:
    print(f"running RM data-parallel on {WORLD_SIZE} simulated GPUs "
          f"({RANKS_TO_SIMULATE} symmetric ranks actually simulated) ...")
    runner = DistributedRunner(
        lambda rank, world: RMWorkload(
            RMConfig(batch_size=2048, pooling_factor=64), rank=rank, world_size=world
        ),
        world_size=WORLD_SIZE,
    )
    captures = runner.run(ranks_to_simulate=RANKS_TO_SIMULATE)
    aggregate = DistributedRunner.aggregate_metrics(captures)

    print(format_table(
        ["Metric", "Per-GPU average"],
        [[key, value] for key, value in aggregate.items()],
        title=f"RM on {WORLD_SIZE} GPUs (original run)",
    ))

    print("\nreplaying the captured ranks on a 2-rank test setup "
          "(recorded 64-rank process groups kept) ...")
    emulator = ScaleDownEmulator(
        ScaleDownConfig(emulated_world_size=WORLD_SIZE, replay_ranks=RANKS_TO_SIMULATE)
    )
    outcome = emulator.emulate(
        [capture.execution_trace for capture in captures],
        [capture.profiler_trace for capture in captures],
    )
    estimated = outcome["estimated_iteration_time_ms"]
    actual = aggregate["execution_time_ms"]
    error = abs(estimated - actual) / actual * 100

    print(format_table(
        ["Quantity", "Value"],
        [
            [f"actual {WORLD_SIZE}-GPU iteration time (ms)", actual],
            [f"estimate from {RANKS_TO_SIMULATE}-rank emulation (ms)", estimated],
            ["estimation error", f"{error:.1f}%"],
        ],
        title="Scaled-down performance emulation (Section 7.3)",
    ))


if __name__ == "__main__":
    main()
