"""ResNet-18 workload.

The paper uses torchvision's ResNet-18 with batch size 128 and float32 data,
trained with PyTorch's DistributedDataParallel in the multi-GPU deployment
(Section 6.2).  The model structure below follows the torchvision
implementation: a 7x7 stem convolution, four stages of two BasicBlocks each
(64/128/256/512 channels, stride-2 downsampling between stages), global
average pooling and a 1000-way classifier, trained with cross-entropy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.torchsim import nn
from repro.torchsim.dtypes import DType
from repro.torchsim.runtime import Runtime
from repro.torchsim.tensor import Tensor
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class ResNetConfig(WorkloadConfig):
    """Configuration of the ResNet-18 workload."""

    batch_size: int = 128
    image_size: int = 224
    num_classes: int = 1000
    #: Channel widths of the four stages (ResNet-18 defaults).
    stage_channels: tuple = (64, 128, 256, 512)
    blocks_per_stage: int = 2


class BasicBlock(nn.Module):
    """The two-convolution residual block of ResNet-18/34."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.conv1 = self.register_module(
            nn.Conv2d(in_channels, out_channels, kernel_size=3, stride=stride, padding=1)
        )
        self.bn1 = self.register_module(nn.BatchNorm2d(out_channels))
        self.relu1 = self.register_module(nn.ReLU(inplace=True))
        self.conv2 = self.register_module(
            nn.Conv2d(out_channels, out_channels, kernel_size=3, stride=1, padding=1)
        )
        self.bn2 = self.register_module(nn.BatchNorm2d(out_channels))
        self.relu2 = self.register_module(nn.ReLU(inplace=True))
        self.downsample: Optional[nn.Module] = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = self.register_module(
                nn.Sequential(
                    nn.Conv2d(in_channels, out_channels, kernel_size=1, stride=stride),
                    nn.BatchNorm2d(out_channels),
                )
            )

    def forward(self, runtime, x, tape=None):
        identity = x
        out = self.conv1(runtime, x, tape)
        out = self.bn1(runtime, out, tape)
        out = self.relu1(runtime, out, tape)
        out = self.conv2(runtime, out, tape)
        out = self.bn2(runtime, out, tape)
        if self.downsample is not None:
            identity = self.downsample(runtime, x, tape)
        out = runtime.call("aten::add", out, identity)
        if tape is not None:
            tape.record("AddBackward0", lambda rt, grad: grad)
        return self.relu2(runtime, out, tape)


class ResNet18(nn.Module):
    """torchvision-style ResNet-18."""

    def __init__(self, config: ResNetConfig):
        super().__init__()
        channels = config.stage_channels
        self.stem_conv = self.register_module(nn.Conv2d(3, channels[0], kernel_size=7, stride=2, padding=3))
        self.stem_bn = self.register_module(nn.BatchNorm2d(channels[0]))
        self.stem_relu = self.register_module(nn.ReLU(inplace=True))
        self.stem_pool = self.register_module(nn.MaxPool2d(kernel_size=3, stride=2, padding=1))

        blocks: List[nn.Module] = []
        in_channels = channels[0]
        for stage_index, out_channels in enumerate(channels):
            for block_index in range(config.blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(in_channels, out_channels, stride=stride))
                in_channels = out_channels
        self.stages = self.register_module(nn.Sequential(*blocks))

        self.avgpool = self.register_module(nn.AdaptiveAvgPool2d(1))
        self.fc = self.register_module(nn.Linear(channels[-1], config.num_classes))

    def forward(self, runtime, x, tape=None):
        out = self.stem_conv(runtime, x, tape)
        out = self.stem_bn(runtime, out, tape)
        out = self.stem_relu(runtime, out, tape)
        out = self.stem_pool(runtime, out, tape)
        out = self.stages(runtime, out, tape)
        out = self.avgpool(runtime, out, tape)
        out = runtime.call("aten::flatten", out, 1, -1)
        return self.fc(runtime, out, tape)


class ResNetWorkload(Workload):
    """ResNet-18 image-classification training."""

    name = "resnet"

    def __init__(self, config: Optional[ResNetConfig] = None, distributed: bool = False):
        super().__init__(config if config is not None else ResNetConfig())
        self.config: ResNetConfig
        if distributed:
            self.config.distributed = True
        self.model = ResNet18(self.config)
        if self.config.distributed:
            self.ddp = nn.DistributedDataParallel(self.model)
        self.input = Tensor.empty(
            (self.config.batch_size, 3, self.config.image_size, self.config.image_size),
            dtype=self.config.dtype,
        )
        self.target = Tensor.empty((self.config.batch_size,), dtype=DType.INT64)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        return self.model.parameters()

    def forward_and_loss(self, runtime: Runtime) -> Tensor:
        logits = self.model(runtime, self.input, self.tape)
        loss = runtime.call("aten::cross_entropy_loss", logits, self.target)

        def loss_backward(rt, grad):
            grad_logits = rt.call(
                "aten::_log_softmax_backward_data", loss, logits, -1, "float32"
            )
            return rt.call("aten::nll_loss_backward", loss, logits, self.target, None, 1, -100, loss)

        self.tape.record("NllLossBackward0", loss_backward)
        return loss
