"""The evaluated workloads.

Section 6.2 of the paper evaluates four models:

* **PARAM linear** — a 20-layer linear model from the PARAM benchmark suite
  (batch size 512, float32),
* **ResNet** — ResNet-18 from torchvision (batch size 128, float32), with
  PyTorch DDP for its distributed deployment,
* **ASR** — a production multi-GPU automatic-speech-recognition training
  flow built with the Fairseq toolkit (custom LSTM acoustic-model kernels),
* **RM** — a multi-node, multi-GPU production recommendation model, the
  production counterpart of the open-source DLRM benchmark (FBGEMM
  embedding lookups, all-to-all exchanges, DDP-reduced MLPs).

Each workload issues a full training iteration (forward, loss, backward,
optimizer, and — when distributed — gradient/embedding communication)
through a :class:`~repro.torchsim.runtime.Runtime`, which is what the
ExecutionGraphObserver and the profiler capture.
"""

from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.param_linear import ParamLinearWorkload
from repro.workloads.resnet import ResNetWorkload
from repro.workloads.asr import ASRWorkload
from repro.workloads.rm import RMWorkload
from repro.workloads.ddp import DistributedRunner, RankCapture

#: Factory helpers keyed by the workload names used throughout the paper.
WORKLOAD_FACTORIES = {
    "param_linear": ParamLinearWorkload,
    "resnet": ResNetWorkload,
    "asr": ASRWorkload,
    "rm": RMWorkload,
}


def build_workload(name: str, **kwargs) -> Workload:
    """Instantiate one of the four evaluated workloads by name."""
    if name not in WORKLOAD_FACTORIES:
        known = ", ".join(sorted(WORKLOAD_FACTORIES))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
    return WORKLOAD_FACTORIES[name](**kwargs)


__all__ = [
    "Workload",
    "WorkloadConfig",
    "ParamLinearWorkload",
    "ResNetWorkload",
    "ASRWorkload",
    "RMWorkload",
    "DistributedRunner",
    "RankCapture",
    "WORKLOAD_FACTORIES",
    "build_workload",
]
