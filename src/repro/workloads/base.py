"""Workload base class.

A workload is a model plus its training loop, written against the simulated
framework: calling :meth:`Workload.run_iteration` issues one full training
iteration's operators through a runtime.  Everything the paper captures —
execution traces, profiler traces, system metrics — is produced by wrapping
those calls, exactly like the hook-based collection of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.torchsim.autograd import GradientTape
from repro.torchsim.dtypes import DType
from repro.torchsim.nn import DistributedDataParallel, SGD
from repro.torchsim.runtime import Runtime
from repro.torchsim.tensor import Tensor


@dataclass
class WorkloadConfig:
    """Common configuration shared by all workloads."""

    batch_size: int = 32
    dtype: DType = DType.FLOAT32
    learning_rate: float = 0.01
    #: When true, wrap the densely-replicated part of the model in DDP and
    #: all-reduce its gradients each iteration.
    distributed: bool = False
    #: Label the forward pass with a ``record_function`` annotation, so the
    #: subtrace-replay use case (Section 7.1) has something to anchor on.
    forward_label: str = "## forward ##"


class Workload:
    """Base class: owns the model, tape, optimizer and (optional) DDP state."""

    name: str = "workload"

    def __init__(self, config: Optional[WorkloadConfig] = None):
        self.config = config if config is not None else WorkloadConfig()
        self.tape = GradientTape()
        self.optimizer: Optional[SGD] = None
        self.ddp: Optional[DistributedDataParallel] = None

    # ------------------------------------------------------------------
    # To be provided by subclasses
    # ------------------------------------------------------------------
    def forward_and_loss(self, runtime: Runtime) -> Tensor:
        """Issue the forward pass and return the loss tensor."""
        raise NotImplementedError

    def parameters(self) -> List[Tensor]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared training-iteration skeleton
    # ------------------------------------------------------------------
    def _ensure_optimizer(self) -> SGD:
        if self.optimizer is None:
            self.optimizer = SGD(self.parameters(), lr=self.config.learning_rate)
        return self.optimizer

    def run_iteration(self, runtime: Runtime) -> None:
        """One training iteration: forward, loss, backward, (DDP), optimizer."""
        optimizer = self._ensure_optimizer()
        optimizer.zero_grad()
        self.tape.clear_grad_hooks()
        if self.ddp is not None and runtime.dist is not None:
            self.ddp.attach(runtime, self.tape)

        with runtime.record_function(self.config.forward_label):
            self.forward_and_loss(runtime)
        self.tape.backward(runtime)
        if self.ddp is not None and runtime.dist is not None:
            self.ddp.finalize(runtime)
        optimizer.step(runtime)

    def run_training(self, runtime: Runtime, iterations: int) -> List[float]:
        """Run several iterations, returning the per-iteration wall time (us)."""
        times: List[float] = []
        for _ in range(iterations):
            start = runtime.synchronize()
            self.run_iteration(runtime)
            end = runtime.synchronize()
            times.append(end - start)
        return times
