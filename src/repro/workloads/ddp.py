"""Distributed execution of workloads (one simulated process per rank).

The paper's distributed evaluation (Table 5) trains RM on 8 nodes x 8 GPUs
and collects one execution trace per rank, from the same iteration, so that
the communication operators can be matched during replay.  The
:class:`DistributedRunner` reproduces that collection flow: it instantiates
one runtime (with a distributed context) per rank, runs warm-up iterations,
then captures the execution trace and profiler trace of a single iteration
from every rank.

Because data-parallel ranks are symmetric, the runner can optionally
simulate only a subset of ranks (``ranks_to_simulate``) while the
distributed context still prices collectives at the full world size — this
keeps the simulation cost of the 64-GPU experiment manageable without
changing any measured per-rank quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.hardware.counters import SystemMetrics, compute_system_metrics
from repro.hardware.gpu import TimelineStats
from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.observer import ExecutionGraphObserver
from repro.torchsim.profiler import Profiler, ProfilerTrace
from repro.torchsim.runtime import Runtime
from repro.et.trace import ExecutionTrace
from repro.workloads.base import Workload

#: Builds the workload instance for one rank.
WorkloadFactory = Callable[[int, int], Workload]


@dataclass
class RankCapture:
    """Everything captured from one rank's measured iteration."""

    rank: int
    execution_trace: ExecutionTrace
    profiler_trace: ProfilerTrace
    iteration_time_us: float
    timeline_stats: TimelineStats
    system_metrics: SystemMetrics


class DistributedRunner:
    """Runs a workload across ``world_size`` simulated ranks and captures traces."""

    def __init__(
        self,
        workload_factory: WorkloadFactory,
        world_size: int,
        device: str = "A100",
        interconnect: Optional[InterconnectSpec] = None,
        warmup_iterations: int = 1,
        power_limit_w: Optional[float] = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be at least 1")
        self.workload_factory = workload_factory
        self.world_size = world_size
        self.device = device
        self.interconnect = interconnect or InterconnectSpec()
        self.warmup_iterations = warmup_iterations
        self.power_limit_w = power_limit_w

    # ------------------------------------------------------------------
    def run_rank(self, rank: int) -> RankCapture:
        """Run warm-up plus one captured iteration on a single rank."""
        dist = DistributedContext(
            rank=rank,
            world_size=self.world_size,
            collective_model=CollectiveCostModel(self.interconnect),
        )
        runtime = Runtime(
            device=self.device,
            power_limit_w=self.power_limit_w,
            rank=rank,
            dist=dist,
        )
        workload = self.workload_factory(rank, self.world_size)

        observer = runtime.attach_observer(ExecutionGraphObserver())
        observer.register_callback(None)
        profiler = runtime.attach_profiler(Profiler())

        for _ in range(self.warmup_iterations):
            workload.run_iteration(runtime)
            runtime.synchronize()

        observer.start()
        profiler.start()
        start = runtime.synchronize()
        workload.run_iteration(runtime)
        end = runtime.synchronize()
        observer.stop()
        profiler.stop()

        stats = runtime.timeline_stats(window_start=start, window_end=end)
        metrics = compute_system_metrics(stats, runtime.spec, self.power_limit_w)
        trace = observer.trace
        assert trace is not None
        trace.metadata.update(
            {
                "workload": workload.name,
                "rank": rank,
                "world_size": self.world_size,
                "device": self.device,
            }
        )
        profiler.trace.metadata.update({"rank": rank, "world_size": self.world_size})
        return RankCapture(
            rank=rank,
            execution_trace=trace,
            profiler_trace=profiler.trace,
            iteration_time_us=end - start,
            timeline_stats=stats,
            system_metrics=metrics,
        )

    # ------------------------------------------------------------------
    def run(self, ranks_to_simulate: Optional[int] = None) -> List[RankCapture]:
        """Capture traces from ``ranks_to_simulate`` ranks (default: all)."""
        count = self.world_size if ranks_to_simulate is None else min(ranks_to_simulate, self.world_size)
        return [self.run_rank(rank) for rank in range(count)]

    # ------------------------------------------------------------------
    @staticmethod
    def save_captures(
        captures: List[RankCapture], directory: Union[str, Path]
    ) -> List[Path]:
        """Serialise each rank's execution trace into ``directory``.

        One ``rank<NNN>_et.json`` file per rank — the on-disk fleet format
        ``python -m repro replay-dist`` and
        :meth:`repro.cluster.ClusterReplayer.load_fleet` consume.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        paths: List[Path] = []
        for capture in captures:
            path = root / f"rank{capture.rank:03d}_et.json"
            capture.execution_trace.save(path)
            paths.append(path)
        return paths

    # ------------------------------------------------------------------
    @staticmethod
    def aggregate_metrics(captures: List[RankCapture]) -> Dict[str, float]:
        """Average the per-rank metrics (the per-GPU averages of Table 5)."""
        if not captures:
            return {}
        count = float(len(captures))
        return {
            "execution_time_ms": sum(c.iteration_time_us for c in captures) / count / 1e3,
            "sm_utilization_pct": sum(c.system_metrics.sm_utilization_pct for c in captures) / count,
            "hbm_bandwidth_gbps": sum(c.system_metrics.hbm_bandwidth_gbps for c in captures) / count,
            "gpu_power_w": sum(c.system_metrics.gpu_power_w for c in captures) / count,
        }
