"""ASR (automatic speech recognition) workload.

The paper's ASR workload is a production multi-GPU training flow implemented
with the Fairseq toolkit, built around a neural acoustic model
(Section 6.2).  The model here follows that structure:

* a SpecAugment-style feature augmentation step (custom ``fairseq::`` op),
* a small convolutional front end that subsamples the spectrogram,
* a stack of recurrent (LSTM) acoustic-model layers implemented as fused
  custom kernels (``fairseq::lstm_layer``),
* a linear projection to the output token vocabulary with a log-softmax /
  NLL criterion,
* a couple of JIT-fused pointwise groups in the feature pipeline.

The custom LSTM kernels are exactly the "subset of custom operators we do
not yet support" of Table 3: they are few in number (count coverage stays
above 99%) but dominate the execution-time coverage gap (about a quarter of
the GPU time), unless the user registers them through the custom-operator
interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.torchsim import nn
from repro.torchsim.dtypes import DType
from repro.torchsim.runtime import Runtime
from repro.torchsim.tensor import Tensor
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class ASRConfig(WorkloadConfig):
    """Configuration of the ASR acoustic-model training flow."""

    batch_size: int = 32
    #: Number of acoustic frames per utterance after feature extraction.
    num_frames: int = 800
    #: Mel filterbank features per frame.
    feature_dim: int = 80
    #: Hidden width of the encoder.
    hidden_size: int = 1024
    #: Inner width of the encoder feed-forward blocks.
    ffn_size: int = 4096
    #: Number of encoder feed-forward blocks.
    num_ffn_blocks: int = 6
    #: Number of recurrent (custom LSTM) layers.
    num_lstm_layers: int = 2
    #: Output token vocabulary (sentencepiece units).
    vocab_size: int = 8192


class ASRWorkload(Workload):
    """Fairseq-style acoustic-model training."""

    name = "asr"

    def __init__(self, config: Optional[ASRConfig] = None, distributed: bool = False):
        super().__init__(config if config is not None else ASRConfig())
        self.config: ASRConfig
        if distributed:
            self.config.distributed = True
        cfg = self.config

        # Convolutional front end: two stride-2 convolutions over the
        # (batch, 1, frames, features) spectrogram.
        self.frontend = nn.Sequential(
            nn.Conv2d(1, 32, kernel_size=3, stride=2, padding=1),
            nn.BatchNorm2d(32),
            nn.ReLU(inplace=True),
            nn.Conv2d(32, 32, kernel_size=3, stride=2, padding=1),
            nn.BatchNorm2d(32),
            nn.ReLU(inplace=True),
        )
        # After two stride-2 convolutions the time/frequency axes shrink 4x.
        self.subsampled_frames = cfg.num_frames // 4
        self.frontend_out_dim = 32 * (cfg.feature_dim // 4)

        self.input_projection = nn.Linear(self.frontend_out_dim, cfg.hidden_size)
        # Encoder feed-forward blocks (the ATen-heavy part of the acoustic
        # model; production ASR encoders interleave these with the
        # recurrent layers).
        self.ffn_blocks = nn.Sequential(
            *[
                nn.Sequential(
                    nn.Linear(cfg.hidden_size, cfg.ffn_size, dtype=cfg.dtype),
                    nn.ReLU(inplace=True),
                    nn.Linear(cfg.ffn_size, cfg.hidden_size, dtype=cfg.dtype),
                    nn.Dropout(0.1),
                )
                for _ in range(cfg.num_ffn_blocks)
            ]
        )
        self.output_projection = nn.Linear(cfg.hidden_size, cfg.vocab_size)
        self.dropout = nn.Dropout(0.1)

        # Custom-operator parameters (the fused LSTM layers).
        self.lstm_weights: List[dict] = []
        input_size = cfg.hidden_size
        for _ in range(cfg.num_lstm_layers):
            weights = {
                "weight_ih": Tensor.empty((4 * cfg.hidden_size, input_size), dtype=cfg.dtype),
                "weight_hh": Tensor.empty((4 * cfg.hidden_size, cfg.hidden_size), dtype=cfg.dtype),
                "bias": Tensor.empty((4 * cfg.hidden_size,), dtype=cfg.dtype),
            }
            for tensor in weights.values():
                tensor.requires_grad = True
            self.lstm_weights.append(weights)
            input_size = cfg.hidden_size

        if self.config.distributed:
            self.ddp = nn.DistributedDataParallel(self.input_projection)

        self.features = Tensor.empty((cfg.batch_size, 1, cfg.num_frames, cfg.feature_dim), dtype=cfg.dtype)
        self.targets = Tensor.empty((cfg.batch_size * self.subsampled_frames,), dtype=DType.INT64)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        params = (
            self.frontend.parameters()
            + self.input_projection.parameters()
            + self.ffn_blocks.parameters()
            + self.output_projection.parameters()
        )
        for weights in self.lstm_weights:
            params.extend(weights.values())
        return params

    # ------------------------------------------------------------------
    def forward_and_loss(self, runtime: Runtime) -> Tensor:
        cfg = self.config

        # Feature augmentation (custom op) + JIT-fused normalisation group.
        augmented = runtime.call("fairseq::specaugment", self.features, 20, 10)
        normalized = runtime.call("fused::TensorExprGroup", [augmented], 3)

        # Convolutional subsampling front end.
        conv_out = self.frontend(runtime, normalized, self.tape)
        flattened = runtime.call(
            "aten::view",
            conv_out,
            [cfg.batch_size * self.subsampled_frames, self.frontend_out_dim],
        )
        hidden = self.input_projection(runtime, flattened, self.tape)

        # Encoder feed-forward blocks (ATen GEMMs).
        hidden = self.ffn_blocks(runtime, hidden, self.tape)

        hidden = runtime.call(
            "aten::view", hidden, [self.subsampled_frames, cfg.batch_size, cfg.hidden_size]
        )

        # Recurrent acoustic model: fused custom LSTM layers.
        for layer_index, weights in enumerate(self.lstm_weights):
            hidden = runtime.call(
                "fairseq::lstm_layer",
                hidden,
                weights["weight_ih"],
                weights["weight_hh"],
                weights["bias"],
                cfg.hidden_size,
            )
            layer_input = hidden

            def lstm_backward(rt, grad, layer_input=layer_input, weights=weights):
                return rt.call(
                    "fairseq::lstm_layer_backward",
                    layer_input,
                    layer_input,
                    weights["weight_ih"],
                    weights["weight_hh"],
                    cfg.hidden_size,
                )

            self.tape.record(f"FairseqLstmBackward{layer_index}", lstm_backward)
        hidden = self.dropout(runtime, hidden, self.tape)

        # Output projection + token-level criterion.
        flat_hidden = runtime.call(
            "aten::view", hidden, [cfg.batch_size * self.subsampled_frames, cfg.hidden_size]
        )
        logits = self.output_projection(runtime, flat_hidden, self.tape)
        log_probs = runtime.call("aten::_log_softmax", logits, -1, False)
        loss = runtime.call("aten::nll_loss", log_probs, self.targets, None, 1, -100)

        def loss_backward(rt, grad):
            grad_logits = rt.call("aten::nll_loss_backward", loss, log_probs, self.targets, None, 1, -100, loss)
            return rt.call("aten::_log_softmax_backward_data", grad_logits, logits, -1, "float32")

        self.tape.record("NllLossBackward0", loss_backward)
        return loss
