"""RM: the production recommendation-model workload.

RM is the paper's leading-edge multi-node, multi-GPU recommendation model —
the production counterpart that the open-source DLRM benchmark approximates
(Section 6.2).  The model follows the DLRM architecture:

* a **bottom MLP** over the dense features,
* **embedding-table lookups** over the sparse features, executed through a
  batched FBGEMM custom operator (supported by Mystique out of the box); the
  lookup indices are the value-sensitive tensors of Section 4.4 and are
  drawn from a Zipf distribution to model hot/cold items,
* a **feature interaction** (pairwise dot products via ``aten::bmm``),
* a **top MLP** producing the click-through-rate logit, trained with a
  binary cross-entropy criterion,
* a couple of in-house custom operators (sparse-feature preprocessing, a
  fused multi-task scoring head) that Mystique does **not** support out of
  the box, plus a JIT-fused pointwise group — together they produce the
  coverage gap reported for RM in Table 3.

In the distributed configuration the embedding tables are model-parallel
(each rank owns a shard and the pooled embeddings are exchanged with
``all_to_all``) while the MLPs are data-parallel (gradients all-reduced via
DDP), matching production DLRM training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.torchsim import nn
from repro.torchsim.dtypes import DType
from repro.torchsim.runtime import Runtime
from repro.torchsim.tensor import Tensor
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class RMConfig(WorkloadConfig):
    """Configuration of the recommendation-model workload."""

    batch_size: int = 1024
    num_dense_features: int = 13
    num_tables: int = 64
    rows_per_table: int = 1_000_000
    embedding_dim: int = 128
    pooling_factor: int = 32
    bottom_mlp: tuple = (512, 256, 128)
    top_mlp: tuple = (2048, 2048, 1024, 512)
    #: Zipf exponent of the lookup-index distribution (hot/cold items).
    index_zipf_alpha: float = 1.05
    index_seed: int = 17


class RMWorkload(Workload):
    """DLRM-style recommendation model training."""

    name = "rm"

    def __init__(
        self,
        config: Optional[RMConfig] = None,
        rank: int = 0,
        world_size: int = 1,
    ):
        super().__init__(config if config is not None else RMConfig())
        self.config: RMConfig
        cfg = self.config
        self.rank = rank
        self.world_size = max(1, world_size)
        if self.world_size > 1:
            self.config.distributed = True

        # Dense (data-parallel) part.
        self.bottom_mlp = nn.MLP((cfg.num_dense_features, *cfg.bottom_mlp), dtype=cfg.dtype)
        interaction_dim = self._interaction_dim()
        self.top_mlp = nn.MLP((interaction_dim, *cfg.top_mlp), dtype=cfg.dtype)
        self.scoring = nn.Linear(cfg.top_mlp[-1], 1, dtype=cfg.dtype)
        if self.config.distributed:
            dense = nn.Sequential(self.bottom_mlp, self.top_mlp, self.scoring)
            self.ddp = nn.DistributedDataParallel(dense)

        # Sparse (model-parallel) part: this rank's shard of the tables.
        self.local_tables = self._local_table_count()
        self.embedding_weights = Tensor.empty(
            (cfg.rows_per_table * max(1, self.local_tables), cfg.embedding_dim), dtype=cfg.dtype
        )
        self.embedding_weights.requires_grad = True

        # Inputs: dense features, click labels and materialised lookup
        # indices (the value-sensitive tensors of Section 4.4).
        self.dense_input = Tensor.empty((cfg.batch_size, cfg.num_dense_features), dtype=cfg.dtype)
        self.labels = Tensor.empty((cfg.batch_size, 1), dtype=cfg.dtype)
        num_lookups = cfg.batch_size * max(1, self.local_tables) * cfg.pooling_factor
        rng = np.random.default_rng(cfg.index_seed + rank)
        raw = rng.zipf(cfg.index_zipf_alpha, size=num_lookups).astype(np.int64)
        indices = np.clip(raw - 1, 0, cfg.rows_per_table - 1)
        self.lookup_indices = Tensor.from_indices(indices)
        self.lookup_offsets = Tensor.empty(
            (cfg.batch_size * max(1, self.local_tables) + 1,), dtype=DType.INT64
        )
        self.lookup_lengths = Tensor.empty(
            (cfg.batch_size * max(1, self.local_tables),), dtype=DType.INT64
        )

    # ------------------------------------------------------------------
    def _interaction_dim(self) -> int:
        """Output width of the pairwise-dot-product interaction."""
        cfg = self.config
        num_features = cfg.num_tables + 1  # embeddings + bottom-MLP output
        pairs = num_features * (num_features - 1) // 2
        return pairs + cfg.bottom_mlp[-1]

    def _local_table_count(self) -> int:
        cfg = self.config
        base = cfg.num_tables // self.world_size
        remainder = cfg.num_tables % self.world_size
        return base + (1 if self.rank < remainder else 0)

    def parameters(self) -> List[Tensor]:
        """Dense (data-parallel) parameters updated by the SGD optimizer.

        The embedding tables are deliberately excluded: production DLRM
        training applies a fused row-wise sparse update inside the FBGEMM
        backward kernel, so the tables never flow through the dense
        optimizer (doing so would rewrite tens of GB per iteration).
        """
        return (
            self.bottom_mlp.parameters()
            + self.top_mlp.parameters()
            + self.scoring.parameters()
        )

    # ------------------------------------------------------------------
    def forward_and_loss(self, runtime: Runtime) -> Tensor:
        cfg = self.config

        # Sparse-feature preprocessing (in-house custom op, unsupported by
        # the default replay policy).
        runtime.call(
            "internal::sparse_data_preproc", self.lookup_indices, self.lookup_lengths, cfg.num_tables
        )

        # Bottom MLP over the dense features.
        dense_out = self.bottom_mlp(runtime, self.dense_input, self.tape)

        # Embedding lookups through the batched FBGEMM kernel.
        pooled = runtime.call(
            "fbgemm::split_embedding_codegen_lookup_function",
            self.embedding_weights,
            self.lookup_indices,
            self.lookup_offsets,
            max(1, self.local_tables),
            cfg.embedding_dim,
            0,
        )

        def embedding_backward(rt, grad):
            self.embedding_weights.grad = rt.call(
                "fbgemm::split_embedding_backward_codegen",
                pooled,
                self.embedding_weights,
                self.lookup_indices,
                self.lookup_offsets,
                max(1, self.local_tables),
                cfg.embedding_dim,
            )
            self.tape.grad_ready(self.embedding_weights)
            return None

        self.tape.record("SplitEmbeddingBackward0", embedding_backward)

        # Model-parallel embedding exchange in the distributed deployment.
        # Issued asynchronously and awaited immediately before use, the way
        # torchrec overlaps the exchange with the tail of the dense forward.
        if self.config.distributed and runtime.dist is not None:
            pg = runtime.dist.default_group.describe()
            work = runtime.call("c10d::all_to_all", [pooled], [pooled], pg, True)
            if hasattr(work, "wait"):
                work.wait()

            def alltoall_backward(rt, grad, pooled=pooled, pg=pg):
                backward_work = rt.call("c10d::all_to_all", [pooled], [pooled], pg, True)
                if hasattr(backward_work, "wait"):
                    backward_work.wait()
                return grad

            self.tape.record("AllToAllBackward0", alltoall_backward)

        # Reshape the pooled embeddings to (batch, tables, dim) for the
        # pairwise interaction; under model parallelism the all-to-all has
        # redistributed them so every rank sees all tables for its batch.
        embeddings = runtime.call(
            "aten::view", pooled, [cfg.batch_size, cfg.num_tables, cfg.embedding_dim]
        )
        dense_expanded = runtime.call("aten::view", dense_out, [cfg.batch_size, 1, cfg.bottom_mlp[-1]])
        features = runtime.call("aten::cat", [dense_expanded, embeddings], 1)
        features_t = runtime.call("aten::transpose", features, 1, 2)
        interactions = runtime.call("aten::bmm", features, features_t)

        def interaction_backward(rt, grad):
            grad_like = Tensor.empty(interactions.shape, dtype=interactions.dtype)
            rt.call("aten::bmm", grad_like, features)
            rt.call("aten::bmm", grad_like, features)
            return None

        self.tape.record("BmmBackward0", interaction_backward)

        flat_interactions = runtime.call(
            "aten::view", interactions, [cfg.batch_size, (cfg.num_tables + 1) ** 2]
        )
        # Keep only the upper triangle + dense features (standard DLRM);
        # modelled as a fused gather/cat group emitted by the JIT.
        combined = runtime.call("fused::TensorExprGroup", [flat_interactions, dense_out], 2)
        trimmed = runtime.call(
            "aten::view", combined, [cfg.batch_size, self._interaction_dim()]
        )

        # Top MLP and scoring head.
        top_out = self.top_mlp(runtime, trimmed, self.tape)
        logits = self.scoring(runtime, top_out, self.tape)
        runtime.call("internal::fused_scoring_head", logits, self.scoring.weight, 3)

        loss = runtime.call("aten::binary_cross_entropy_with_logits", logits, self.labels, None, None, 1)

        def loss_backward(rt, grad):
            return rt.call(
                "aten::binary_cross_entropy_with_logits_backward",
                loss, logits, self.labels, None, None, 1,
            )

        self.tape.record("BceWithLogitsBackward0", loss_backward)
        return loss
