"""PARAM linear workload.

PARAM is Meta's open benchmark suite of compute and communication
microbenchmarks plus full workloads; the paper uses its representative
linear model with 20 linear layers, batch size 512 and float32 data
(Section 6.2).  Every layer is a plain ``aten::linear`` (which internally
calls ``aten::t`` and ``aten::addmm``), making this the cleanest workload
for validating the replay pipeline — Table 3 reports 100% coverage on both
count and execution time for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.torchsim import nn
from repro.torchsim.dtypes import DType
from repro.torchsim.runtime import Runtime
from repro.torchsim.tensor import Tensor
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class ParamLinearConfig(WorkloadConfig):
    """Configuration of the PARAM linear model."""

    batch_size: int = 512
    num_layers: int = 20
    hidden_size: int = 1728
    input_size: int = 1728


class ParamLinearWorkload(Workload):
    """A stack of ``num_layers`` linear layers trained with an MSE loss."""

    name = "param_linear"

    def __init__(self, config: Optional[ParamLinearConfig] = None, distributed: bool = False):
        super().__init__(config if config is not None else ParamLinearConfig())
        self.config: ParamLinearConfig
        if distributed:
            self.config.distributed = True

        layers: List[nn.Module] = []
        in_size = self.config.input_size
        for _ in range(self.config.num_layers):
            layers.append(nn.Linear(in_size, self.config.hidden_size, dtype=self.config.dtype))
            layers.append(nn.ReLU(inplace=True))
            in_size = self.config.hidden_size
        self.model = nn.Sequential(*layers)
        if self.config.distributed:
            self.ddp = nn.DistributedDataParallel(self.model)

        self.input = Tensor.empty(
            (self.config.batch_size, self.config.input_size), dtype=self.config.dtype
        )
        self.target = Tensor.empty(
            (self.config.batch_size, self.config.hidden_size), dtype=self.config.dtype
        )

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        return self.model.parameters()

    def forward_and_loss(self, runtime: Runtime) -> Tensor:
        output = self.model(runtime, self.input, self.tape)
        loss = runtime.call("aten::mse_loss", output, self.target)

        def loss_backward(rt, grad):
            return rt.call("aten::mse_loss_backward", loss, output, self.target, 1)

        self.tape.record("MseLossBackward0", loss_backward)
        return loss
