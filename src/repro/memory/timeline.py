"""Stepwise device-memory footprint simulation.

Drives a :class:`~repro.memory.allocator.CachingAllocator` with the
allocation/free program implied by a trace's tensor lifetimes
(:mod:`repro.memory.lifetimes`): walking the selected operators in
execution order, each operator first materialises the external tensors it
touches for the first time, then allocates its outputs; tensors are freed
right after their last use.  After every operator one
:class:`FootprintPoint` is recorded — allocated and reserved bytes over
"op time", the memory-usage curve Figure 5's system-metrics fidelity is
judged against.

When the allocator cannot serve a request (the pool is a recorded device's
capacity, or a smaller what-if budget), the simulation stops and the
timeline carries a structured :class:`OOMEvent` naming the failing
operator, the failing tensor, and the full allocator snapshot at failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.et.analyzer import categorize_node
from repro.et.trace import ExecutionTrace
from repro.memory.allocator import (
    AllocatorStats,
    Block,
    CachingAllocator,
    SimulatedOOM,
    format_bytes,
)
from repro.memory.lifetimes import LifetimeAnalysis, TensorKey, analyze_lifetimes


@dataclass
class FootprintPoint:
    """Memory state right after one replayed operator."""

    index: int
    node_id: int
    op_name: str
    category: str
    allocated_bytes: int
    reserved_bytes: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "node_id": self.node_id,
            "op_name": self.op_name,
            "category": self.category,
            "allocated_bytes": self.allocated_bytes,
            "reserved_bytes": self.reserved_bytes,
        }


@dataclass
class OOMEvent:
    """One simulated out-of-memory failure, with the allocator state."""

    node_id: int
    op_name: str
    category: str
    #: Identity and size of the tensor whose allocation failed.
    tensor_id: int
    storage_id: int
    requested_bytes: int
    allocated_bytes: int
    reserved_bytes: int
    capacity_bytes: int
    #: Full allocator snapshot (stats + segment/block map) at failure.
    snapshot: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"OOM at op {self.op_name} (node {self.node_id}): tried to allocate "
            f"{format_bytes(self.requested_bytes)} for tensor "
            f"{self.tensor_id} with {format_bytes(self.allocated_bytes)} allocated / "
            f"{format_bytes(self.reserved_bytes)} reserved of "
            f"{format_bytes(self.capacity_bytes)}"
        )

    def to_dict(self, include_snapshot: bool = True) -> Dict[str, Any]:
        """Serialise the event; compact consumers (per-rank cluster rows)
        drop the segment/block snapshot, which can run to thousands of
        block records on a paper-scale trace."""
        data = {
            "node_id": self.node_id,
            "op_name": self.op_name,
            "category": self.category,
            "tensor_id": self.tensor_id,
            "storage_id": self.storage_id,
            "requested_bytes": self.requested_bytes,
            "allocated_bytes": self.allocated_bytes,
            "reserved_bytes": self.reserved_bytes,
            "capacity_bytes": self.capacity_bytes,
            "message": self.describe(),
        }
        if include_snapshot:
            data["snapshot"] = self.snapshot
        return data


@dataclass
class MemoryTimeline:
    """The simulated footprint curve of one trace."""

    points: List[FootprintPoint] = field(default_factory=list)
    peak_allocated_bytes: int = 0
    peak_reserved_bytes: int = 0
    #: Bytes allocated on behalf of each operator category (first-touch
    #: attribution: an external tensor is charged to the first op using it).
    by_category_bytes: Dict[str, int] = field(default_factory=dict)
    oom: Optional[OOMEvent] = None
    stats: AllocatorStats = field(default_factory=AllocatorStats)
    #: Analytical live-byte peak (no allocator rounding/caching), the lower
    #: bound the caching-allocator peak is compared against.
    live_bytes_peak: int = 0

    @property
    def average_allocated_bytes(self) -> float:
        if not self.points:
            return 0.0
        return sum(point.allocated_bytes for point in self.points) / len(self.points)

    @property
    def completed(self) -> bool:
        return self.oom is None


def simulate_footprint(
    trace: ExecutionTrace,
    capacity_bytes: int,
    entries: Optional[Sequence] = None,
    lifetimes: Optional[LifetimeAnalysis] = None,
    stream_for: Optional[Any] = None,
) -> MemoryTimeline:
    """Simulate the device-memory footprint of replaying ``trace``.

    Parameters
    ----------
    capacity_bytes:
        The allocator's pool — a device capacity or a what-if budget.
    entries:
        Optional replay selection (``.node``-carrying entries) so the
        simulation walks exactly the operators a replay would run.
    lifetimes:
        Pre-computed lifetime analysis to reuse; derived when omitted.
    stream_for:
        Optional ``node_id -> stream id`` callable; tensors are allocated
        on their producing operator's stream (the allocator keeps
        per-stream free lists, like the real one).  Defaults to a single
        stream.
    """
    analysis = lifetimes if lifetimes is not None else analyze_lifetimes(trace, entries)
    allocator = CachingAllocator(capacity_bytes)
    timeline = MemoryTimeline(live_bytes_peak=analysis.live_bytes_peak())
    held: Dict[TensorKey, Block] = {}

    for index, node in enumerate(analysis.operators):
        category = categorize_node(node)
        stream = int(stream_for(node.id)) if stream_for is not None else 0
        for lifetime in analysis.births_at(index):
            try:
                held[lifetime.key] = allocator.malloc(lifetime.nbytes, stream=stream)
            except SimulatedOOM as oom:
                timeline.oom = OOMEvent(
                    node_id=node.id,
                    op_name=node.name,
                    category=category,
                    tensor_id=lifetime.key[0],
                    storage_id=lifetime.key[1],
                    requested_bytes=lifetime.nbytes,
                    allocated_bytes=oom.stats.allocated_bytes,
                    reserved_bytes=oom.stats.reserved_bytes,
                    capacity_bytes=oom.stats.capacity_bytes,
                    snapshot=allocator.snapshot(),
                )
                timeline.stats = oom.stats
                timeline.peak_allocated_bytes = oom.stats.peak_allocated_bytes
                timeline.peak_reserved_bytes = oom.stats.peak_reserved_bytes
                return timeline
            timeline.by_category_bytes[category] = (
                timeline.by_category_bytes.get(category, 0) + lifetime.nbytes
            )
        timeline.points.append(
            FootprintPoint(
                index=index,
                node_id=node.id,
                op_name=node.name,
                category=category,
                allocated_bytes=allocator.allocated_bytes,
                reserved_bytes=allocator.reserved_bytes,
            )
        )
        for lifetime in analysis.deaths_at(index):
            block = held.pop(lifetime.key, None)
            if block is not None:
                allocator.free(block)

    timeline.stats = allocator.stats()
    timeline.peak_allocated_bytes = timeline.stats.peak_allocated_bytes
    timeline.peak_reserved_bytes = timeline.stats.peak_reserved_bytes
    return timeline
