"""Device-memory simulation subsystem.

Mystique validates replay fidelity on *system* metrics — memory usage
chief among them (Figure 5) — and the rest of this reproduction models
time while treating memory as free and infinite.  This subpackage closes
that gap with a static, deterministic simulation of device memory:

* :mod:`~repro.memory.allocator` — a CUDA-caching-allocator model (block
  rounding and splitting, per-stream free-list reuse, ``reserved`` vs
  ``allocated``, fragmentation, simulated OOM),
* :mod:`~repro.memory.lifetimes` — tensor lifetime/liveness analysis over
  an execution trace (first def / last use per tensor identity, parameter
  vs activation vs gradient classification),
* :mod:`~repro.memory.timeline` — the stepwise footprint curve an
  execution trace implies, driven through the allocator,
* :mod:`~repro.memory.report` — :func:`~repro.memory.report.simulate_memory`
  and the :class:`~repro.memory.report.MemoryReport` consumed by the
  pipeline stage, the CLI, the cluster engine and the scale-down checker.

Everything is derived from the trace alone — no replay execution needed —
so memory what-ifs (does this 40 GiB trace fit a 16 GiB V100?) cost
milliseconds, and enabling tracking never perturbs replay timing results.
"""

from repro.memory.allocator import (
    AllocatorStats,
    CachingAllocator,
    SimulatedOOM,
    device_capacity_bytes,
    format_bytes,
    parse_byte_size,
)
from repro.memory.lifetimes import (
    ALL_ROLES,
    ROLE_ACTIVATION,
    ROLE_GRADIENT,
    ROLE_PARAMETER,
    LifetimeAnalysis,
    TensorLifetime,
    analyze_lifetimes,
)
from repro.memory.timeline import (
    FootprintPoint,
    MemoryTimeline,
    OOMEvent,
    simulate_footprint,
)
from repro.memory.report import (
    MemoryReport,
    SimulatedOOMError,
    check_device_fit,
    format_memory_report,
    simulate_memory,
)

__all__ = [
    "AllocatorStats",
    "CachingAllocator",
    "SimulatedOOM",
    "device_capacity_bytes",
    "format_bytes",
    "parse_byte_size",
    "ALL_ROLES",
    "ROLE_PARAMETER",
    "ROLE_ACTIVATION",
    "ROLE_GRADIENT",
    "LifetimeAnalysis",
    "TensorLifetime",
    "analyze_lifetimes",
    "FootprintPoint",
    "MemoryTimeline",
    "OOMEvent",
    "simulate_footprint",
    "MemoryReport",
    "SimulatedOOMError",
    "check_device_fit",
    "format_memory_report",
    "simulate_memory",
]
