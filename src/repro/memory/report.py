"""Memory reports: peak/average footprint, attribution, OOM semantics.

:func:`simulate_memory` is the subsystem's one-stop entry point — trace in,
:class:`MemoryReport` out — used by the ``track-memory`` pipeline stage,
the ``memory-report`` CLI subcommand, the cluster engine's per-rank
footprints and the scale-down validator.  The report carries:

* peak / average **allocated** and peak **reserved** bytes (the caching
  allocator's two curves),
* byte attribution per tensor role (parameters / activations / gradients)
  and per operator category (first-touch),
* the structured :class:`~repro.memory.timeline.OOMEvent` when the trace
  does not fit, including the allocator snapshot at failure, and
* a verdict (:attr:`MemoryReport.fits`) against the effective budget.

OOM semantics: the simulation never raises by itself — an OOM is data (the
report records it and ``fits`` turns false).  Callers that want replay to
stop, such as ``TrackMemoryStage(on_oom="raise")`` or the scale-down
validator, raise :class:`SimulatedOOMError` from the recorded event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.et.trace import ExecutionTrace
from repro.hardware.specs import DeviceSpec
from repro.memory.allocator import (
    AllocatorStats,
    device_capacity_bytes,
    format_bytes,
    parse_byte_size,
)
from repro.memory.lifetimes import LifetimeAnalysis, analyze_lifetimes
from repro.memory.timeline import FootprintPoint, MemoryTimeline, OOMEvent, simulate_footprint

#: What budget arguments accept: bytes, or a "4GB"-style string.
ByteSize = Union[int, float, str]


class SimulatedOOMError(RuntimeError):
    """A simulated replay did not fit the device-memory budget.

    Raised by consumers that treat an OOM as fatal (``on_oom="raise"``,
    scale-down validation); carries the structured :class:`OOMEvent`.
    """

    def __init__(self, event: OOMEvent) -> None:
        self.event = event
        super().__init__(event.describe())


@dataclass
class MemoryReport:
    """Everything one trace's memory simulation produced."""

    trace_name: str
    device: str
    capacity_bytes: int
    #: What-if budget the allocator actually ran with (≤ capacity); equals
    #: ``capacity_bytes`` when no budget was given.
    budget_bytes: int
    peak_allocated_bytes: int = 0
    peak_reserved_bytes: int = 0
    average_allocated_bytes: float = 0.0
    live_bytes_peak: int = 0
    num_tensors: int = 0
    external_bytes: int = 0
    by_role_bytes: Dict[str, int] = field(default_factory=dict)
    by_category_bytes: Dict[str, int] = field(default_factory=dict)
    oom: Optional[OOMEvent] = None
    allocator: AllocatorStats = field(default_factory=AllocatorStats)
    timeline: List[FootprintPoint] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def fits(self) -> bool:
        """True when the whole trace replayed within the budget."""
        return self.oom is None

    @property
    def headroom_bytes(self) -> int:
        """Unused budget at the reserved peak (negative never happens —
        an OOM is recorded instead)."""
        return self.budget_bytes - self.peak_reserved_bytes

    @property
    def fragmentation(self) -> float:
        """Reserved-but-not-allocated share at the reserved peak."""
        if self.peak_reserved_bytes <= 0:
            return 0.0
        return 1.0 - self.peak_allocated_bytes / self.peak_reserved_bytes

    # ------------------------------------------------------------------
    def summary_dict(self) -> Dict[str, Any]:
        """The compact, scalar view (what per-rank cluster reports embed)."""
        return {
            "trace_name": self.trace_name,
            "device": self.device,
            "capacity_bytes": self.capacity_bytes,
            "budget_bytes": self.budget_bytes,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "average_allocated_bytes": self.average_allocated_bytes,
            "live_bytes_peak": self.live_bytes_peak,
            "num_tensors": self.num_tensors,
            "external_bytes": self.external_bytes,
            "by_role_bytes": dict(self.by_role_bytes),
            "by_category_bytes": dict(self.by_category_bytes),
            "fits": self.fits,
            "headroom_bytes": self.headroom_bytes,
            "oom": self.oom.to_dict(include_snapshot=False) if self.oom is not None else None,
        }

    def to_dict(self, include_timeline: bool = True) -> Dict[str, Any]:
        data = self.summary_dict()
        if self.oom is not None:
            data["oom"] = self.oom.to_dict()
        data["allocator"] = self.allocator.to_dict()
        if include_timeline:
            data["timeline"] = [point.to_dict() for point in self.timeline]
        return data

    def raise_if_oom(self) -> "MemoryReport":
        """Turn a recorded OOM into :class:`SimulatedOOMError`; chainable."""
        if self.oom is not None:
            raise SimulatedOOMError(self.oom)
        return self


# ----------------------------------------------------------------------
def resolve_budget_bytes(
    device: "str | DeviceSpec",
    budget: Optional[ByteSize] = None,
) -> int:
    """The allocator pool implied by a device and an optional budget.

    A budget larger than the device is allowed (what-if on a bigger part);
    ``None`` means the device's capacity.
    """
    if budget is None:
        return device_capacity_bytes(device)
    return parse_byte_size(budget)


def simulate_memory(
    trace: ExecutionTrace,
    device: "str | DeviceSpec" = "A100",
    budget: Optional[ByteSize] = None,
    entries: Optional[Sequence] = None,
    trace_name: str = "",
    stream_for: Optional[Any] = None,
    keep_timeline: bool = True,
) -> MemoryReport:
    """Simulate replaying ``trace`` through a caching allocator sized for
    ``device`` (or the smaller what-if ``budget``) and build the report."""
    device_name = device if isinstance(device, str) else device.name
    capacity = device_capacity_bytes(device)
    pool = resolve_budget_bytes(device, budget)
    analysis: LifetimeAnalysis = analyze_lifetimes(trace, entries)
    timeline: MemoryTimeline = simulate_footprint(
        trace,
        capacity_bytes=pool,
        lifetimes=analysis,
        stream_for=stream_for,
    )
    name = trace_name or str(trace.metadata.get("workload", ""))
    return MemoryReport(
        trace_name=name,
        device=device_name,
        capacity_bytes=capacity,
        budget_bytes=pool,
        peak_allocated_bytes=timeline.peak_allocated_bytes,
        peak_reserved_bytes=timeline.peak_reserved_bytes,
        average_allocated_bytes=timeline.average_allocated_bytes,
        live_bytes_peak=timeline.live_bytes_peak,
        num_tensors=len(analysis),
        external_bytes=analysis.external_bytes(),
        by_role_bytes=analysis.by_role_bytes(),
        by_category_bytes=dict(timeline.by_category_bytes),
        oom=timeline.oom,
        allocator=timeline.stats,
        timeline=list(timeline.points) if keep_timeline else [],
    )


def check_device_fit(
    trace: ExecutionTrace,
    device: "str | DeviceSpec",
    budget: Optional[ByteSize] = None,
    trace_name: str = "",
) -> MemoryReport:
    """Validate that ``trace`` fits ``device``; raises
    :class:`SimulatedOOMError` (with the failing op named) when it does
    not, and returns the report when it does."""
    report = simulate_memory(
        trace, device=device, budget=budget, trace_name=trace_name, keep_timeline=False
    )
    return report.raise_if_oom()


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def format_memory_report(report: MemoryReport, title: str = "") -> str:
    """Fixed-width text rendering of one memory report."""
    from repro.bench.reporting import format_table

    if not title:
        name = report.trace_name or "trace"
        title = f"Memory report: {name} on {report.device}"
    rows = [
        ["peak allocated", format_bytes(report.peak_allocated_bytes)],
        ["peak reserved", format_bytes(report.peak_reserved_bytes)],
        ["average allocated", format_bytes(report.average_allocated_bytes)],
        ["live-byte peak (analytical)", format_bytes(report.live_bytes_peak)],
        ["budget", format_bytes(report.budget_bytes)],
        ["headroom", format_bytes(report.headroom_bytes)],
        ["fragmentation at peak", f"{report.fragmentation * 100.0:.1f} %"],
        ["tensors", report.num_tensors],
    ]
    for role, nbytes in sorted(report.by_role_bytes.items()):
        rows.append([f"{role} bytes", format_bytes(nbytes)])
    for category, nbytes in sorted(report.by_category_bytes.items()):
        rows.append([f"alloc by {category} ops", format_bytes(nbytes)])
    rows.append(["status", "OK" if report.fits else report.oom.describe()])
    return format_table(["metric", "value"], rows, title=title)
