"""Tensor lifetime and liveness analysis over an execution trace.

The replayer's tensor manager already distinguishes *intermediate* tensors
(produced by a replayed operator) from *external* ones (parameters, the
input batch); the memory subsystem needs more: **when** each tensor comes
alive, **when** it dies, **how big** it is, and **what role** it plays.
This module derives all four statically from the trace — no replay needed —
by walking the selected operators in execution order:

* a tensor first seen as an *input* with no recorded producer is
  **external** (``parameter``): it must exist before the iteration starts
  and survives the whole iteration (the replayer keeps external tensors
  across iterations),
* a tensor first seen as an *output* of an operator inside the autograd
  engine's scope (``autograd::engine::evaluate_function`` wrappers, via
  :func:`repro.et.analyzer.backward_node_ids`) is a **gradient**,
* any other produced tensor is an **activation**; its lifetime runs from
  its producing operator to its last recorded use.

Tensors are keyed by ``(tensor_id, storage_id)``, the same identity the
replayer's :class:`~repro.core.tensors.TensorManager` uses, so aliased
views of one storage are counted once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.et.analyzer import (
    backward_node_ids,
    iter_top_level_operators,
    tensor_ref_bytes,
)
from repro.et.schema import ETNode
from repro.et.trace import ExecutionTrace

#: A tensor's identity within the analysis: (tensor_id, storage_id).
TensorKey = Tuple[int, int]

#: Lifetime role labels.
ROLE_PARAMETER = "parameter"
ROLE_ACTIVATION = "activation"
ROLE_GRADIENT = "gradient"
ALL_ROLES = (ROLE_PARAMETER, ROLE_ACTIVATION, ROLE_GRADIENT)


@dataclass
class TensorLifetime:
    """Birth, death, size and role of one recorded tensor."""

    key: TensorKey
    nbytes: int
    #: Index (into the analysed operator order) where the tensor comes
    #: alive: its producing operator, or its first use when external.
    first_index: int
    #: Index of the last operator that reads or writes the tensor.
    last_index: int
    #: ID of the producing trace node; ``None`` for external tensors.
    producer_node_id: Optional[int]
    role: str

    @property
    def external(self) -> bool:
        return self.producer_node_id is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "tensor_id": self.key[0],
            "storage_id": self.key[1],
            "nbytes": self.nbytes,
            "first_index": self.first_index,
            "last_index": self.last_index,
            "producer_node_id": self.producer_node_id,
            "role": self.role,
        }


@dataclass
class LifetimeAnalysis:
    """All tensor lifetimes of one trace, plus the operator order they
    are indexed against."""

    operators: List[ETNode] = field(default_factory=list)
    lifetimes: Dict[TensorKey, TensorLifetime] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.lifetimes)

    # ------------------------------------------------------------------
    def by_role_bytes(self) -> Dict[str, int]:
        """Total bytes per lifetime role (parameters/activations/gradients)."""
        totals = {role: 0 for role in ALL_ROLES}
        for lifetime in self.lifetimes.values():
            totals[lifetime.role] = totals.get(lifetime.role, 0) + lifetime.nbytes
        return totals

    def external_bytes(self) -> int:
        return sum(l.nbytes for l in self.lifetimes.values() if l.external)

    def total_bytes(self) -> int:
        return sum(l.nbytes for l in self.lifetimes.values())

    # ------------------------------------------------------------------
    _birth_index: Optional[Dict[int, List[TensorLifetime]]] = None
    _death_index: Optional[Dict[int, List[TensorLifetime]]] = None

    def births_at(self, index: int) -> List[TensorLifetime]:
        """Lifetimes starting at operator ``index``, largest first (a
        deterministic allocation order for the footprint simulation)."""
        if self._birth_index is None:
            self._birth_index = {}
            for lifetime in sorted(
                self.lifetimes.values(), key=lambda l: (-l.nbytes, l.key)
            ):
                self._birth_index.setdefault(lifetime.first_index, []).append(lifetime)
        return list(self._birth_index.get(index, ()))

    def deaths_at(self, index: int) -> List[TensorLifetime]:
        """Non-external lifetimes ending at operator ``index``.

        External tensors never die inside the iteration — the replayer
        keeps them across iterations, exactly like model parameters.
        """
        if self._death_index is None:
            self._death_index = {}
            for lifetime in sorted(self.lifetimes.values(), key=lambda l: l.key):
                if not lifetime.external:
                    self._death_index.setdefault(lifetime.last_index, []).append(lifetime)
        return list(self._death_index.get(index, ()))

    def live_bytes_peak(self) -> int:
        """Peak of the analytical live-byte curve (no allocator effects).

        The lower bound any allocator must reserve; the caching-allocator
        simulation reports how much a real pool needs on top of it.
        """
        peak = 0
        live = 0
        for index in range(len(self.operators)):
            live += sum(l.nbytes for l in self.births_at(index))
            peak = max(peak, live)
            live -= sum(l.nbytes for l in self.deaths_at(index))
        return peak


def analyze_lifetimes(
    trace: ExecutionTrace,
    entries: Optional[Sequence] = None,
) -> LifetimeAnalysis:
    """Derive every tensor lifetime of ``trace``.

    ``entries`` may pass a pre-computed replay selection (objects carrying
    ``.node``, e.g. :class:`~repro.core.selection.ReplayPlanEntry`) so the
    analysis sees exactly the operators a replay would run; without it the
    parent/child-deduplicated top-level operators are used.
    """
    if entries is not None:
        operators = [entry.node for entry in entries]
    else:
        operators = iter_top_level_operators(trace)
    backward_ids = backward_node_ids(trace)

    analysis = LifetimeAnalysis(operators=operators)
    lifetimes = analysis.lifetimes
    for index, node in enumerate(operators):
        for ref in node.input_tensor_refs():
            key = (int(ref[0]), int(ref[1]))
            lifetime = lifetimes.get(key)
            if lifetime is None:
                lifetimes[key] = TensorLifetime(
                    key=key,
                    nbytes=tensor_ref_bytes(ref),
                    first_index=index,
                    last_index=index,
                    producer_node_id=None,
                    role=ROLE_PARAMETER,
                )
            else:
                lifetime.last_index = index
        for ref in node.output_tensor_refs():
            key = (int(ref[0]), int(ref[1]))
            lifetime = lifetimes.get(key)
            if lifetime is None:
                role = ROLE_GRADIENT if node.id in backward_ids else ROLE_ACTIVATION
                lifetimes[key] = TensorLifetime(
                    key=key,
                    nbytes=tensor_ref_bytes(ref),
                    first_index=index,
                    last_index=index,
                    producer_node_id=node.id,
                    role=role,
                )
            else:
                # In-place writes extend the existing lifetime.
                lifetime.last_index = index
    return analysis
