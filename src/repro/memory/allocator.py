"""A CUDA-caching-allocator simulator.

PyTorch never returns device memory to the driver on ``free``: the caching
allocator carves ``cudaMalloc``-ed *segments* into *blocks*, keeps freed
blocks on per-stream free lists for reuse, splits oversized blocks, and
coalesces free neighbours.  The distinction it creates — ``reserved``
(memory taken from the device) vs ``allocated`` (memory live in tensors) —
is exactly what ``nvidia-smi`` and ``torch.cuda.memory_*`` report, and what
the paper's Figure 5 memory-usage fidelity is measured against.

This module reproduces that behaviour deterministically in simulation:

* sizes are rounded to 512-byte quanta,
* allocations ≤ 1 MiB are served from 2 MiB "small" segments, allocations
  up to 10 MiB from 20 MiB "large" segments, bigger ones from dedicated
  segments rounded to 2 MiB,
* free blocks are reused best-fit per (pool, stream) and split when the
  remainder is worth keeping,
* adjacent free blocks coalesce, and fully-free segments can be released
  back to the device (``empty_cache``), which the allocator also attempts
  automatically before declaring an OOM.

The allocator never touches real memory — blocks are bookkeeping records —
so footprint timelines over multi-GB traces cost kilobytes to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.hardware.specs import DeviceSpec, get_device_spec

#: All block sizes are multiples of this quantum (bytes).
MIN_BLOCK_BYTES = 512
#: Allocations at or below this size are "small" (served from 2 MiB segments).
SMALL_ALLOC_BYTES = 1 << 20
#: Segment size backing the small pool.
SMALL_SEGMENT_BYTES = 2 << 20
#: Segment size backing large allocations below :data:`MIN_LARGE_ALLOC_BYTES`.
LARGE_SEGMENT_BYTES = 20 << 20
#: Allocations at or above this get a dedicated, 2 MiB-rounded segment.
MIN_LARGE_ALLOC_BYTES = 10 << 20
#: Rounding quantum for dedicated large segments.
LARGE_ROUND_BYTES = 2 << 20

#: Pool labels.
POOL_SMALL = "small"
POOL_LARGE = "large"


class SimulatedOOM(RuntimeError):
    """The simulated device ran out of memory.

    Carries the request that failed and an allocator statistics snapshot so
    callers can build a structured OOM event.
    """

    def __init__(self, requested_bytes: int, stats: "AllocatorStats") -> None:
        self.requested_bytes = int(requested_bytes)
        self.stats = stats
        super().__init__(
            f"simulated device out of memory: tried to allocate "
            f"{format_bytes(requested_bytes)} "
            f"({format_bytes(stats.allocated_bytes)} allocated, "
            f"{format_bytes(stats.reserved_bytes)} reserved, "
            f"capacity {format_bytes(stats.capacity_bytes)})"
        )


def round_block_size(nbytes: int) -> int:
    """Round a request up to the allocator's 512-byte quantum (≥ 512)."""
    nbytes = max(int(nbytes), 1)
    return ((nbytes + MIN_BLOCK_BYTES - 1) // MIN_BLOCK_BYTES) * MIN_BLOCK_BYTES


def segment_size_for(rounded: int) -> int:
    """Size of the segment ``cudaMalloc``-ed to serve a rounded request."""
    if rounded <= SMALL_ALLOC_BYTES:
        return SMALL_SEGMENT_BYTES
    if rounded < MIN_LARGE_ALLOC_BYTES:
        return LARGE_SEGMENT_BYTES
    return ((rounded + LARGE_ROUND_BYTES - 1) // LARGE_ROUND_BYTES) * LARGE_ROUND_BYTES


def pool_for(rounded: int) -> str:
    return POOL_SMALL if rounded <= SMALL_ALLOC_BYTES else POOL_LARGE


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (``512 B``, ``20.00 MiB``, ``1.50 GiB``)."""
    nbytes = float(nbytes)
    for unit, scale in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if abs(nbytes) >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{int(nbytes)} B"


def parse_byte_size(value: "int | float | str") -> int:
    """Parse a byte budget: an int/float (bytes) or ``"4GB"``-style string.

    Accepts ``B``, ``KB``/``KiB``, ``MB``/``MiB``, ``GB``/``GiB`` suffixes
    (case-insensitive, binary scale throughout — PyTorch's memory counters
    are binary-scaled too).
    """
    if isinstance(value, (int, float)):
        return int(value)
    text = value.strip().lower().replace(" ", "")
    scales = {"gib": 1 << 30, "gb": 1 << 30, "mib": 1 << 20, "mb": 1 << 20,
              "kib": 1 << 10, "kb": 1 << 10, "b": 1}
    for suffix, scale in scales.items():
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * scale)
    return int(float(text))


def device_capacity_bytes(device: "str | DeviceSpec") -> int:
    """Usable device-memory pool of a platform, in bytes.

    ``DeviceSpec.mem_capacity_gb`` is a datasheet GB figure; HBM capacities
    are binary-scaled in practice (an "A100-40GB" exposes 40 GiB), so the
    pool is ``capacity_gb`` GiB.
    """
    spec = get_device_spec(device) if isinstance(device, str) else device
    return int(spec.mem_capacity_gb * (1 << 30))


# ----------------------------------------------------------------------
# Blocks and segments
# ----------------------------------------------------------------------
@dataclass
class Block:
    """One contiguous region of a segment (allocated or cached-free)."""

    segment: "Segment"
    offset: int
    size: int
    allocated: bool = False
    #: Raw (pre-rounding) request size; 0 while the block is free.
    requested: int = 0

    @property
    def stream(self) -> int:
        return self.segment.stream

    @property
    def pool(self) -> str:
        return self.segment.pool

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alloc" if self.allocated else "free"
        return f"<Block {state} {format_bytes(self.size)} @+{self.offset}>"


@dataclass
class Segment:
    """One simulated ``cudaMalloc`` region, carved into ordered blocks."""

    index: int
    size: int
    stream: int
    pool: str
    blocks: List[Block] = field(default_factory=list)

    def is_free(self) -> bool:
        return all(not block.allocated for block in self.blocks)

    def allocated_bytes(self) -> int:
        return sum(block.size for block in self.blocks if block.allocated)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "size": self.size,
            "stream": self.stream,
            "pool": self.pool,
            "blocks": [
                {"offset": b.offset, "size": b.size, "allocated": b.allocated}
                for b in self.blocks
            ],
        }


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
@dataclass
class AllocatorStats:
    """Point-in-time counters of a :class:`CachingAllocator`.

    Mirrors the ``torch.cuda.memory_stats`` vocabulary: ``allocated`` is
    memory live in blocks, ``reserved`` is memory taken from the device,
    and the gap between the two is cache + fragmentation.
    """

    capacity_bytes: int = 0
    allocated_bytes: int = 0
    reserved_bytes: int = 0
    requested_bytes: int = 0
    peak_allocated_bytes: int = 0
    peak_reserved_bytes: int = 0
    active_blocks: int = 0
    cached_blocks: int = 0
    segments: int = 0
    alloc_count: int = 0
    free_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    device_mallocs: int = 0
    device_frees: int = 0

    @property
    def fragmentation(self) -> float:
        """Share of reserved memory not live in tensors (0 when empty)."""
        if self.reserved_bytes <= 0:
            return 0.0
        return 1.0 - self.allocated_bytes / self.reserved_bytes

    def to_dict(self) -> Dict[str, Any]:
        data = {f: getattr(self, f) for f in self.__dataclass_fields__}
        data["fragmentation"] = self.fragmentation
        return data


# ----------------------------------------------------------------------
# The allocator
# ----------------------------------------------------------------------
class CachingAllocator:
    """Deterministic simulation of the PyTorch CUDA caching allocator.

    Parameters
    ----------
    capacity_bytes:
        Device pool size; ``malloc`` raises :class:`SimulatedOOM` when a
        segment allocation would exceed it (after retrying with the cache
        released).  Pass :func:`device_capacity_bytes` of a
        :class:`~repro.hardware.specs.DeviceSpec` — or a smaller budget for
        OOM what-if runs.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._segments: List[Segment] = []
        self._free_blocks: Dict[Tuple[str, int], List[Block]] = {}
        self._next_segment = 0
        self._allocated = 0
        self._requested = 0
        self._reserved = 0
        self._peak_allocated = 0
        self._peak_reserved = 0
        self._alloc_count = 0
        self._free_count = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._device_mallocs = 0
        self._device_frees = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @classmethod
    def for_device(cls, device: "str | DeviceSpec") -> "CachingAllocator":
        return cls(device_capacity_bytes(device))

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    def malloc(self, nbytes: int, stream: int = 0) -> Block:
        """Allocate ``nbytes`` on ``stream``; raises :class:`SimulatedOOM`."""
        rounded = round_block_size(nbytes)
        pool = pool_for(rounded)
        block = self._take_from_cache(pool, stream, rounded)
        if block is None:
            self._cache_misses += 1
            segment = self._new_segment(rounded, pool, stream)
            block = segment.blocks[0]
        else:
            self._cache_hits += 1
        block = self._maybe_split(block, rounded)
        block.allocated = True
        block.requested = int(nbytes)
        self._allocated += block.size
        self._requested += block.requested
        self._peak_allocated = max(self._peak_allocated, self._allocated)
        self._alloc_count += 1
        return block

    def free(self, block: Block) -> None:
        """Return a block to the cache (never to the device) and coalesce."""
        if not block.allocated:
            raise ValueError(f"double free of {block!r}")
        block.allocated = False
        self._allocated -= block.size
        self._requested -= block.requested
        block.requested = 0
        self._free_count += 1
        self._coalesce(block)

    def empty_cache(self) -> int:
        """Release every fully-free segment to the device; bytes released."""
        released = 0
        for segment in list(self._segments):
            if segment.is_free():
                released += self._release_segment(segment)
        return released

    def stats(self) -> AllocatorStats:
        cached = sum(len(blocks) for blocks in self._free_blocks.values())
        return AllocatorStats(
            capacity_bytes=self.capacity_bytes,
            allocated_bytes=self._allocated,
            reserved_bytes=self._reserved,
            requested_bytes=self._requested,
            peak_allocated_bytes=self._peak_allocated,
            peak_reserved_bytes=self._peak_reserved,
            active_blocks=sum(
                1 for s in self._segments for b in s.blocks if b.allocated
            ),
            cached_blocks=cached,
            segments=len(self._segments),
            alloc_count=self._alloc_count,
            free_count=self._free_count,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            device_mallocs=self._device_mallocs,
            device_frees=self._device_frees,
        )

    def snapshot(self) -> Dict[str, Any]:
        """Full allocator state (the OOM-report attachment): stats plus the
        per-segment block map, mirroring ``torch.cuda.memory_snapshot``."""
        return {
            "stats": self.stats().to_dict(),
            "segments": [segment.to_dict() for segment in self._segments],
        }

    def segments(self) -> List[Segment]:
        return list(self._segments)

    def check_consistency(self) -> None:
        """Assert the structural invariants (used by the property tests).

        Every segment's blocks must tile it exactly (ordered, contiguous,
        no overlap), every cached-free block must be registered in exactly
        one free list, and the byte counters must match the block map.
        """
        allocated = 0
        free_registered = {
            id(block) for blocks in self._free_blocks.values() for block in blocks
        }
        seen_free = set()
        for segment in self._segments:
            offset = 0
            for block in segment.blocks:
                if block.offset != offset:
                    raise AssertionError(
                        f"segment {segment.index}: block at +{block.offset}, expected +{offset}"
                    )
                offset += block.size
                if block.allocated:
                    allocated += block.size
                else:
                    if id(block) not in free_registered:
                        raise AssertionError(f"free block {block!r} missing from free lists")
                    seen_free.add(id(block))
            if offset != segment.size:
                raise AssertionError(
                    f"segment {segment.index}: blocks cover {offset} of {segment.size} bytes"
                )
        if seen_free != free_registered:
            raise AssertionError("free list holds blocks that are not in any segment")
        if allocated != self._allocated:
            raise AssertionError(
                f"allocated counter {self._allocated} != block map total {allocated}"
            )
        reserved = sum(segment.size for segment in self._segments)
        if reserved != self._reserved:
            raise AssertionError(
                f"reserved counter {self._reserved} != segment total {reserved}"
            )
        if self._allocated > self._reserved:
            raise AssertionError("allocated exceeds reserved")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _free_list(self, pool: str, stream: int) -> List[Block]:
        return self._free_blocks.setdefault((pool, stream), [])

    def _take_from_cache(self, pool: str, stream: int, rounded: int) -> Optional[Block]:
        """Best-fit search of the (pool, stream) free list."""
        candidates = self._free_list(pool, stream)
        best: Optional[Block] = None
        for block in candidates:
            if block.size >= rounded and (best is None or block.size < best.size):
                best = block
        if best is not None:
            candidates.remove(best)
        return best

    def _new_segment(self, rounded: int, pool: str, stream: int) -> Segment:
        size = segment_size_for(rounded)
        if self._reserved + size > self.capacity_bytes:
            # Same order as the real allocator: release cached segments,
            # then retry the device allocation before giving up.
            self.empty_cache()
        if self._reserved + size > self.capacity_bytes:
            raise SimulatedOOM(rounded, self.stats())
        segment = Segment(index=self._next_segment, size=size, stream=stream, pool=pool)
        self._next_segment += 1
        root = Block(segment=segment, offset=0, size=size)
        segment.blocks.append(root)
        self._segments.append(segment)
        self._reserved += size
        self._peak_reserved = max(self._peak_reserved, self._reserved)
        self._device_mallocs += 1
        return segment

    def _maybe_split(self, block: Block, rounded: int) -> Block:
        """Split the remainder off an oversized block when worth keeping.

        Small-pool remainders are kept from one quantum up; large-pool
        remainders only when they exceed the small-alloc threshold —
        matching the real allocator's anti-fragmentation policy.
        """
        remaining = block.size - rounded
        threshold = MIN_BLOCK_BYTES if block.pool == POOL_SMALL else SMALL_ALLOC_BYTES
        keep = remaining >= threshold if block.pool == POOL_SMALL else remaining > threshold
        if not keep:
            return block
        remainder = Block(
            segment=block.segment, offset=block.offset + rounded, size=remaining
        )
        block.size = rounded
        siblings = block.segment.blocks
        siblings.insert(siblings.index(block) + 1, remainder)
        self._free_list(block.pool, block.stream).append(remainder)
        return block

    def _coalesce(self, block: Block) -> None:
        """Merge a newly-freed block with free neighbours, then cache it."""
        siblings = block.segment.blocks
        index = siblings.index(block)
        free_list = self._free_list(block.pool, block.stream)
        # Absorb the right neighbour first so offsets stay stable.
        if index + 1 < len(siblings) and not siblings[index + 1].allocated:
            right = siblings.pop(index + 1)
            free_list.remove(right)
            block.size += right.size
        if index > 0 and not siblings[index - 1].allocated:
            left = siblings[index - 1]
            free_list.remove(left)
            left.size += block.size
            siblings.pop(index)
            block = left
        free_list.append(block)

    def _release_segment(self, segment: Segment) -> int:
        free_list = self._free_list(segment.pool, segment.stream)
        for block in segment.blocks:
            free_list.remove(block)
        self._segments.remove(segment)
        self._reserved -= segment.size
        self._device_frees += 1
        return segment.size
