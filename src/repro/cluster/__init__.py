"""``repro.cluster`` — multi-rank distributed replay.

The single-rank pipeline replays one trace at a time; this subsystem
replays a *fleet* of per-rank traces together under a virtual-time
collective scheduler, making straggler skew and communication/compute
overlap first-class measurements:

* :class:`~repro.cluster.rendezvous.EventRendezvous` matches each
  collective across ranks by (process-group ranks, sequence id, operator
  name), prices it once, and releases all participants at the same
  virtual completion time;
* :class:`~repro.cluster.replica.RankReplica` runs one rank's stage
  pipeline with the rendezvous-aware
  :class:`~repro.cluster.replica.SyncCollectivesStage`;
* :class:`~repro.cluster.scheduler.VirtualTimeScheduler` advances every
  rank's op cursor on a single thread, parking cursors on unresolved
  collectives and waking them when the rendezvous resolves — this is what
  lets one process co-replay thousands of ranks (and, via its
  ``interrupt`` hook, lets the daemon pause a cluster job at a
  rendezvous boundary);
* :class:`~repro.cluster.engine.ClusterReplayer` pre-flight-matches the
  fleet, drives the scheduler, and aggregates the
  :class:`~repro.cluster.engine.ClusterReport` (per-rank
  exposed-communication time, rendezvous stall, slowest-rank critical
  path).

The public entry point is :func:`repro.api.replay_cluster`; the CLI
counterpart is ``python -m repro replay-dist <trace-dir>``.
"""

from repro.cluster.engine import (
    ClusterMatchError,
    ClusterReplayError,
    ClusterReplayer,
    ClusterReport,
    CollectiveMatchReport,
    RankReport,
    match_collectives,
)
from repro.cluster.replica import RankReplica, SyncCollectivesStage
from repro.cluster.rendezvous import (
    CollectiveEvent,
    CollectiveSyncError,
    EventRendezvous,
    RankBlocked,
    RendezvousCore,
    RendezvousStats,
)
from repro.cluster.scheduler import ClusterPaused, RankCursor, VirtualTimeScheduler

__all__ = [
    "ClusterMatchError",
    "ClusterPaused",
    "ClusterReplayError",
    "ClusterReplayer",
    "ClusterReport",
    "CollectiveEvent",
    "CollectiveMatchReport",
    "CollectiveSyncError",
    "EventRendezvous",
    "RankBlocked",
    "RankCursor",
    "RankReplica",
    "RankReport",
    "RendezvousCore",
    "RendezvousStats",
    "SyncCollectivesStage",
    "VirtualTimeScheduler",
    "match_collectives",
]
