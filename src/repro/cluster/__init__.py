"""``repro.cluster`` — multi-rank distributed replay.

The single-rank pipeline replays one trace at a time; this subsystem
replays a *fleet* of per-rank traces together under a virtual-time
collective scheduler, making straggler skew and communication/compute
overlap first-class measurements:

* :class:`~repro.cluster.rendezvous.CollectiveRendezvous` matches each
  collective across ranks by (process-group ranks, sequence id, operator
  name), prices it once, and releases all participants at the same virtual
  completion time;
* :class:`~repro.cluster.replica.RankReplica` runs one rank's stage
  pipeline with the rendezvous-aware
  :class:`~repro.cluster.replica.SyncCollectivesStage`;
* :class:`~repro.cluster.engine.ClusterReplayer` pre-flight-matches the
  fleet, fans the replicas over the service layer's worker pool, and
  aggregates the :class:`~repro.cluster.engine.ClusterReport` (per-rank
  exposed-communication time, rendezvous stall, slowest-rank critical
  path).

The public entry point is :func:`repro.api.replay_cluster`; the CLI
counterpart is ``python -m repro replay-dist <trace-dir>``.
"""

from repro.cluster.engine import (
    ClusterMatchError,
    ClusterReplayError,
    ClusterReplayer,
    ClusterReport,
    CollectiveMatchReport,
    RankReport,
    match_collectives,
)
from repro.cluster.replica import RankReplica, SyncCollectivesStage
from repro.cluster.rendezvous import (
    CollectiveEvent,
    CollectiveRendezvous,
    CollectiveSyncError,
    RendezvousStats,
)

__all__ = [
    "ClusterMatchError",
    "ClusterReplayError",
    "ClusterReplayer",
    "ClusterReport",
    "CollectiveEvent",
    "CollectiveMatchReport",
    "CollectiveRendezvous",
    "CollectiveSyncError",
    "RankReplica",
    "RankReport",
    "RendezvousStats",
    "SyncCollectivesStage",
    "match_collectives",
]
