"""Cross-rank collective matching and virtual-time release.

The paper's distributed replay (Section 4.3.2) captures one execution trace
per rank, from the same iteration, precisely so that the communication
operators can be *matched* across ranks during replay.  The
:class:`CollectiveRendezvous` is where that matching happens at replay
time: every rank replica announces each collective it reaches — identified
by (process-group ranks, per-group sequence number, operator name) — along
with the virtual time at which its GPU could start the kernel.  Once every
participating replica has arrived, the rendezvous

* prices the collective **once** with the shared
  :class:`~repro.hardware.network.CollectiveCostModel` (all ranks see the
  same duration, as a real NCCL kernel would),
* picks one start time — the *latest* arrival, because a collective cannot
  begin until its slowest participant is ready — and
* releases every participant with the same (start, duration) pair, i.e. the
  same virtual completion time.

The gap between a rank's own arrival and the common start time is that
rank's *stall* (time spent waiting for stragglers), and the spread between
the earliest and latest arrival is the collective's *skew* — both are
recorded per event and aggregated into the
:class:`~repro.cluster.engine.ClusterReport`.

Replicas run on one thread each (see
:class:`~repro.cluster.engine.ClusterReplayer`); the rendezvous is the only
synchronisation point between them, and because a collective resolves only
after **all** participants arrive, the resolved schedule is deterministic
regardless of thread interleaving.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.network import CollectiveCostModel

#: Identity of one collective call site: (sorted group ranks, op name).
#: Together with a per-rank, per-key sequence number this matches calls
#: across ranks the way NCCL matches them: by issue order within a group.
CollectiveKey = Tuple[Tuple[int, ...], str]


class CollectiveSyncError(RuntimeError):
    """A collective could not be matched across the participating replicas
    (a rank finished or failed without issuing it, or the wait timed out)."""


def normalize_op(op_name: str) -> str:
    """Collective name as matched across ranks (``c10d::all_reduce`` and
    ``all_reduce`` are the same operator)."""
    return op_name.split("::")[-1].lower()


@dataclass
class CollectiveEvent:
    """One resolved (matched and priced) collective."""

    key: CollectiveKey
    seq: int
    start_us: float
    duration_us: float
    #: rank -> virtual arrival time; the spread is the collective's skew.
    arrivals: Dict[int, float] = field(default_factory=dict)
    bytes_per_rank: float = 0.0

    @property
    def skew_us(self) -> float:
        if len(self.arrivals) < 2:
            return 0.0
        times = self.arrivals.values()
        return max(times) - min(times)

    def stall_us(self, rank: int) -> float:
        """Time ``rank`` spent waiting for the other participants."""
        arrival = self.arrivals.get(rank)
        if arrival is None:
            return 0.0
        return max(0.0, self.start_us - arrival)


@dataclass
class _Pending:
    """A collective some (but not yet all) participants have reached."""

    expected: frozenset
    arrivals: Dict[int, float] = field(default_factory=dict)
    bytes_per_rank: float = 0.0
    resolved: Optional[Tuple[float, Optional[float]]] = None
    failed: Optional[str] = None
    #: Participants that have not yet read the resolution; the slot is
    #: dropped once the last one consumes it, so the pending map stays
    #: bounded by in-flight collectives rather than growing with
    #: iterations x collectives.
    consumers: set = field(default_factory=set)


class CollectiveRendezvous:
    """Matches, prices and releases collectives across rank replicas.

    Parameters
    ----------
    cost_model:
        The shared interconnect model; each matched collective is priced
        through it exactly once.
    participants:
        The ranks being co-replayed.  A collective recorded over group
        ``G`` waits for ``G ∩ participants`` — replaying a subset of a
        fleet (symmetric data-parallel ranks) therefore still synchronises
        correctly among the replicas that exist.
    timeout_s:
        Real-time cap on one rendezvous wait.  The pre-flight match check
        (:func:`repro.cluster.engine.match_collectives`) makes a genuine
        mismatch almost impossible; the timeout is the last-resort guard
        against hangs.
    """

    def __init__(
        self,
        cost_model: CollectiveCostModel,
        participants: Sequence[int],
        timeout_s: float = 60.0,
    ) -> None:
        self.cost_model = cost_model
        self.participants = frozenset(int(r) for r in participants)
        self.timeout_s = timeout_s
        self._cond = threading.Condition()
        self._seq: Dict[Tuple[int, CollectiveKey], int] = {}
        self._pending: Dict[Tuple[CollectiveKey, int], _Pending] = {}
        self._retired: set = set()
        self.events: List[CollectiveEvent] = []

    # ------------------------------------------------------------------
    def sync(
        self,
        rank: int,
        op: str,
        group_ranks: Sequence[int],
        bytes_per_rank: float,
        arrival_us: float,
    ) -> Tuple[float, Optional[float]]:
        """Announce a collective and block until all participants arrive.

        Returns ``(start_us, duration_us)`` shared by every participant.
        ``duration_us`` is ``None`` for degenerate singleton groups (a
        local no-op, priced by the kernel cost model as a memcpy).
        """
        key: CollectiveKey = (tuple(sorted(int(r) for r in group_ranks)), normalize_op(op))
        expected = frozenset(key[0]) & self.participants
        with self._cond:
            seq = self._seq.get((rank, key), 0)
            self._seq[(rank, key)] = seq + 1
            if len(expected) <= 1:
                # Only this replica participates (the rest of the recorded
                # group is not being replayed): nothing to wait for, but the
                # collective is still priced at the recorded group size.
                duration = self._price(key, bytes_per_rank)
                self._record(key, seq, arrival_us, duration, {rank: arrival_us}, bytes_per_rank)
                return arrival_us, duration

            slot = (key, seq)
            pending = self._pending.get(slot)
            if pending is None:
                pending = _Pending(expected=expected, consumers=set(expected))
                self._pending[slot] = pending
            pending.arrivals[rank] = arrival_us
            pending.bytes_per_rank = max(pending.bytes_per_rank, bytes_per_rank)

            if set(pending.arrivals) >= pending.expected:
                start = max(pending.arrivals.values())
                duration = self._price(key, pending.bytes_per_rank)
                pending.resolved = (start, duration)
                self._record(key, seq, start, duration, dict(pending.arrivals), pending.bytes_per_rank)
                self._cond.notify_all()
            else:
                missing = pending.expected - set(pending.arrivals) - self._retired
                if not missing:
                    pending.failed = self._mismatch_message(key, seq, pending)
                    self._cond.notify_all()

            waited = self._cond.wait_for(
                lambda: pending.resolved is not None or pending.failed is not None,
                timeout=self.timeout_s,
            )
            if pending.failed is not None:
                raise CollectiveSyncError(pending.failed)
            if not waited:
                raise CollectiveSyncError(
                    f"rendezvous timed out after {self.timeout_s}s waiting for "
                    f"{sorted(pending.expected - set(pending.arrivals))} on collective "
                    f"{key[1]}[{seq}] over ranks {list(key[0])}"
                )
            assert pending.resolved is not None
            pending.consumers.discard(rank)
            if not pending.consumers:
                del self._pending[slot]
            return pending.resolved

    # ------------------------------------------------------------------
    def retire(self, rank: int) -> None:
        """A replica finished (or failed): any collective still waiting on
        it can never resolve — fail those waiters instead of hanging."""
        with self._cond:
            self._retired.add(int(rank))
            for (key, seq), pending in self._pending.items():
                if pending.resolved is not None or pending.failed is not None:
                    continue
                if not pending.arrivals:
                    continue
                missing = pending.expected - set(pending.arrivals) - self._retired
                if not missing:
                    pending.failed = self._mismatch_message(key, seq, pending)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def stats(
        self, measure_start_by_rank: Optional[Dict[int, float]] = None
    ) -> "RendezvousStats":
        """Aggregate view of the resolved collectives (thread-safe).

        With ``measure_start_by_rank`` given, only collectives inside the
        measured region count — an event is measured when every
        participant arrived at or after its own measurement window start —
        so warm-up iterations do not inflate stall, skew or the matched
        count (every other reported metric is windowed the same way).
        """
        with self._cond:
            events = list(self.events)
        if measure_start_by_rank is not None:
            events = [
                event
                for event in events
                if all(
                    arrival >= measure_start_by_rank.get(rank, 0.0)
                    for rank, arrival in event.arrivals.items()
                )
            ]
        stall: Dict[int, float] = {rank: 0.0 for rank in self.participants}
        skews = []
        for event in events:
            skews.append(event.skew_us)
            for rank in event.arrivals:
                stall[rank] = stall.get(rank, 0.0) + event.stall_us(rank)
        return RendezvousStats(
            matched=len(events),
            max_skew_us=max(skews, default=0.0),
            mean_skew_us=(sum(skews) / len(skews)) if skews else 0.0,
            stall_us_by_rank=stall,
        )

    # ------------------------------------------------------------------
    def _price(self, key: CollectiveKey, bytes_per_rank: float) -> Optional[float]:
        group_size = len(key[0])
        if group_size <= 1:
            # Degenerate singleton "collective": free of alpha-beta cost.
            return None
        return self.cost_model.collective_us(key[1], bytes_per_rank, group_size)

    def _record(
        self,
        key: CollectiveKey,
        seq: int,
        start: float,
        duration: Optional[float],
        arrivals: Dict[int, float],
        bytes_per_rank: float,
    ) -> None:
        self.events.append(
            CollectiveEvent(
                key=key,
                seq=seq,
                start_us=start,
                duration_us=duration if duration is not None else 0.0,
                arrivals=arrivals,
                bytes_per_rank=bytes_per_rank,
            )
        )

    @staticmethod
    def _mismatch_message(key: CollectiveKey, seq: int, pending: _Pending) -> str:
        missing = sorted(pending.expected - set(pending.arrivals))
        return (
            f"collective {key[1]}[{seq}] over ranks {list(key[0])} can never complete: "
            f"participant(s) {missing} finished their trace without issuing it "
            f"(arrived: {sorted(pending.arrivals)})"
        )


@dataclass
class RendezvousStats:
    """Scalar aggregates over all resolved collectives of one co-replay."""

    matched: int = 0
    max_skew_us: float = 0.0
    mean_skew_us: float = 0.0
    stall_us_by_rank: Dict[int, float] = field(default_factory=dict)
