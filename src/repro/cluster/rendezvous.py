"""Cross-rank collective matching and virtual-time release.

The paper's distributed replay (Section 4.3.2) captures one execution trace
per rank, from the same iteration, precisely so that the communication
operators can be *matched* across ranks during replay.  A rendezvous is
where that matching happens at replay time: every rank replica announces
each collective it reaches — identified by (process-group ranks, per-group
sequence number, operator name) — along with the virtual time at which its
GPU could start the kernel.  Once every participating replica has arrived,
the rendezvous

* prices the collective **once** with the shared
  :class:`~repro.hardware.network.CollectiveCostModel` (all ranks see the
  same duration, as a real NCCL kernel would),
* picks one start time — the *latest* arrival, because a collective cannot
  begin until its slowest participant is ready — and
* releases every participant with the same (start, duration) pair, i.e. the
  same virtual completion time.

The gap between a rank's own arrival and the common start time is that
rank's *stall* (time spent waiting for stragglers), and the spread between
the earliest and latest arrival is the collective's *skew* — both are
recorded per event and aggregated into the
:class:`~repro.cluster.engine.ClusterReport`.

:class:`EventRendezvous` is the concrete implementation — the *event
source* driving the single-threaded
:class:`~repro.cluster.scheduler.VirtualTimeScheduler`: instead of
blocking, an unresolved ``sync`` raises :class:`RankBlocked` so the
scheduler can park the rank's op cursor and advance another rank; slots
that resolve (or fail) are queued for :meth:`~EventRendezvous.take_ready`
so the scheduler knows exactly which cursors to wake.  (A thread-barrier
sibling, ``CollectiveRendezvous``, soaked one release as the
differential-testing oracle and has been retired; the matching/pricing
core it validated lives on in :class:`RendezvousCore`.)

Because a collective resolves only after **all** participants arrive, the
resolved schedule is deterministic regardless of cursor scheduling order;
:meth:`~RendezvousCore.stats` additionally sorts the event log canonically
before accumulating, so the aggregated floats are byte-identical across
schedules too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.network import CollectiveCostModel

#: Identity of one collective call site: (sorted group ranks, op name).
#: Together with a per-rank, per-key sequence number this matches calls
#: across ranks the way NCCL matches them: by issue order within a group.
CollectiveKey = Tuple[Tuple[int, ...], str]

#: One matching slot: a collective key plus its per-group sequence number.
CollectiveSlot = Tuple[CollectiveKey, int]


class CollectiveSyncError(RuntimeError):
    """A collective could not be matched across the participating replicas
    (a rank finished or failed without issuing it, or the fleet's
    collective issue orders are cross-wired)."""


class RankBlocked(Exception):
    """Control-flow signal of the event engine: the announcing rank cannot
    proceed until the collective slot resolves.

    Raised by :meth:`EventRendezvous.sync` *instead of blocking*; caught by
    the rank's op cursor (:mod:`repro.cluster.scheduler`), which rolls the
    runtime back to the op boundary, parks on :attr:`slot`, and retries the
    op once the scheduler reports the slot resolved.  Never escapes the
    scheduler — seeing one outside it means a blocking code path called an
    event rendezvous.
    """

    def __init__(self, slot: CollectiveSlot) -> None:
        key, seq = slot
        super().__init__(f"rank blocked on collective {key[1]}[{seq}] over ranks {list(key[0])}")
        self.slot = slot


def normalize_op(op_name: str) -> str:
    """Collective name as matched across ranks (``c10d::all_reduce`` and
    ``all_reduce`` are the same operator)."""
    return op_name.split("::")[-1].lower()


@dataclass
class CollectiveEvent:
    """One resolved (matched and priced) collective."""

    key: CollectiveKey
    seq: int
    start_us: float
    duration_us: float
    #: rank -> virtual arrival time; the spread is the collective's skew.
    arrivals: Dict[int, float] = field(default_factory=dict)
    bytes_per_rank: float = 0.0

    @property
    def skew_us(self) -> float:
        if len(self.arrivals) < 2:
            return 0.0
        times = self.arrivals.values()
        return max(times) - min(times)

    def stall_us(self, rank: int) -> float:
        """Time ``rank`` spent waiting for the other participants."""
        arrival = self.arrivals.get(rank)
        if arrival is None:
            return 0.0
        return max(0.0, self.start_us - arrival)


@dataclass
class _Pending:
    """A collective some (but not yet all) participants have reached."""

    expected: frozenset
    arrivals: Dict[int, float] = field(default_factory=dict)
    bytes_per_rank: float = 0.0
    resolved: Optional[Tuple[float, Optional[float]]] = None
    failed: Optional[str] = None
    #: Participants that have not yet read the resolution; the slot is
    #: dropped once the last one consumes it, so the pending map stays
    #: bounded by in-flight collectives rather than growing with
    #: iterations x collectives.
    consumers: set = field(default_factory=set)


class RendezvousCore:
    """Matching, pricing and aggregation shared by both rendezvous kinds.

    Parameters
    ----------
    cost_model:
        The shared interconnect model; each matched collective is priced
        through it exactly once.
    participants:
        The ranks being co-replayed.  A collective recorded over group
        ``G`` waits for ``G ∩ participants`` — replaying a subset of a
        fleet (symmetric data-parallel ranks) therefore still synchronises
        correctly among the replicas that exist.
    """

    def __init__(
        self,
        cost_model: CollectiveCostModel,
        participants: Sequence[int],
    ) -> None:
        self.cost_model = cost_model
        self.participants = frozenset(int(r) for r in participants)
        self._seq: Dict[Tuple[int, CollectiveKey], int] = {}
        self._pending: Dict[CollectiveSlot, _Pending] = {}
        self._retired: set = set()
        self.events: List[CollectiveEvent] = []

    # ------------------------------------------------------------------
    def sync(
        self,
        rank: int,
        op: str,
        group_ranks: Sequence[int],
        bytes_per_rank: float,
        arrival_us: float,
    ) -> Tuple[float, Optional[float]]:
        """Announce a collective; subclasses define the waiting discipline."""
        raise NotImplementedError

    def retire(self, rank: int) -> None:
        """A replica finished (or failed): any collective still waiting on
        it can never resolve — fail those waiters instead of hanging."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _events_snapshot(self) -> List[CollectiveEvent]:
        return list(self.events)

    def stats(
        self, measure_start_by_rank: Optional[Dict[int, float]] = None
    ) -> "RendezvousStats":
        """Aggregate view of the resolved collectives.

        With ``measure_start_by_rank`` given, only collectives inside the
        measured region count — an event is measured when every
        participant arrived at or after its own measurement window start —
        so warm-up iterations do not inflate stall, skew or the matched
        count (every other reported metric is windowed the same way).

        Events are accumulated in a *canonical* order (sorted by key,
        sequence and arrivals) rather than resolution order: float addition
        is not associative, and the append order of the event log depends
        on the cursor schedule.  Sorting first makes the aggregated
        stall/skew sums byte-identical across schedules.
        """
        events = self._events_snapshot()
        if measure_start_by_rank is not None:
            events = [
                event
                for event in events
                if all(
                    arrival >= measure_start_by_rank.get(rank, 0.0)
                    for rank, arrival in event.arrivals.items()
                )
            ]
        events.sort(key=_event_sort_key)
        stall: Dict[int, float] = {rank: 0.0 for rank in self.participants}
        skews = []
        for event in events:
            skews.append(event.skew_us)
            for rank in event.arrivals:
                stall[rank] = stall.get(rank, 0.0) + event.stall_us(rank)
        return RendezvousStats(
            matched=len(events),
            max_skew_us=max(skews, default=0.0),
            mean_skew_us=(sum(skews) / len(skews)) if skews else 0.0,
            stall_us_by_rank=stall,
        )

    # ------------------------------------------------------------------
    def _price(self, key: CollectiveKey, bytes_per_rank: float) -> Optional[float]:
        group_size = len(key[0])
        if group_size <= 1:
            # Degenerate singleton "collective": free of alpha-beta cost.
            return None
        return self.cost_model.collective_us(key[1], bytes_per_rank, group_size)

    def _record(
        self,
        key: CollectiveKey,
        seq: int,
        start: float,
        duration: Optional[float],
        arrivals: Dict[int, float],
        bytes_per_rank: float,
    ) -> None:
        self.events.append(
            CollectiveEvent(
                key=key,
                seq=seq,
                start_us=start,
                duration_us=duration if duration is not None else 0.0,
                arrivals=arrivals,
                bytes_per_rank=bytes_per_rank,
            )
        )

    @staticmethod
    def _mismatch_message(key: CollectiveKey, seq: int, pending: _Pending) -> str:
        missing = sorted(pending.expected - set(pending.arrivals))
        return (
            f"collective {key[1]}[{seq}] over ranks {list(key[0])} can never complete: "
            f"participant(s) {missing} finished their trace without issuing it "
            f"(arrived: {sorted(pending.arrivals)})"
        )


def _event_sort_key(event: CollectiveEvent):
    return (event.key[0], event.key[1], event.seq, sorted(event.arrivals.items()))


class EventRendezvous(RendezvousCore):
    """Non-blocking rendezvous: the event source of the virtual-time
    scheduler (:class:`~repro.cluster.scheduler.VirtualTimeScheduler`).

    :meth:`sync` never blocks.  When a slot cannot resolve yet it raises
    :class:`RankBlocked`; the scheduler parks the rank's cursor on the slot
    and advances another rank.  Slots that resolve or fail are queued and
    handed to the scheduler through :meth:`take_ready`, which wakes exactly
    the parked cursors — woken cursors *retry* the same ``sync`` call, and
    the retry is recognised (same in-flight slot per rank) so the per-group
    sequence number is not consumed twice.
    """

    def __init__(
        self,
        cost_model: CollectiveCostModel,
        participants: Sequence[int],
    ) -> None:
        super().__init__(cost_model, participants)
        #: rank -> the slot its parked (to-be-retried) sync announced.
        self._inflight: Dict[int, CollectiveSlot] = {}
        #: Slots resolved/failed since the scheduler last drained.
        self._ready: List[CollectiveSlot] = []

    # ------------------------------------------------------------------
    def sync(
        self,
        rank: int,
        op: str,
        group_ranks: Sequence[int],
        bytes_per_rank: float,
        arrival_us: float,
    ) -> Tuple[float, Optional[float]]:
        """Announce a collective; return ``(start_us, duration_us)`` when
        the slot is resolved, raise :class:`RankBlocked` when it is not."""
        key: CollectiveKey = (tuple(sorted(int(r) for r in group_ranks)), normalize_op(op))
        slot = self._inflight.get(rank)
        if slot is None:
            # First announcement of this invocation: consume a sequence
            # number and register the arrival.  A retry after RankBlocked
            # skips this block — the op replays from the same cursor
            # position, so key and arrival are unchanged.
            expected = frozenset(key[0]) & self.participants
            seq = self._seq.get((rank, key), 0)
            self._seq[(rank, key)] = seq + 1
            if len(expected) <= 1:
                duration = self._price(key, bytes_per_rank)
                self._record(key, seq, arrival_us, duration, {rank: arrival_us}, bytes_per_rank)
                return arrival_us, duration
            slot = (key, seq)
            pending = self._pending.get(slot)
            if pending is None:
                pending = _Pending(expected=expected, consumers=set(expected))
                self._pending[slot] = pending
            pending.arrivals[rank] = arrival_us
            pending.bytes_per_rank = max(pending.bytes_per_rank, bytes_per_rank)
            self._inflight[rank] = slot
            if set(pending.arrivals) >= pending.expected:
                start = max(pending.arrivals.values())
                duration = self._price(key, pending.bytes_per_rank)
                pending.resolved = (start, duration)
                self._record(key, seq, start, duration, dict(pending.arrivals), pending.bytes_per_rank)
                self._ready.append(slot)
            else:
                missing = pending.expected - set(pending.arrivals) - self._retired
                if not missing:
                    pending.failed = self._mismatch_message(key, seq, pending)
                    self._ready.append(slot)
        else:
            if slot[0] != key:
                raise CollectiveSyncError(
                    f"rank {rank} retried collective {key[1]} over ranks {list(key[0])} "
                    f"while parked on {slot[0][1]}[{slot[1]}] over ranks {list(slot[0][0])} "
                    "— the replay diverged across retries"
                )
        pending = self._pending.get(slot)
        if pending is None:
            raise CollectiveSyncError(
                f"internal error: slot {slot[0][1]}[{slot[1]}] consumed before rank {rank} read it"
            )
        if pending.failed is not None:
            self._inflight.pop(rank, None)
            raise CollectiveSyncError(pending.failed)
        if pending.resolved is None:
            raise RankBlocked(slot)
        resolved = pending.resolved
        self._inflight.pop(rank, None)
        pending.consumers.discard(rank)
        if not pending.consumers:
            del self._pending[slot]
        return resolved

    # ------------------------------------------------------------------
    def retire(self, rank: int) -> None:
        self._retired.add(int(rank))
        self._inflight.pop(int(rank), None)
        for slot, pending in self._pending.items():
            if pending.resolved is not None or pending.failed is not None:
                continue
            if not pending.arrivals:
                continue
            missing = pending.expected - set(pending.arrivals) - self._retired
            if not missing:
                pending.failed = self._mismatch_message(slot[0], slot[1], pending)
                self._ready.append(slot)

    # ------------------------------------------------------------------
    def take_ready(self) -> List[CollectiveSlot]:
        """Slots resolved or failed since the last call (drains the queue).
        The scheduler wakes the cursors parked on each returned slot."""
        ready, self._ready = self._ready, []
        return ready

    def fail_pending(self, reason: str) -> None:
        """Fail every unresolved slot (scheduler deadlock breaker: every
        live cursor is parked, so no slot can ever resolve)."""
        for slot, pending in self._pending.items():
            if pending.resolved is None and pending.failed is None:
                key, seq = slot
                pending.failed = (
                    f"collective {key[1]}[{seq}] over ranks {list(key[0])} cannot resolve: "
                    f"{reason} (arrived: {sorted(pending.arrivals)}, "
                    f"expected: {sorted(pending.expected)})"
                )
                self._ready.append(slot)


@dataclass
class RendezvousStats:
    """Scalar aggregates over all resolved collectives of one co-replay."""

    matched: int = 0
    max_skew_us: float = 0.0
    mean_skew_us: float = 0.0
    stall_us_by_rank: Dict[int, float] = field(default_factory=dict)
