"""The single-threaded discrete-event cluster scheduler.

The legacy cluster engine fanned one worker thread per rank and let the
replicas block on each other inside a barrier rendezvous — correct, but
capped at thread-pool width and wasteful at scale (a 1024-rank fleet would
need 1024 live threads that spend most of their time parked on a condition
variable).  This module replays the same fleet on **one** thread:

* every :class:`~repro.cluster.replica.RankReplica` becomes a
  :class:`RankCursor` — a generator that runs the replica's stage pipeline
  and *yields* whenever its next collective cannot resolve yet;
* the shared :class:`~repro.cluster.rendezvous.EventRendezvous` raises
  :class:`~repro.cluster.rendezvous.RankBlocked` instead of blocking, and
  queues resolved/failed slots for the scheduler;
* :class:`VirtualTimeScheduler` advances runnable cursors, parks blocked
  ones on their slot, and wakes exactly the parked cursors whose slot
  resolved — classic discrete-event simulation over per-rank op cursors.

The compute segments *between* collectives run through the same vectorized
executor as a single-rank replay (:mod:`repro.core.vectorize`): verified
``OpProgram`` s batch-price whole op runs, and only collective ops drop to
the scalar attempt path.  The cursor bodies below intentionally mirror
``ExecuteStage.run`` / ``VectorizedExecutor.replay_entries`` statement for
statement — the property suite (``tests/test_property_scheduler.py``) pins
the engine's reports to the single-rank pipeline and to themselves across
adversarial schedules, so any drift between the mirrored loops is caught
immediately.

Retry discipline: a collective op is attempted by simply calling it.  If
the rendezvous raises :class:`RankBlocked`, the attempt has already consumed
a node ID and advanced the CPU clock by the dispatch overhead inside
``Runtime.call`` — the cursor restores a
:meth:`~repro.torchsim.runtime.Runtime.clock_state` snapshot taken at the
op boundary, parks, and re-executes the op verbatim once the slot resolves
(the rendezvous recognises the retry and does not consume a second sequence
number).  Everything else ``call`` touches is exception-safe or mutated
only after the op function returns, so the retried op replays exactly as a
blocking engine would have replayed it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cluster.rendezvous import EventRendezvous, RankBlocked
from repro.core import vectorize
from repro.core.pipeline import ExecuteStage, ReplayContext, ReplayPipelineError
from repro.core.vectorize import _DEAD, _UNSEEN, _FastBinding, VectorizedExecutor
from repro.torchsim.profiler import Profiler
from repro.torchsim.runtime import Runtime

#: Scheduler pick function: ``(runnable ranks, step index) -> index`` into
#: the runnable list.  Injectable for the insertion-order-independence
#: property test; ``None`` means FIFO.
PickFunction = Callable[[List[int], int], int]


class ClusterPaused(BaseException):
    """Control-flow signal: the event scheduler honoured an interrupt
    request at a scheduling boundary (the top of its run loop — each rank
    is either finished or parked at a rendezvous, never mid-op).

    A paused cluster replay resumes by deterministic re-execution from
    scratch: the fleet's virtual-time schedule is a pure function of
    (traces, config), so the re-run's :class:`ClusterReport` is
    byte-identical to an uninterrupted one.  Derives from
    ``BaseException`` so per-job ``except Exception`` error handling cannot
    mistake a cooperative pause for a failure.
    """

    def __init__(self, completed_steps: int) -> None:
        super().__init__(
            f"cluster replay paused after {completed_steps} scheduler step(s)"
        )
        self.completed_steps = completed_steps


def _attempt_collective(runtime: Runtime, call: Callable[[], Any]):
    """Run one collective op, rolling the runtime back and yielding the
    blocked slot until its rendezvous resolves (see module docstring)."""
    while True:
        snapshot = runtime.clock_state()
        try:
            return call()
        except RankBlocked as blocked:
            runtime.restore_clock_state(snapshot)
            yield blocked


def _replay_scalar_cursor(context: ReplayContext, runtime: Runtime):
    """Generator mirror of ``ExecuteStage._replay_once_scalar``."""
    replayed = 0
    skipped = 0
    notify = bool(context.hooks)
    context.tensor_manager.reset_intermediates()
    for entry in context.selection.entries:
        if not entry.supported:
            skipped += 1
            continue
        reconstructed = context.reconstructed.get(entry.node.id)
        if reconstructed is None:
            skipped += 1
            continue
        tensors = context.tensor_manager.gather_inputs(entry.node)
        stream = (
            context.stream_assignment.stream_for(entry.node.id)
            if context.config.use_streams
            else context.stream_assignment.default_stream
        )
        if entry.category == "comms":
            result = yield from _attempt_collective(
                runtime, lambda: reconstructed.function(runtime, *tensors, stream=stream)
            )
        else:
            result = reconstructed.function(runtime, *tensors, stream=stream)
        context.tensor_manager.register_outputs(entry.node, result)
        replayed += 1
        if notify:
            context.emit_op_replayed(entry, result)
    return replayed, skipped


def _replay_vectorized_cursor(
    executor: VectorizedExecutor, context: ReplayContext, runtime: Runtime
):
    """Generator mirror of ``VectorizedExecutor.replay_entries``.

    Identical flow — hot path, dead/unverified bookkeeping, learning — with
    one difference: the comms scalar branch goes through the rendezvous
    attempt/park/retry wrapper.  Compute ops never reach the rendezvous, so
    the learning and fast paths need no wrapping.
    """
    replayed = 0
    skipped = 0
    notify = bool(context.hooks)
    tensor_manager = context.tensor_manager
    stream_assignment = context.stream_assignment
    use_streams = context.config.use_streams
    default_stream = stream_assignment.default_stream
    reconstructed_map = context.reconstructed
    bindings = executor._bindings
    stats = executor.stats

    fast_ops = 0
    scalar_ops = 0
    tensor_manager.reset_intermediates()
    for entry in context.selection.entries:
        if not entry.supported:
            skipped += 1
            continue
        node_id = entry.node.id
        binding = bindings.get(node_id, _UNSEEN)

        # Hot path: node bound to a verified program.
        if binding.__class__ is _FastBinding:
            result = executor._fast_replay(runtime, binding.program)
            tensor_manager.register_pairs(binding.pairs)
            replayed += 1
            fast_ops += 1
            if notify:
                context.emit_op_replayed(entry, result)
            continue
        if binding is not None and binding is not _UNSEEN:
            if binding.state == _DEAD:
                bindings[node_id] = None
                binding = None
            # _UNVERIFIED falls through to the learning path below.

        reconstructed = reconstructed_map.get(node_id)
        if reconstructed is None:
            skipped += 1
            continue
        tensors = tensor_manager.gather_inputs(entry.node)
        stream = (
            stream_assignment.stream_for(node_id) if use_streams else default_stream
        )

        if binding is None or entry.category == "comms":
            if binding is not None:  # first comms occurrence: bind scalar
                bindings[node_id] = None
            if entry.category == "comms":
                result = yield from _attempt_collective(
                    runtime,
                    lambda: reconstructed.function(runtime, *tensors, stream=stream),
                )
            else:
                result = reconstructed.function(runtime, *tensors, stream=stream)
            scalar_ops += 1
        else:
            result = executor._learn(
                runtime, tensor_manager, entry, reconstructed, tensors, stream
            )
        tensor_manager.register_outputs(entry.node, result)
        replayed += 1
        if notify:
            context.emit_op_replayed(entry, result)
    stats["fast_ops"] += fast_ops
    stats["scalar_ops"] += scalar_ops
    return replayed, skipped


def _replay_once_cursor(context: ReplayContext, runtime: Runtime):
    """Generator mirror of ``ExecuteStage._replay_once`` (same dispatch)."""
    if getattr(context.config, "vectorized", True) and (
        runtime.observer is None or not runtime.observer.enabled
    ):
        executor = context.extras.get(vectorize.EXTRAS_KEY)
        if executor is None:
            executor = VectorizedExecutor()
            context.extras[vectorize.EXTRAS_KEY] = executor
        return (yield from _replay_vectorized_cursor(executor, context, runtime))
    return (yield from _replay_scalar_cursor(context, runtime))


def _execute_stage_cursor(stage: ExecuteStage, context: ReplayContext):
    """Generator mirror of ``ExecuteStage.run``."""
    runtime = context.require("runtime", stage)
    context.require("selection", stage)
    context.require("tensor_manager", stage)
    context.require("stream_assignment", stage)

    profiler: Optional[Profiler] = None
    if context.config.profile:
        profiler = runtime.attach_profiler(Profiler())
    context.profiler = profiler

    context.measuring = False
    for _ in range(context.config.warmup_iterations):
        yield from _replay_once_cursor(context, runtime)

    if profiler is not None:
        profiler.start()
    context.measure_start_us = runtime.synchronize()
    context.iteration_times_us = []
    context.replayed_ops = 0
    context.skipped_ops = 0
    context.measuring = True
    for _ in range(max(1, context.config.iterations)):
        start = runtime.synchronize()
        replayed, skipped = yield from _replay_once_cursor(context, runtime)
        end = runtime.synchronize()
        context.iteration_times_us.append(end - start)
        context.replayed_ops += replayed
        context.skipped_ops += skipped
    context.measuring = False
    context.measure_end_us = runtime.synchronize()
    if profiler is not None:
        profiler.stop()


class RankCursor:
    """One rank's replay as a resumable op cursor.

    Wraps a :class:`~repro.cluster.replica.RankReplica` in a generator that
    runs the replica's stage pipeline exactly as ``RankReplica.run`` would
    (same hook dispatch, error recording and rendezvous retirement), but
    yields the blocked :class:`~repro.cluster.rendezvous.RankBlocked` signal
    whenever the execute stage hits an unresolved collective.
    """

    def __init__(self, replica) -> None:
        self.replica = replica
        self.context = ReplayContext(
            trace=replica.trace,
            profiler_trace=replica.profiler_trace,
            config=replica.config,
            support=replica.support,
            hooks=list(replica.hooks),
        )
        self._generator = self._run()

    def advance(self) -> RankBlocked:
        """Run until the next park point.  Raises ``StopIteration`` when
        the replica finished; replay errors propagate (and are recorded on
        the replica, mirroring ``RankReplica.run``)."""
        return next(self._generator)

    def close(self) -> None:
        """Abandon the cursor (runs its ``finally`` blocks → retires the
        rank from the rendezvous)."""
        self._generator.close()

    # ------------------------------------------------------------------
    def _run(self):
        replica = self.replica
        context = self.context
        pipeline = replica.build_pipeline()
        # Mirror of ReplayPipeline.run_context + RankReplica.run, with the
        # execute stage swapped for its cursor twin.
        for hook in pipeline.hooks:
            if hook not in context.hooks:
                context.hooks.append(hook)
        try:
            for stage in list(pipeline.stages):
                for hook in context.hooks:
                    hook.on_stage_start(context, stage)
                try:
                    if stage.name == "execute":
                        yield from _execute_stage_cursor(stage, context)
                    else:
                        stage.run(context)
                except Exception as error:
                    for hook in context.hooks:
                        try:
                            hook.on_error(context, stage, error)
                        except Exception:  # noqa: BLE001 - see run_context
                            pass
                    raise
                for hook in context.hooks:
                    hook.on_stage_end(context, stage)
            if context.result is None:
                raise ReplayPipelineError(
                    "pipeline finished without producing a result — it has no "
                    "result-producing stage"
                )
            replica.result = context.result
            replica.measure_start_us = context.measure_start_us
        except BaseException as error:  # noqa: BLE001 - recorded, then re-raised
            replica.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            replica.rendezvous.retire(replica.rank)


class VirtualTimeScheduler:
    """Advances a fleet of rank cursors to completion on one thread.

    The loop is event-driven: advance a runnable cursor until it parks on a
    collective slot (or finishes), drain the rendezvous's newly
    resolved/failed slots, wake exactly the cursors parked on them, repeat.
    When no cursor is runnable but some are still parked, the fleet's
    collective orders are cross-wired (rank A waits on a collective rank B
    will only reach after one A has not issued) — the rendezvous fails every
    unresolved slot so the parked cursors error out instead of hanging; no
    wall-clock timeout is needed.

    The resolved virtual-time schedule is independent of the pick order
    (each rank's clock advances deterministically between collectives, and
    a slot resolves at the max arrival regardless of who arrives last), so
    any ``pick`` function yields a byte-identical
    :class:`~repro.cluster.engine.ClusterReport` — the hypothesis suite
    (``tests/test_property_scheduler.py``) exercises exactly this.
    """

    def __init__(
        self,
        replicas: Iterable,
        rendezvous: EventRendezvous,
        pick: Optional[PickFunction] = None,
        interrupt: Optional[Callable[[], bool]] = None,
        telemetry=None,
    ) -> None:
        self.replicas = list(replicas)
        self.rendezvous = rendezvous
        self.pick = pick
        #: Polled at the top of every scheduling step; a truthy return
        #: raises :class:`ClusterPaused`.  The ``finally`` block closes all
        #: outstanding cursors (retiring their ranks from the rendezvous),
        #: so abandonment is clean and a later re-run starts fresh.
        self.interrupt = interrupt
        #: Optional :class:`~repro.telemetry.Tracer`.  Park/wake/rendezvous
        #: transitions become instant events on the ``scheduler`` category;
        #: ``None`` (the default) keeps the loop free of telemetry work.
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def run(self) -> Dict[int, str]:
        """Drive every cursor to completion; returns ``{rank: error}`` for
        replicas that failed (empty dict = clean fleet).  Results land on
        the replicas themselves."""
        cursors: Dict[int, RankCursor] = {}
        for replica in self.replicas:
            cursors[replica.rank] = RankCursor(replica)
        runnable = deque(sorted(cursors))
        parked: Dict[Tuple, List[int]] = {}
        errors: Dict[int, str] = {}
        outstanding = set(cursors)
        step = 0
        telemetry = self.telemetry if self.telemetry is not None and self.telemetry.enabled else None
        run_span = (
            telemetry.begin("scheduler:run", "scheduler", ranks=len(cursors))
            if telemetry is not None
            else None
        )
        try:
            while outstanding:
                if self.interrupt is not None and self.interrupt():
                    if telemetry is not None:
                        telemetry.event("pause", "scheduler", step=step)
                    raise ClusterPaused(step)
                if not runnable:
                    # Every live cursor is parked: cross-wired collective
                    # orders.  Fail the unresolved slots; the woken cursors
                    # raise CollectiveSyncError on retry.
                    self.rendezvous.fail_pending(
                        "every runnable replica is parked on another collective "
                        "(collective issue orders are cross-wired across ranks)"
                    )
                    self._wake(parked, runnable)
                    if not runnable:
                        # Nothing to wake either — cursors vanished without
                        # finishing; record the survivors instead of spinning.
                        if telemetry is not None:
                            telemetry.event(
                                "deadlock", "scheduler", step=step, ranks=sorted(outstanding)
                            )
                        for rank in sorted(outstanding):
                            errors.setdefault(rank, "deadlocked in the event scheduler")
                        break
                    continue
                if self.pick is not None:
                    index = self.pick(list(runnable), step) % len(runnable)
                    rank = runnable[index]
                    del runnable[index]
                else:
                    rank = runnable.popleft()
                step += 1
                cursor = cursors[rank]
                context = cursor.context
                if context.hooks:
                    for hook in context.hooks:
                        on_resume = getattr(hook, "on_resume", None)
                        if on_resume is not None:
                            on_resume(context)
                try:
                    blocked = cursor.advance()
                except StopIteration:
                    outstanding.discard(rank)
                    if telemetry is not None:
                        telemetry.event(
                            "finish", "scheduler", correlation={"rank": rank}, step=step
                        )
                except Exception as error:  # noqa: BLE001 - aggregated like the pool path
                    outstanding.discard(rank)
                    errors[rank] = cursor.replica.error or f"{type(error).__name__}: {error}"
                    if telemetry is not None:
                        telemetry.event(
                            "rank-error",
                            "scheduler",
                            correlation={"rank": rank},
                            step=step,
                            error=errors[rank],
                        )
                else:
                    parked.setdefault(blocked.slot, []).append(rank)
                    if telemetry is not None:
                        telemetry.event(
                            "park",
                            "scheduler",
                            correlation={"rank": rank},
                            step=step,
                            slot=str(blocked.slot),
                        )
                self._wake(parked, runnable)
        finally:
            for rank in outstanding:
                cursors[rank].close()
            if telemetry is not None:
                run_span.attributes["steps"] = step
                run_span.attributes["errors"] = len(errors)
                telemetry.end(run_span)
        return errors

    # ------------------------------------------------------------------
    def _wake(self, parked: Dict[Tuple, List[int]], runnable: deque) -> None:
        telemetry = self.telemetry if self.telemetry is not None and self.telemetry.enabled else None
        for slot in self.rendezvous.take_ready():
            if telemetry is not None:
                telemetry.event("rendezvous", "scheduler", slot=str(slot))
            for rank in parked.pop(slot, ()):
                runnable.append(rank)
                if telemetry is not None:
                    telemetry.event("wake", "scheduler", correlation={"rank": rank}, slot=str(slot))
