"""The multi-rank distributed replay engine.

:class:`ClusterReplayer` takes a *fleet* of per-rank execution traces (as
produced by :class:`repro.workloads.ddp.DistributedRunner` — one trace per
rank, captured from the same iteration) and co-replays them under the
virtual-time collective scheduler:

1. **Pre-flight match** (:func:`match_collectives`): every collective is
   matched across ranks by (process-group ranks, sequence number, operator
   name) *before* anything replays, so a malformed fleet fails with a
   precise report instead of a mid-replay stall.
2. **Event loop**: one :class:`~repro.cluster.replica.RankReplica` per
   trace, each running the standard stage pipeline (with the
   rendezvous-aware ``sync-collectives`` stage) as an op *cursor* advanced
   by the single-threaded
   :class:`~repro.cluster.scheduler.VirtualTimeScheduler` — a cursor parks
   when its next collective cannot resolve yet and is woken when the
   :class:`~repro.cluster.rendezvous.EventRendezvous` resolves the slot,
   so fleets of thousands of ranks need no thread per rank.
3. **Aggregate**: per-rank results and the rendezvous's event log fold into
   a :class:`ClusterReport` — per-rank timelines, exposed-communication
   time, rendezvous stall, and the slowest-rank critical path.

A fleet of **one** trace degrades exactly to the single-rank pipeline: the
rendezvous has no peers to wait for, so every collective starts at its
local arrival time and is priced at the recorded group size — the same
schedule :func:`repro.core.pipeline.run_replay` produces (equivalence is
asserted in ``tests/test_cluster_replay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.comms_replay import CommReplayManager
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, ReplayResult, ReplayResultSummary
from repro.cluster.rendezvous import (
    CollectiveKey,
    EventRendezvous,
    RendezvousCore,
    normalize_op,
)
from repro.cluster.replica import RankReplica
from repro.et.trace import ExecutionTrace
from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.torchsim.profiler import ProfilerTrace

#: What :meth:`ClusterReplayer.replay` accepts per rank: a trace, a path to
#: a serialised trace, or a ``RankCapture``/``CaptureResult``-like object
#: carrying ``execution_trace`` (and optionally ``profiler_trace``).
TraceLike = Union[ExecutionTrace, str, Path, object]


class ClusterMatchError(ValueError):
    """The per-rank traces do not form a coherent fleet (duplicate ranks,
    or collectives that cannot be matched across ranks)."""


class ClusterReplayError(RuntimeError):
    """One or more rank replicas failed during the co-replay."""

    def __init__(self, errors: Dict[int, str]) -> None:
        self.errors = dict(errors)
        lines = ", ".join(f"rank {rank}: {msg}" for rank, msg in sorted(errors.items()))
        super().__init__(f"{len(errors)} rank replica(s) failed — {lines}")


# ----------------------------------------------------------------------
# Pre-flight collective matching
# ----------------------------------------------------------------------
@dataclass
class CollectiveMatchReport:
    """Result of matching every recorded collective across the fleet."""

    #: (key, seq) slots in which every replayed participant takes part.
    matched: int = 0
    #: Collective invocations that can never rendezvous (some replayed
    #: participant is missing the call); each entry is human-readable.
    unmatched: List[str] = field(default_factory=list)
    #: rank -> number of collective invocations recorded in its trace.
    per_rank_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.unmatched


def _comm_keys(trace: ExecutionTrace) -> List[CollectiveKey]:
    """The collective call sequence of one trace, keyed for matching."""
    world_size = int(trace.metadata.get("world_size", 1))
    keys: List[CollectiveKey] = []
    for record in CommReplayManager.extract(trace):
        ranks = record.recorded_group.get("ranks")
        if not isinstance(ranks, (list, tuple)) or not ranks:
            # No recorded group means the default group over the full world.
            ranks = range(world_size)
        keys.append((tuple(sorted(int(r) for r in ranks)), normalize_op(record.name)))
    return keys


def match_collectives(traces: Sequence[ExecutionTrace]) -> CollectiveMatchReport:
    """Match collectives across the fleet before replaying anything.

    For every collective key (group ranks + op name) the replayed members
    of that group must record the *same number* of invocations; any
    shortfall is reported as unmatched, naming the key and the offending
    ranks.  Groups whose other members are not part of the fleet (a
    partial, symmetric-rank replay) only need agreement among the replayed
    members.
    """
    replayed = {int(trace.metadata.get("rank", 0)) for trace in traces}
    counts: Dict[int, Dict[CollectiveKey, int]] = {}
    report = CollectiveMatchReport()
    for trace in traces:
        rank = int(trace.metadata.get("rank", 0))
        per_key = counts.setdefault(rank, {})
        keys = _comm_keys(trace)
        report.per_rank_counts[rank] = len(keys)
        for key in keys:
            per_key[key] = per_key.get(key, 0) + 1

    all_keys = {key for per_key in counts.values() for key in per_key}
    for key in sorted(all_keys):
        participants = sorted(set(key[0]) & replayed)
        if len(participants) <= 1:
            report.matched += counts.get(participants[0], {}).get(key, 0) if participants else 0
            continue
        per_rank = {rank: counts.get(rank, {}).get(key, 0) for rank in participants}
        want = max(per_rank.values())
        have = min(per_rank.values())
        report.matched += have
        if want != have:
            short = sorted(rank for rank, count in per_rank.items() if count < want)
            report.unmatched.append(
                f"{key[1]} over ranks {list(key[0])}: rank(s) {short} record fewer "
                f"invocations than their peers ({per_rank})"
            )
    return report


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class RankReport:
    """One rank's measurements inside a cluster replay."""

    rank: int
    summary: ReplayResultSummary
    #: Total GPU time of communication kernels in the measured window.
    comm_time_us: float = 0.0
    #: Communication time not hidden behind compute (Section 3.3's
    #: "exposed GPU time" — the quantity comm/compute overlap minimises).
    exposed_comm_us: float = 0.0
    #: Virtual time this rank spent stalled in the rendezvous, waiting for
    #: slower peers to arrive at shared collectives.
    stall_us: float = 0.0
    #: Simulated memory footprint of this rank
    #: (:class:`~repro.memory.report.MemoryReport`); ``None`` unless the
    #: fleet was replayed with memory tracking enabled.
    memory: Optional[Any] = None
    #: Host wall-time profile of this rank's replay engine
    #: (:class:`~repro.profiling.ProfileReport`); ``None`` unless the fleet
    #: was replayed with profiling enabled.
    profile: Optional[Any] = None

    @property
    def mean_iteration_time_us(self) -> float:
        return self.summary.mean_iteration_time_us

    @property
    def peak_allocated_bytes(self) -> int:
        return self.memory.peak_allocated_bytes if self.memory is not None else 0

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "rank": self.rank,
            "summary": self.summary.to_dict(),
            "comm_time_us": self.comm_time_us,
            "exposed_comm_us": self.exposed_comm_us,
            "stall_us": self.stall_us,
            "mean_iteration_time_us": self.mean_iteration_time_us,
        }
        # Only present when memory tracking ran, so memory-less reports
        # serialise exactly as they did before the memory subsystem.
        if self.memory is not None:
            data["memory"] = self.memory.summary_dict()
        if self.profile is not None:
            data["profile"] = self.profile.to_dict()
        return data


@dataclass
class ClusterReport:
    """Aggregated outcome of one multi-rank co-replay."""

    device: str
    world_size: int
    ranks: List[RankReport] = field(default_factory=list)
    matched_collectives: int = 0
    unmatched_collectives: int = 0
    max_skew_us: float = 0.0
    mean_skew_us: float = 0.0

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.ranks)

    @property
    def critical_path_us(self) -> float:
        """The fleet's iteration time: the slowest rank bounds the step."""
        return max((rank.mean_iteration_time_us for rank in self.ranks), default=0.0)

    @property
    def straggler_rank(self) -> Optional[int]:
        """The rank on the critical path (slowest mean iteration time)."""
        if not self.ranks:
            return None
        return max(self.ranks, key=lambda r: r.mean_iteration_time_us).rank

    @property
    def mean_iteration_time_us(self) -> float:
        if not self.ranks:
            return 0.0
        return sum(r.mean_iteration_time_us for r in self.ranks) / len(self.ranks)

    @property
    def mean_exposed_comm_us(self) -> float:
        if not self.ranks:
            return 0.0
        return sum(r.exposed_comm_us for r in self.ranks) / len(self.ranks)

    def rank_report(self, rank: int) -> RankReport:
        for report in self.ranks:
            if report.rank == rank:
                return report
        raise KeyError(f"no rank {rank} in this report (ranks: {[r.rank for r in self.ranks]})")

    # ------------------------------------------------------------------
    # Memory aggregation (populated when the fleet replayed with memory
    # tracking; every accessor degrades gracefully without it).
    # ------------------------------------------------------------------
    @property
    def has_memory(self) -> bool:
        return any(rank.memory is not None for rank in self.ranks)

    @property
    def peak_allocated_bytes(self) -> int:
        """The fleet's worst-rank allocated peak (device sizing bound)."""
        return max((rank.peak_allocated_bytes for rank in self.ranks), default=0)

    @property
    def max_memory_rank(self) -> Optional[int]:
        """The rank with the largest simulated footprint — per-rank skew
        (e.g. unbalanced embedding shards) makes this differ from the
        straggler rank."""
        tracked = [rank for rank in self.ranks if rank.memory is not None]
        if not tracked:
            return None
        return max(tracked, key=lambda r: r.peak_allocated_bytes).rank

    @property
    def oom_ranks(self) -> List[int]:
        """Ranks whose simulated footprint exceeded their budget."""
        return sorted(
            rank.rank for rank in self.ranks
            if rank.memory is not None and not rank.memory.fits
        )

    # ------------------------------------------------------------------
    @property
    def has_profiles(self) -> bool:
        return any(rank.profile is not None for rank in self.ranks)

    @property
    def profile_reports(self) -> Dict[int, Any]:
        """Per-rank :class:`~repro.profiling.ProfileReport` objects, for
        fleets replayed with profiling enabled (empty dict otherwise)."""
        return {
            rank.rank: rank.profile
            for rank in self.ranks
            if rank.profile is not None
        }

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "device": self.device,
            "world_size": self.world_size,
            "num_replicas": self.num_replicas,
            "ranks": [rank.to_dict() for rank in self.ranks],
            "matched_collectives": self.matched_collectives,
            "unmatched_collectives": self.unmatched_collectives,
            "max_skew_us": self.max_skew_us,
            "mean_skew_us": self.mean_skew_us,
            "critical_path_us": self.critical_path_us,
            "straggler_rank": self.straggler_rank,
            "mean_iteration_time_us": self.mean_iteration_time_us,
            "mean_exposed_comm_us": self.mean_exposed_comm_us,
        }
        if self.has_memory:
            data["memory"] = {
                "peak_allocated_bytes": self.peak_allocated_bytes,
                "max_memory_rank": self.max_memory_rank,
                "oom_ranks": self.oom_ranks,
            }
        return data


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ClusterReplayer:
    """Co-replays a fleet of per-rank traces under the shared scheduler.

    Parameters
    ----------
    config:
        Base :class:`ReplayConfig` every replica runs under; each replica
        gets its ``rank`` pinned to its trace's recorded rank.  The
        interconnect / comm-delay / topology fields also parameterise the
        shared collective cost model.
    backend:
        ``"thread"`` (default) or ``"serial"``.  The event engine is
        single-threaded by construction and accepts either value; the
        multi-rank ``"serial"`` rejection is kept for contract
        compatibility with callers that used it as a single-replica
        assertion.
    timeout_s:
        Accepted for CLI/API compatibility and otherwise unused: the event
        engine needs no wall-clock rendezvous guard — an unresolvable
        fleet is detected structurally (every live cursor parked) and
        failed immediately.
    strict_match:
        Raise :class:`ClusterMatchError` when the pre-flight match finds
        unmatched collectives (default); pass ``False`` to attempt the
        replay anyway (mismatched collectives then fail at rendezvous
        time).
    """

    def __init__(
        self,
        config: Optional[ReplayConfig] = None,
        backend: str = "thread",
        timeout_s: float = 60.0,
        strict_match: bool = True,
        support: Optional[ReplaySupport] = None,
        track_memory: bool = False,
        memory_budget: Optional[Any] = None,
        profile_hook_factory: Optional[Callable[[int], Any]] = None,
    ) -> None:
        if backend not in ("thread", "serial"):
            raise ValueError(
                f"unsupported cluster backend {backend!r}: replicas synchronise through "
                "shared memory, so only 'thread' (and 'serial' for one replica) work"
            )
        self.config = config if config is not None else ReplayConfig()
        self.backend = backend
        self.timeout_s = timeout_s
        self.strict_match = strict_match
        self.support = support
        #: Optional scheduler pick function: chooses which runnable cursor
        #: advances next.  Reports are pick-order independent; the property
        #: suite injects randomised picks here.
        self.scheduler_pick: Optional[Callable[[List[int], int], int]] = None
        #: Optional scheduler interrupt callback, polled at every scheduling
        #: step; a truthy return pauses the co-replay by raising
        #: :class:`~repro.cluster.scheduler.ClusterPaused`.  The daemon's
        #: executor uses this to pause cluster jobs at rendezvous
        #: boundaries; resume re-runs the fleet deterministically.
        self.scheduler_interrupt: Optional[Callable[[], bool]] = None
        #: Per-rank memory footprints (``repro.memory``): simulate each
        #: replica's device memory and aggregate the per-rank reports plus
        #: the max-rank summary onto the :class:`ClusterReport`.
        self.track_memory = track_memory
        self.memory_budget = memory_budget
        #: rank -> :class:`~repro.profiling.ProfileHook` factory.  When set,
        #: every replica runs with its own profiling hook and the aggregated
        #: :class:`~repro.profiling.ProfileReport` lands on its
        #: :class:`RankReport` — one hook per rank because replicas replay on
        #: concurrent worker threads.
        self.profile_hook_factory = profile_hook_factory
        #: Optional :class:`~repro.telemetry.Tracer` (set by
        #: ``ClusterSession.with_telemetry()`` or the ``--trace-out`` CLI
        #: path).  When enabled, every replica gets a per-rank
        #: :class:`~repro.telemetry.TelemetryHook`, the scheduler emits
        #: park/wake/rendezvous events, and :meth:`replay` records the
        #: per-rank virtual-time Gantt (compute / comms / exposed-comms /
        #: stall lanes) onto the tracer.  ``None`` keeps every replay path
        #: telemetry-free.
        self.tracer = None

    # ------------------------------------------------------------------
    @staticmethod
    def load_fleet(directory: Union[str, Path]) -> List[ExecutionTrace]:
        """Load every serialised trace under ``directory`` as one fleet,
        ordered by recorded rank."""
        from repro.service.repository import TraceRepository

        repository = TraceRepository(directory)
        records = repository.discover()
        if not records:
            raise ClusterMatchError(
                f"no execution traces found under {directory!r}"
                + (f" (skipped: {len(repository.invalid)} invalid file(s))" if repository.invalid else "")
            )
        traces = [ExecutionTrace.load(record.path) for record in records]
        return sorted(traces, key=lambda trace: int(trace.metadata.get("rank", 0)))

    # ------------------------------------------------------------------
    def replay(
        self,
        traces: Sequence[TraceLike],
        profiler_traces: Optional[Sequence[Optional[ProfilerTrace]]] = None,
        rank_overrides: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> ClusterReport:
        """Co-replay the fleet and aggregate the :class:`ClusterReport`.

        ``rank_overrides`` maps a rank to :class:`ReplayConfig` field
        overrides for that replica only (e.g. ``{0: {"power_limit_w":
        250.0}}`` to model a power-capped straggler).
        """
        fleet, profilers = self._normalize(traces, profiler_traces)
        ranks = [int(trace.metadata.get("rank", 0)) for trace in fleet]
        if len(set(ranks)) != len(ranks):
            raise ClusterMatchError(f"duplicate ranks in fleet: {sorted(ranks)}")
        unknown = set(rank_overrides or {}) - set(ranks)
        if unknown:
            raise ClusterMatchError(
                f"rank_overrides for rank(s) {sorted(unknown)} not present in the fleet "
                f"(fleet ranks: {sorted(ranks)})"
            )
        if self.config.world_size is not None and self.config.world_size <= max(ranks):
            # A replica's runtime clamps its rank into the configured world
            # (rank = min(rank, world_size - 1)); clamped replicas would
            # collide in the rendezvous and deadlock the fleet.  To shrink
            # a replay, fold the groups instead (remap_world_size) or
            # replay a subset of the per-rank traces.
            raise ClusterMatchError(
                f"world_size {self.config.world_size} cannot cover fleet ranks "
                f"{sorted(ranks)}; a cluster world must be larger than the highest "
                "replayed rank"
            )

        match = match_collectives(fleet)
        if self.strict_match and not match.ok:
            raise ClusterMatchError(
                "collectives cannot be matched across the fleet:\n  "
                + "\n  ".join(match.unmatched)
            )

        rendezvous: RendezvousCore = EventRendezvous(
            cost_model=self._cost_model(),
            participants=ranks,
        )
        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        profile_hooks: Dict[int, Any] = {}
        replicas = []
        for trace, profiler in zip(fleet, profilers):
            rank = int(trace.metadata.get("rank", 0))
            hooks: Optional[Tuple[Any, ...]] = None
            if self.profile_hook_factory is not None:
                profile_hooks[rank] = self.profile_hook_factory(rank)
                hooks = (profile_hooks[rank],)
            if tracer is not None:
                from repro.telemetry import TelemetryHook

                hooks = (hooks or ()) + (TelemetryHook(tracer, rank=rank),)
            replicas.append(
                RankReplica.from_trace(
                    trace,
                    rendezvous,
                    self.config,
                    profiler_trace=profiler,
                    overrides=(rank_overrides or {}).get(rank),
                    support=self.support,
                    hooks=hooks,
                    track_memory=self.track_memory,
                    memory_budget=self.memory_budget,
                )
            )

        results = self._execute(replicas)
        return self._aggregate(fleet, replicas, results, rendezvous, match, profile_hooks)

    # ------------------------------------------------------------------
    def _normalize(
        self,
        traces: Sequence[TraceLike],
        profiler_traces: Optional[Sequence[Optional[ProfilerTrace]]],
    ) -> Tuple[List[ExecutionTrace], List[Optional[ProfilerTrace]]]:
        if not traces:
            raise ClusterMatchError("cannot replay an empty fleet")
        fleet: List[ExecutionTrace] = []
        profilers: List[Optional[ProfilerTrace]] = []
        for index, source in enumerate(traces):
            profiler = None
            if isinstance(source, ExecutionTrace):
                trace = source
            elif isinstance(source, (str, Path)):
                trace = ExecutionTrace.load(source)
            else:
                # RankCapture / CaptureResult-like: duck-typed, as in the api
                # facade, so cluster does not force the workloads import.
                trace = getattr(source, "execution_trace", None)
                profiler = getattr(source, "profiler_trace", None)
                if not isinstance(trace, ExecutionTrace):
                    raise TypeError(
                        f"fleet entry {index} is not an ExecutionTrace, a path, or a "
                        f"capture carrying one (got {type(source).__name__})"
                    )
            fleet.append(trace)
            profilers.append(profiler)
        if profiler_traces is not None:
            if len(profiler_traces) != len(fleet):
                raise ValueError(
                    f"profiler_traces has {len(profiler_traces)} entries for a fleet of {len(fleet)}"
                )
            profilers = list(profiler_traces)
        order = sorted(
            range(len(fleet)), key=lambda i: int(fleet[i].metadata.get("rank", 0))
        )
        return [fleet[i] for i in order], [profilers[i] for i in order]

    def _cost_model(self) -> CollectiveCostModel:
        """The shared pricing model — built exactly the way each replica's
        own runtime builds it, so a one-replica cluster replay prices every
        collective identically to the single-rank pipeline."""
        from repro.core.pipeline import make_collective_cost_model

        return make_collective_cost_model(self.config)

    # ------------------------------------------------------------------
    def _execute(self, replicas: List[RankReplica]) -> List[ReplayResult]:
        if self.backend == "serial" and len(replicas) > 1:
            raise ValueError(
                "backend='serial' cannot co-replay multiple ranks (replicas block "
                "on each other inside the rendezvous); use backend='thread'"
            )
        from repro.cluster.scheduler import VirtualTimeScheduler

        scheduler = VirtualTimeScheduler(
            replicas,
            replicas[0].rendezvous,
            pick=self.scheduler_pick,
            interrupt=self.scheduler_interrupt,
            telemetry=self.tracer,
        )
        errors = scheduler.run()
        if errors:
            raise ClusterReplayError(errors)
        return [replica.result for replica in replicas]

    # ------------------------------------------------------------------
    def _aggregate(
        self,
        fleet: List[ExecutionTrace],
        replicas: List[RankReplica],
        results: List[ReplayResult],
        rendezvous: RendezvousCore,
        match: CollectiveMatchReport,
        profile_hooks: Optional[Dict[int, Any]] = None,
    ) -> ClusterReport:
        stats = rendezvous.stats(
            measure_start_by_rank={
                replica.rank: replica.measure_start_us for replica in replicas
            }
        )
        world_size = self.config.world_size
        if world_size is None:
            world_size = max(
                (int(trace.metadata.get("world_size", 1)) for trace in fleet), default=1
            )
        report = ClusterReport(
            device=self.config.device,
            world_size=int(world_size),
            matched_collectives=stats.matched,
            unmatched_collectives=len(match.unmatched),
            max_skew_us=stats.max_skew_us,
            mean_skew_us=stats.mean_skew_us,
        )
        for replica, result in zip(replicas, results):
            timeline = result.timeline_stats
            profile = None
            hook = (profile_hooks or {}).get(replica.rank)
            if hook is not None:
                profile = hook.report(
                    trace_name=str(replica.trace.metadata.get("workload", "")),
                    device=replica.config.device,
                    vectorized=getattr(replica.config, "vectorized", True),
                )
            report.ranks.append(
                RankReport(
                    rank=replica.rank,
                    summary=result.summarize(),
                    comm_time_us=timeline.category_kernel_time_us.get("comms", 0.0),
                    exposed_comm_us=timeline.category_exposed_time_us.get("comms", 0.0),
                    stall_us=stats.stall_us_by_rank.get(replica.rank, 0.0),
                    memory=result.memory_report,
                    profile=profile,
                )
            )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            from repro.telemetry import record_cluster_timeline

            record_cluster_timeline(
                tracer,
                {replica.rank: result for replica, result in zip(replicas, results)},
                collective_events=getattr(rendezvous, "events", ()),
                measure_start_by_rank={
                    replica.rank: replica.measure_start_us for replica in replicas
                },
            )
        return report
