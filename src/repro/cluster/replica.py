"""One rank of a multi-rank co-replay.

A :class:`RankReplica` wraps a single per-rank
:class:`~repro.core.pipeline.ReplayPipeline` run.  Its pipeline is the
standard seven-stage pipeline with one substitution: the single-rank
``init-comms`` stage is replaced by :class:`SyncCollectivesStage`, which —
in addition to creating the runtime and pre-creating the recorded process
groups exactly as ``init-comms`` does — attaches the fleet's shared
:class:`~repro.cluster.rendezvous.EventRendezvous` to the replica's
distributed context.  From then on every collective the replica replays
synchronises with its peers instead of being priced purely locally.

Inside a fleet the replica does not call :meth:`RankReplica.run` directly —
the :class:`~repro.cluster.scheduler.RankCursor` wraps the same pipeline as
a resumable generator so the event scheduler can interleave ranks.
:meth:`RankReplica.run` remains as the direct blocking path for a
single-replica fleet (nothing to interleave, so no collective can park).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Any, Dict, Optional, Sequence

from repro.core.comms_replay import CommReplayManager
from repro.core.pipeline import (
    ReplayContext,
    ReplayHook,
    ReplayPipeline,
    ReplayStage,
    make_replay_runtime,
)
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, ReplayResult
from repro.cluster.rendezvous import RendezvousCore
from repro.et.trace import ExecutionTrace
from repro.torchsim.profiler import ProfilerTrace


class SyncCollectivesStage(ReplayStage):
    """Cluster-aware replacement for the single-rank ``init-comms`` stage.

    Same duties (create the runtime if the caller did not inject one,
    pre-create every recorded process group outside the measured region),
    plus one more: wire the replica's distributed context to the shared
    rendezvous so its collectives are matched, priced once, and released at
    a common virtual completion time across ranks.
    """

    name = "sync-collectives"

    def __init__(self, rendezvous: RendezvousCore) -> None:
        self.rendezvous = rendezvous

    def run(self, context: ReplayContext) -> None:
        if context.runtime is None:
            context.runtime = make_replay_runtime(context.trace, context.config)
        if context.runtime.dist is not None:
            comm_manager = CommReplayManager(context.runtime.dist, context.config.remap_world_size)
            comm_manager.ensure_groups(CommReplayManager.extract(context.trace))
            context.runtime.dist.rendezvous = self.rendezvous


@dataclass
class RankReplica:
    """One rank's trace, config and pipeline inside a cluster replay."""

    rank: int
    trace: ExecutionTrace
    config: ReplayConfig
    rendezvous: RendezvousCore
    profiler_trace: Optional[ProfilerTrace] = None
    support: Optional[ReplaySupport] = None
    hooks: Sequence[ReplayHook] = field(default_factory=tuple)
    #: Insert the ``track-memory`` stage into this replica's pipeline so
    #: the engine can aggregate per-rank footprints.  OOMs are recorded on
    #: the per-rank report, never raised — one over-budget rank must not
    #: deadlock the fleet's rendezvous.
    track_memory: bool = False
    #: Optional what-if pool bound for the memory simulation.
    memory_budget: Optional[Any] = None
    result: Optional[ReplayResult] = None
    error: Optional[str] = None
    #: Virtual start of this rank's measured region (set by :meth:`run`);
    #: the engine uses it to window rendezvous stall/skew statistics the
    #: same way every other metric is windowed.
    measure_start_us: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_trace(
        cls,
        trace: ExecutionTrace,
        rendezvous: RendezvousCore,
        config: ReplayConfig,
        profiler_trace: Optional[ProfilerTrace] = None,
        overrides: Optional[Dict[str, Any]] = None,
        support: Optional[ReplaySupport] = None,
        hooks: Optional[Sequence[ReplayHook]] = None,
        track_memory: bool = False,
        memory_budget: Optional[Any] = None,
    ) -> "RankReplica":
        """Build a replica for ``trace``, with the config's ``rank`` pinned
        to the trace's recorded rank (plus optional per-rank overrides —
        e.g. a power cap on one rank to model a straggler)."""
        rank = int(trace.metadata.get("rank", 0))
        rank_config = dataclass_replace(config, rank=rank, **(overrides or {}))
        return cls(
            rank=rank,
            trace=trace,
            config=rank_config,
            rendezvous=rendezvous,
            profiler_trace=profiler_trace,
            support=support,
            hooks=tuple(hooks or ()),
            track_memory=track_memory,
            memory_budget=memory_budget,
        )

    # ------------------------------------------------------------------
    def build_pipeline(self) -> ReplayPipeline:
        """The standard stage pipeline with ``init-comms`` swapped for the
        rendezvous-aware :class:`SyncCollectivesStage` (plus the
        ``track-memory`` stage when per-rank footprints are requested)."""
        pipeline = ReplayPipeline.default().replace(
            "init-comms", SyncCollectivesStage(self.rendezvous)
        )
        if self.track_memory:
            from repro.core.pipeline import TrackMemoryStage

            pipeline.insert_after(
                "assign-streams",
                TrackMemoryStage(budget=self.memory_budget, on_oom="record"),
            )
        return pipeline

    def run(self) -> ReplayResult:
        """Replay this rank; always retires the rank from the rendezvous so
        peers waiting on it fail fast instead of hanging."""
        context = ReplayContext(
            trace=self.trace,
            profiler_trace=self.profiler_trace,
            config=self.config,
            support=self.support,
            hooks=list(self.hooks),
        )
        try:
            self.result = self.build_pipeline().run(context)
            self.measure_start_us = context.measure_start_us
        except BaseException as error:  # noqa: BLE001 - recorded, then re-raised
            self.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            self.rendezvous.retire(self.rank)
        return self.result
