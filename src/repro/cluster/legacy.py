"""Compat shim: the legacy thread-per-rank cluster fan-out.

The event-driven scheduler (:mod:`repro.cluster.scheduler`) is the cluster
engine; this module keeps the previous execution strategy — one worker
thread per rank, replicas blocking on each other inside the barrier
:class:`~repro.cluster.rendezvous.CollectiveRendezvous` — available behind
``ClusterReplayer(engine="threaded")`` for one release, as the
differential-testing oracle (``tests/test_scheduler_equivalence.py`` pins
both engines to byte-identical reports).

Do not import this module from new code: ``scripts/check_deprecated_usage.py``
bans ``repro.cluster.legacy`` imports everywhere in ``src/`` except the
engine's dispatch point.  It will be removed together with the
``engine="threaded"`` flag.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.replica import RankReplica
from repro.core.replayer import ReplayResult


def execute_threaded(replicas: List[RankReplica], backend: str) -> List[ReplayResult]:
    """Run the fleet the pre-event-engine way (see module docstring).

    ``backend`` is the ClusterReplayer's backend: ``"serial"`` (or a
    single-replica fleet) runs inline on the calling thread; ``"thread"``
    fans one pool worker per replica.  Raises
    :class:`~repro.cluster.engine.ClusterReplayError` with the per-rank
    error map when any replica fails — the same contract as the event
    scheduler.
    """
    from repro.cluster.engine import ClusterReplayError
    from repro.service.batch import make_worker_pool

    if backend == "serial" or len(replicas) == 1:
        try:
            return [replica.run() for replica in replicas]
        except Exception as error:  # noqa: BLE001 - same contract as the pool path
            failed = next((r for r in replicas if r.error is not None), replicas[0])
            raise ClusterReplayError(
                {failed.rank: failed.error or f"{type(error).__name__}: {error}"}
            ) from error

    errors: Dict[int, str] = {}
    results: List[Optional[ReplayResult]] = [None] * len(replicas)
    # One worker per replica: a replica waiting inside the rendezvous
    # occupies its worker, so fewer workers than ranks would deadlock.
    with make_worker_pool("thread", max_workers=len(replicas)) as pool:
        futures = {index: pool.submit(replica.run) for index, replica in enumerate(replicas)}
        for index, future in futures.items():
            try:
                results[index] = future.result()
            except Exception as error:  # noqa: BLE001 - aggregated below
                errors[replicas[index].rank] = f"{type(error).__name__}: {error}"
    if errors:
        raise ClusterReplayError(errors)
    return [result for result in results if result is not None]
