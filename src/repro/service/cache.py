"""Content-addressed result cache for batch replays.

A replay is a pure function of (execution trace, :class:`ReplayConfig`): the
simulated runtime is deterministic, so a result computed once never needs to
be recomputed.  The cache keys each entry on the SHA-256 of the pair
``(trace digest, config digest)`` and stores one JSON file per entry under a
cache directory, which makes it safe to share between processes — workers in
a process pool and repeated CLI invocations all see the same entries.

Only the compact :class:`~repro.core.replayer.ReplayResultSummary` is
cached, not the full profiler trace; sweeps aggregate scalar measurements.

Long-running consumers (the :mod:`repro.daemon` replay service) keep one
cache open for days, so the cache is boundable: ``max_entries`` caps the
entry count (least-recently-*used* evicted first — a served hit refreshes
the entry's file mtime) and ``ttl_s`` expires entries that have not been
touched within the window.  Entries :meth:`pin`-ned by in-flight jobs are
never evicted, whatever the pressure — a job that resolved its points
against the cache must still find them there when it reads the results.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.core.replayer import ReplayConfig, ReplayResultSummary
from repro.version import __version__

#: Bumped whenever the cached payload shape changes; part of every key so a
#: format change naturally invalidates old entries.
CACHE_FORMAT_VERSION = "1"


def cache_key(trace_digest: str, config: ReplayConfig) -> str:
    """Deterministic cache key for one (trace, config) replay.

    The package version is part of the key: replay results depend on the
    replayer/cost-model code, so a new release naturally invalidates every
    entry instead of silently serving numbers computed by old code.
    """
    payload = f"{CACHE_FORMAT_VERSION}:{__version__}:{trace_digest}:{config.digest()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed cache of replay result summaries.

    ``max_entries`` and ``ttl_s`` bound the cache (both optional; an
    unbounded cache behaves exactly as before).  Eviction runs on every
    :meth:`put` and on explicit :meth:`evict` calls; pinned keys are exempt.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._pinned: Set[str] = set()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[ReplayResultSummary]:
        """Cached summary for ``key``, or ``None`` (counts hit/miss).

        A hit refreshes the entry's mtime, which is the cache's recency
        signal: frequently served entries survive LRU pressure.
        """
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            summary = ReplayResultSummary.from_dict(data["summary"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path, None)
        except OSError:
            pass  # touch is best-effort; a racing eviction already removed it
        return summary

    def put(
        self,
        key: str,
        summary: ReplayResultSummary,
        trace_digest: str = "",
        config: Optional[ReplayConfig] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Store a summary under ``key`` along with provenance metadata."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, Any] = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "trace_digest": trace_digest,
            "config": config.to_dict() if config is not None else None,
            "summary": summary.to_dict(),
        }
        if extra:
            entry["extra"] = extra
        path = self._path(key)
        # Atomic write: concurrent invocations sharing the cache directory
        # must never observe a partially written entry.
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(entry, indent=2, default=str))
        os.replace(tmp, path)
        if self.max_entries is not None or self.ttl_s is not None:
            self.evict()
        return path

    def contains(self, key: str) -> bool:
        """True when an entry exists (does not count as a hit or miss)."""
        return self._path(key).is_file()

    # ------------------------------------------------------------------
    # Pinning — in-flight jobs protect their inputs from eviction
    # ------------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Exempt ``key`` from eviction until :meth:`unpin`."""
        self._pinned.add(key)

    def unpin(self, key: str) -> None:
        self._pinned.discard(key)

    @property
    def pinned(self) -> Set[str]:
        """Snapshot of the currently pinned keys."""
        return set(self._pinned)

    # ------------------------------------------------------------------
    # Eviction — TTL first, then LRU down to max_entries
    # ------------------------------------------------------------------
    def evict(self, now: Optional[float] = None) -> int:
        """Apply the TTL and max-entries bounds; returns entries removed.

        Pinned keys never count against ``max_entries`` victims and never
        expire — they belong to jobs that are still running.
        """
        if not self.root.is_dir():
            return 0
        now = time.time() if now is None else now
        entries: List[tuple] = []  # (mtime, key, path), unpinned only
        for path in self.root.glob("*.json"):
            if path.stem in self._pinned:
                continue
            try:
                entries.append((path.stat().st_mtime, path.stem, path))
            except OSError:
                continue
        removed = 0
        survivors = []
        for mtime, key, path in sorted(entries):
            if self.ttl_s is not None and now - mtime > self.ttl_s:
                removed += self._remove(path)
            else:
                survivors.append((mtime, key, path))
        if self.max_entries is not None:
            # Pinned entries count toward the bound but cannot be victims.
            total = len(survivors) + len(self._pinned & set(self.keys()))
            for mtime, key, path in survivors:
                if total <= self.max_entries:
                    break
                removed += self._remove(path)
                total -= 1
        self.evictions += removed
        return removed

    def _remove(self, path: Path) -> int:
        try:
            path.unlink()
            return 1
        except OSError:
            return 0

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            self._path(key).unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, Any]:
        """Operational counters (served by the daemon's health endpoint)."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pinned": len(self._pinned),
            "max_entries": self.max_entries,
            "ttl_s": self.ttl_s,
        }
