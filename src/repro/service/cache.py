"""Content-addressed result cache for batch replays.

A replay is a pure function of (execution trace, :class:`ReplayConfig`): the
simulated runtime is deterministic, so a result computed once never needs to
be recomputed.  The cache keys each entry on the SHA-256 of the pair
``(trace digest, config digest)`` and stores one JSON file per entry under a
cache directory, which makes it safe to share between processes — workers in
a process pool and repeated CLI invocations all see the same entries.

Only the compact :class:`~repro.core.replayer.ReplayResultSummary` is
cached, not the full profiler trace; sweeps aggregate scalar measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.replayer import ReplayConfig, ReplayResultSummary
from repro.version import __version__

#: Bumped whenever the cached payload shape changes; part of every key so a
#: format change naturally invalidates old entries.
CACHE_FORMAT_VERSION = "1"


def cache_key(trace_digest: str, config: ReplayConfig) -> str:
    """Deterministic cache key for one (trace, config) replay.

    The package version is part of the key: replay results depend on the
    replayer/cost-model code, so a new release naturally invalidates every
    entry instead of silently serving numbers computed by old code.
    """
    payload = f"{CACHE_FORMAT_VERSION}:{__version__}:{trace_digest}:{config.digest()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed cache of replay result summaries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[ReplayResultSummary]:
        """Cached summary for ``key``, or ``None`` (counts hit/miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            summary = ReplayResultSummary.from_dict(data["summary"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(
        self,
        key: str,
        summary: ReplayResultSummary,
        trace_digest: str = "",
        config: Optional[ReplayConfig] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Store a summary under ``key`` along with provenance metadata."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, Any] = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "trace_digest": trace_digest,
            "config": config.to_dict() if config is not None else None,
            "summary": summary.to_dict(),
        }
        if extra:
            entry["extra"] = extra
        path = self._path(key)
        # Atomic write: concurrent invocations sharing the cache directory
        # must never observe a partially written entry.
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(entry, indent=2, default=str))
        os.replace(tmp, path)
        return path

    def contains(self, key: str) -> bool:
        """True when an entry exists (does not count as a hit or miss)."""
        return self._path(key).is_file()

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            self._path(key).unlink()
            removed += 1
        return removed
