"""Declarative cross-device / cross-config sweeps.

A :class:`SweepSpec` names the traces to replay, the devices to replay them
on, and any additional :class:`~repro.core.replayer.ReplayConfig` axes (as
``field name -> list of values``).  :meth:`SweepSpec.expand` takes the cross
product and yields one fully-resolved config per grid point — exactly the
"evaluate this fleet of traces on A100 vs the new platform, across power
limits and scale-down factors" workflow of the paper's Sections 6.7/7.

:class:`SweepRunner` turns the grid into :class:`~repro.service.batch.ReplayJob`
objects against a :class:`~repro.service.repository.TraceRepository`, runs
them through a :class:`~repro.service.batch.BatchReplayer` (sharing its
result cache across invocations) and renders an aggregate report via
:mod:`repro.bench.aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.replayer import ReplayConfig
from repro.service.batch import BatchReplayer, BatchResult, ReplayJob
from repro.service.cache import ResultCache
from repro.service.repository import TraceRecord, TraceRepository


@dataclass
class SweepSpec:
    """One declarative sweep: traces x devices x extra config axes."""

    #: Trace names to replay; ``None`` means every trace in the repository.
    traces: Optional[Sequence[str]] = None
    #: Devices to replay on (each becomes ``ReplayConfig.device``).
    devices: Sequence[str] = ("A100",)
    #: Extra grid axes: ``ReplayConfig`` field name -> values to sweep.
    #: e.g. ``{"power_limit_w": [None, 250.0], "comm_delay_scale": [1.0, 2.0]}``.
    axes: Dict[str, Sequence[Any]] = field(default_factory=dict)
    #: Template every grid point starts from (iterations, embedding values,
    #: interconnect ... anything not swept).
    base: ReplayConfig = field(default_factory=ReplayConfig)

    def expand(self) -> List[Tuple[str, ReplayConfig]]:
        """All (config label, config) grid points, in deterministic order."""
        unknown = [name for name in self.axes if name not in ReplayConfig.__dataclass_fields__]
        if unknown:
            raise ValueError(f"unknown ReplayConfig fields in sweep axes: {unknown}")
        axis_names = sorted(self.axes)
        points: List[Tuple[str, ReplayConfig]] = []
        for device in self.devices:
            for values in product(*(self.axes[name] for name in axis_names)):
                overrides = dict(zip(axis_names, values))
                config = replace(self.base, device=device, **overrides)
                label = device + "".join(
                    f",{name}={value}" for name, value in overrides.items()
                )
                points.append((label, config))
        return points


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    spec: SweepSpec
    batch: BatchResult
    records: List[TraceRecord] = field(default_factory=list)

    @property
    def total_jobs(self) -> int:
        return len(self.batch)


class SweepRunner:
    """Expands a :class:`SweepSpec` against a repository and runs it.

    The runner owns the :class:`~repro.service.batch.BatchReplayer` it runs
    through: callers describe the execution policy (``cache``,
    ``max_workers``, ``backend``) and the runner builds the replayer, so
    batch construction stays inside the service layer.  An explicit
    ``replayer`` (the daemon's pause-aware instance, a test double) takes
    precedence over the policy arguments.
    """

    def __init__(
        self,
        repository: TraceRepository,
        replayer: Optional[BatchReplayer] = None,
        cache: Optional[ResultCache] = None,
        max_workers: Optional[int] = None,
        backend: str = "thread",
    ) -> None:
        self.repository = repository
        if replayer is None:
            replayer = BatchReplayer(cache=cache, max_workers=max_workers, backend=backend)
        self.replayer = replayer

    def records_for(self, spec: SweepSpec) -> List[TraceRecord]:
        """The trace records ``spec`` targets (all, or the named subset)."""
        if spec.traces is None:
            records = self.repository.discover()
        else:
            records = [self.repository.get(name) for name in spec.traces]
        if not records:
            raise ValueError(f"no traces to sweep in {self.repository.root}")
        return records

    def jobs_for(self, spec: SweepSpec) -> List[ReplayJob]:
        """The fully-expanded job list for ``spec`` (no execution)."""
        return self._expand_jobs(spec, self.records_for(spec))

    @staticmethod
    def _expand_jobs(spec: SweepSpec, records: List[TraceRecord]) -> List[ReplayJob]:
        grid = spec.expand()
        return [
            ReplayJob.from_record(record, config, label=f"{record.name}@{config_label}")
            for record in records
            for config_label, config in grid
        ]

    def run(self, spec: SweepSpec) -> SweepResult:
        """Expand and execute the sweep through the batch replayer."""
        records = self.records_for(spec)
        batch = self.replayer.run(self._expand_jobs(spec, records))
        return SweepResult(spec=spec, batch=batch, records=records)
