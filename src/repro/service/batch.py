"""Parallel fan-out of replay jobs over a ``concurrent.futures`` pool.

A :class:`ReplayJob` names a serialised trace on disk plus the
:class:`~repro.core.replayer.ReplayConfig` to replay it under.  The
:class:`BatchReplayer` resolves each job against the :class:`ResultCache`
first and only ships cache misses to the worker pool.  Three backends are
supported:

``"thread"``
    ``ThreadPoolExecutor`` (the default).  The replay itself is pure
    Python and GIL-bound, so threads buy little wall-clock parallelism —
    but the setup cost is near zero, each unique trace is parsed only once
    per batch, and the semantics match the other backends exactly.
``"process"``
    ``ProcessPoolExecutor``.  True parallelism across cores; jobs are
    shipped as (path, config-dict) pairs so nothing unpicklable crosses the
    process boundary.  Use this when replay time dominates.
``"serial"``
    In-process loop, for debugging and deterministic profiling.

Every worker verifies that the digest of the trace it actually loaded
matches the digest recorded at discovery time, so a trace file rewritten
between discovery and execution fails the job instead of poisoning the
result cache.  A failing job is captured on its :class:`ReplayJobResult`
— message, exception type and full traceback — rather than aborting the
whole batch.

The serial backend is additionally *checkpointable*: ``pause_check`` and
per-job resume checkpoints thread straight through to
:func:`repro.core.pipeline.run_replay`, and a granted pause propagates as
:class:`~repro.core.pipeline.ReplayPaused` (a ``BaseException``, so the
per-job error handling cannot mistake it for a failure).  The daemon's
executor builds on exactly this path.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.pipeline import ReplayCheckpoint, run_replay
from repro.core.replayer import ReplayConfig, ReplayResultSummary
from repro.et.trace import ExecutionTrace
from repro.service.cache import ResultCache, cache_key
from repro.service.repository import TraceRecord

BACKENDS = ("thread", "process", "serial")


def make_worker_pool(backend: str, max_workers: int):
    """Executor factory shared by the batch layer and the cluster engine.

    ``"serial"`` has no executor (callers loop in-process); only pooled
    backends are valid here.
    """
    if backend == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if backend == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    raise ValueError(f"no worker pool for backend {backend!r}; choose 'thread' or 'process'")


@dataclass
class ReplayJob:
    """One unit of batch work: replay the trace at ``trace_path`` under
    ``config``."""

    label: str
    trace_path: Path
    trace_digest: str
    config: ReplayConfig
    trace_name: str = ""

    @classmethod
    def from_record(
        cls, record: TraceRecord, config: ReplayConfig, label: Optional[str] = None
    ) -> "ReplayJob":
        return cls(
            label=label if label is not None else f"{record.name}@{config.device}",
            trace_path=record.path,
            trace_digest=record.digest,
            config=config,
            trace_name=record.name,
        )

    @property
    def cache_key(self) -> str:
        return cache_key(self.trace_digest, self.config)


@dataclass
class ReplayJobResult:
    """Outcome of one job: a summary (from cache or a fresh replay) or an
    error.

    A failed job records the one-line ``error`` message plus the exception
    class name (``error_type``) and the full formatted ``traceback`` —
    enough to debug a worker failure from a ``--json`` report or the
    daemon's job-status payload without re-running the job.
    """

    job: ReplayJob
    summary: Optional[ReplayResultSummary] = None
    cached: bool = False
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.summary is not None


@dataclass
class BatchResult:
    """All job results of one batch run, in submission order."""

    results: List[ReplayJobResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def cached_count(self) -> int:
        return sum(1 for result in self.results if result.ok and result.cached)

    @property
    def replayed_count(self) -> int:
        return sum(1 for result in self.results if result.ok and not result.cached)

    @property
    def error_count(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    def errors(self) -> Dict[str, str]:
        return {r.job.label: r.error or "" for r in self.results if not r.ok}


def _replay_trace(
    trace: ExecutionTrace,
    config_dict: Dict[str, Any],
    pause_check: Optional[Any] = None,
    resume_from: Optional[ReplayCheckpoint] = None,
) -> Dict[str, Any]:
    """Replay an already-loaded trace and return the summary payload."""
    start = time.perf_counter()
    config = ReplayConfig.from_dict(config_dict)
    result = run_replay(trace, config=config, pause_check=pause_check, resume_from=resume_from)
    return {"summary": result.summarize().to_dict(), "duration_s": time.perf_counter() - start}


def _format_error(error: BaseException) -> str:
    """Uniform job-error string across backends and failure points."""
    return f"{type(error).__name__}: {error}"


def _error_details(error: BaseException) -> Dict[str, str]:
    """``error``/``error_type``/``traceback`` keys for a failed job.

    ``format_exception`` walks the ``__cause__`` chain, so process-pool
    failures — surfaced by ``concurrent.futures`` with the worker's remote
    traceback attached as the cause — keep the original frames.
    """
    return {
        "error": _format_error(error),
        "error_type": type(error).__name__,
        "traceback": "".join(traceback_module.format_exception(error)),
    }


class TraceChangedError(RuntimeError):
    """The trace file on disk no longer matches its discovery-time digest."""

    def __init__(self, trace_path: str) -> None:
        super().__init__(
            f"trace file {trace_path} changed on disk since discovery "
            f"(digest mismatch); re-run discovery"
        )


def _load_verified(trace_path: str, expected_digest: str) -> ExecutionTrace:
    """Load a trace and check it still matches its discovery-time digest."""
    trace = ExecutionTrace.load(trace_path)
    if expected_digest and trace.digest() != expected_digest:
        raise TraceChangedError(trace_path)
    return trace


def _execute_job(
    trace_path: str, config_dict: Dict[str, Any], expected_digest: str = ""
) -> Dict[str, Any]:
    """Worker entry point: load, verify, replay, summarise.

    Takes and returns only JSON-ish values so it works identically under
    thread and process pools (module-level so it pickles by reference).
    """
    return _replay_trace(_load_verified(trace_path, expected_digest), config_dict)


class BatchReplayer:
    """Runs many replay jobs concurrently, consulting the result cache."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        max_workers: Optional[int] = None,
        backend: str = "thread",
        pause_check: Optional[Any] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if pause_check is not None and backend != "serial":
            raise ValueError(
                "pause_check requires the serial backend — cooperative pause has "
                f"no meaning for jobs already shipped to a {backend!r} pool"
            )
        self.cache = cache
        self.backend = backend
        self.pause_check = pause_check
        self.max_workers = max_workers if max_workers is not None else min(8, os.cpu_count() or 1)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[ReplayJob],
        resume_from: Optional[Mapping[str, ReplayCheckpoint]] = None,
    ) -> BatchResult:
        """Execute every job, serving cache hits without replaying.

        ``resume_from`` maps job labels to previously captured
        :class:`~repro.core.pipeline.ReplayCheckpoint` tokens (serial
        backend only); a matching job resumes from its checkpoint by
        deterministic re-execution instead of starting over.  A granted
        pause propagates as :class:`~repro.core.pipeline.ReplayPaused`,
        aborting the rest of the batch — callers that pause run one job
        per batch (as the daemon's executor does).
        """
        if resume_from and self.backend != "serial":
            raise ValueError("resume_from requires the serial backend")
        results: List[Optional[ReplayJobResult]] = [None] * len(jobs)
        pending: List[int] = []

        for index, job in enumerate(jobs):
            if self.cache is not None:
                summary = self.cache.get(job.cache_key)
                if summary is not None:
                    results[index] = ReplayJobResult(job=job, summary=summary, cached=True)
                    continue
            pending.append(index)

        if pending:
            if self.backend == "process":
                self._run_in_processes(jobs, pending, results)
            else:
                self._run_in_threads_or_serial(jobs, pending, results, resume_from or {})

        batch = BatchResult(results=[result for result in results if result is not None])
        if self.cache is not None:
            for result in batch:
                if result.ok and not result.cached:
                    assert result.summary is not None
                    self.cache.put(
                        result.job.cache_key,
                        result.summary,
                        trace_digest=result.job.trace_digest,
                        config=result.job.config,
                        extra={"label": result.job.label, "trace_name": result.job.trace_name},
                    )
        return batch

    # ------------------------------------------------------------------
    def _run_in_processes(
        self, jobs: Sequence[ReplayJob], pending: List[int], results: List[Optional[ReplayJobResult]]
    ) -> None:
        """Ship each job as (path, config dict, digest) to a process pool."""
        with make_worker_pool("process", self.max_workers) as executor:
            futures: Dict[int, Future] = {
                index: executor.submit(
                    _execute_job,
                    str(jobs[index].trace_path),
                    jobs[index].config.to_dict(),
                    jobs[index].trace_digest,
                )
                for index in pending
            }
            for index, future in futures.items():
                results[index] = self._collect(jobs[index], future)

    def _run_in_threads_or_serial(
        self,
        jobs: Sequence[ReplayJob],
        pending: List[int],
        results: List[Optional[ReplayJobResult]],
        resume_from: Mapping[str, ReplayCheckpoint],
    ) -> None:
        """Load and digest-check each unique trace once, then replay in
        process (the trace is only read during replay, so sharing is safe)."""
        traces: Dict[str, ExecutionTrace] = {}
        digests: Dict[str, str] = {}
        load_errors: Dict[str, Dict[str, str]] = {}
        runnable: List[int] = []
        for index in pending:
            job = jobs[index]
            path = str(job.trace_path)
            if path not in traces and path not in load_errors:
                try:
                    traces[path] = ExecutionTrace.load(path)
                    digests[path] = traces[path].digest()
                except Exception as error:  # noqa: BLE001
                    load_errors[path] = _error_details(error)
            if path in load_errors:
                results[index] = ReplayJobResult(job=job, **load_errors[path])
            elif job.trace_digest and job.trace_digest != digests[path]:
                results[index] = ReplayJobResult(
                    job=job, **_error_details(TraceChangedError(path))
                )
            else:
                runnable.append(index)

        if self.backend == "serial":
            for index in runnable:
                job = jobs[index]
                try:
                    payload = _replay_trace(
                        traces[str(job.trace_path)],
                        job.config.to_dict(),
                        pause_check=self.pause_check,
                        resume_from=resume_from.get(job.label),
                    )
                except Exception as error:  # noqa: BLE001 - jobs must not kill the batch
                    results[index] = ReplayJobResult(job=job, **_error_details(error))
                else:
                    results[index] = self._from_payload(job, payload)
            return

        with make_worker_pool("thread", self.max_workers) as executor:
            futures = {
                index: executor.submit(
                    _replay_trace, traces[str(jobs[index].trace_path)], jobs[index].config.to_dict()
                )
                for index in runnable
            }
            for index, future in futures.items():
                results[index] = self._collect(jobs[index], future)

    def _collect(self, job: ReplayJob, future: Future) -> ReplayJobResult:
        try:
            payload = future.result()
        except Exception as error:  # noqa: BLE001
            return ReplayJobResult(job=job, **_error_details(error))
        return self._from_payload(job, payload)

    @staticmethod
    def _from_payload(job: ReplayJob, payload: Dict[str, Any]) -> ReplayJobResult:
        return ReplayJobResult(
            job=job,
            summary=ReplayResultSummary.from_dict(payload["summary"]),
            duration_s=float(payload.get("duration_s", 0.0)),
        )
