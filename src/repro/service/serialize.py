"""The one JSON serializer behind every CLI subcommand.

Each ``python -m repro`` subcommand supports ``--json`` for machine-
readable output; historically every command hand-rolled its own payload
dict inline, which drifted (and made adding a field a five-place edit).
This module centralises the payload builders: one function per payload
shape, all routed through :func:`to_jsonable` — which understands the
project's ``to_dict`` convention, dataclasses, paths and mappings — and
one :func:`dumps` for the actual rendering.

Keep the *shapes* stable: scripts parse them.  Adding keys is fine;
renaming or removing them is a breaking change to the CLI contract.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable primitives.

    Resolution order: primitives pass through; objects exposing
    ``to_dict()`` (the project-wide convention) use it; dataclasses fall
    back to their field dict; mappings and sequences recurse; ``Path``
    becomes a string; anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "to_dict") and callable(value.to_dict):
        return to_jsonable(value.to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    return str(value)


def dumps(payload: Any, indent: int = 2) -> str:
    """Render a payload exactly the way every subcommand prints JSON."""
    return json.dumps(to_jsonable(payload), indent=indent)


def dumps_compact(payload: Any) -> str:
    """Single-line rendering for JSON-lines stores (no trailing newline)."""
    return json.dumps(to_jsonable(payload), separators=(",", ":"), sort_keys=True)


# ----------------------------------------------------------------------
# Payload builders (one per subcommand output shape)
# ----------------------------------------------------------------------
def trace_list_payload(repository) -> Dict[str, Any]:
    """``list-traces``: discovered trace records plus skipped files."""
    records = repository.discover()
    return {
        "traces": [
            {
                "name": record.name,
                "path": str(record.path),
                "digest": record.digest,
                "nodes": record.num_nodes,
                "operators": record.num_operators,
                "workload": record.workload,
                "world_size": record.world_size,
            }
            for record in records
        ],
        "invalid": {str(path): reason for path, reason in sorted(repository.invalid.items())},
    }


def batch_payload(batch, memory_reports: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """``replay`` / ``sweep``: per-job rows plus batch accounting (and the
    per-trace memory section when ``--memory`` ran)."""
    payload: Dict[str, Any] = {
        "jobs": [
            {
                "label": job_result.job.label,
                "trace": job_result.job.trace_name,
                "device": job_result.job.config.device,
                "cached": job_result.cached,
                "error": job_result.error,
                "error_type": job_result.error_type,
                "traceback": job_result.traceback,
                "summary": job_result.summary.to_dict() if job_result.summary else None,
            }
            for job_result in batch
        ],
        "replayed": batch.replayed_count,
        "cached": batch.cached_count,
        "failed": batch.error_count,
    }
    if memory_reports is not None:
        payload["memory"] = {
            name: report.summary_dict() for name, report in memory_reports.items()
        }
    return payload


def cluster_payload(report) -> Dict[str, Any]:
    """``replay-dist``: the :class:`~repro.cluster.engine.ClusterReport`
    (includes per-rank + fleet memory sections when tracking ran)."""
    return report.to_dict()


def memory_payload(
    reports: Mapping[str, Any], include_timeline: bool = False
) -> Dict[str, Any]:
    """``memory-report``: one full memory report per trace."""
    return {
        "reports": {
            name: report.to_dict(include_timeline=include_timeline)
            for name, report in reports.items()
        },
        "oom": sorted(name for name, report in reports.items() if not report.fits),
    }


def profile_payload(reports: Mapping[str, Any]) -> Dict[str, Any]:
    """``profile``: one :class:`~repro.profiling.ProfileReport` per trace.

    The payload carries the profiling schema version once at the top level
    (every report in one payload shares it) so consumers can gate parsing.
    """
    from repro.profiling import PROFILE_SCHEMA_VERSION

    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "reports": {name: report.to_dict() for name, report in reports.items()},
    }


def version_payload(version: str) -> Dict[str, Any]:
    """``version``: the package version."""
    return {"package": "repro", "version": version}


# ----------------------------------------------------------------------
# Daemon payloads (REST API bodies and their CLI mirrors)
# ----------------------------------------------------------------------
def job_payload(record) -> Dict[str, Any]:
    """One job as the daemon's status endpoint serves it.

    This is the :class:`~repro.daemon.jobs.JobRecord` dict minus the bulky
    ``result``/``snapshot`` bodies (those have their own endpoints), plus
    presence flags so clients know whether fetching them will succeed.
    """
    from repro.daemon.jobs import DAEMON_SCHEMA_VERSION

    data = record.to_dict()
    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "id": data["id"],
        "owner": data["owner"],
        "kind": data["spec"]["kind"],
        "state": data["state"],
        "priority": data["priority"],
        "seq": data["seq"],
        "error": data["error"],
        "error_type": data["error_type"],
        "traceback": data["traceback"],
        "has_result": data["result"] is not None,
        "has_snapshot": data["snapshot"] is not None,
    }


def job_list_payload(records) -> Dict[str, Any]:
    """``GET /jobs``: the caller's jobs in submission order."""
    from repro.daemon.jobs import DAEMON_SCHEMA_VERSION

    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "jobs": [job_payload(record) for record in records],
    }


def job_result_payload(record) -> Dict[str, Any]:
    """``GET /jobs/<id>/result``: the completed job's result body."""
    from repro.daemon.jobs import DAEMON_SCHEMA_VERSION

    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "id": record.id,
        "kind": record.spec.kind,
        "result": record.result,
    }


def snapshot_payload(record) -> Dict[str, Any]:
    """``GET /jobs/<id>/snapshot``: the paused job's resume snapshot
    (already versioned by the daemon's snapshot builders)."""
    from repro.daemon.jobs import DAEMON_SCHEMA_VERSION

    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "id": record.id,
        "kind": record.spec.kind,
        "state": record.state,
        "snapshot": record.snapshot,
    }


def daemon_health_payload(health: Mapping[str, Any]) -> Dict[str, Any]:
    """``GET /health``: queue/cache/worker stats from
    :meth:`~repro.daemon.daemon.ReplayDaemon.health` (already versioned)."""
    return dict(health)


# ----------------------------------------------------------------------
# Telemetry payloads
# ----------------------------------------------------------------------
def metrics_payload(registry) -> Dict[str, Any]:
    """JSON mirror of the metrics registry (the Prometheus exposition on
    ``GET /metrics`` is the text twin of this shape; both are versioned
    through ``METRICS_SCHEMA_VERSION``)."""
    return registry.snapshot()


def telemetry_trace_payload(tracer) -> Dict[str, Any]:
    """A tracer's recorded spans/events as the versioned telemetry dict
    (``TELEMETRY_SCHEMA_VERSION``); the Chrome-trace exporter renders the
    same records for timeline viewers."""
    return tracer.to_dict()


def critical_path_payload(report) -> Dict[str, Any]:
    """``analyze critical-path``: the versioned
    :class:`~repro.insights.CriticalPathReport` dict
    (``INSIGHTS_SCHEMA_VERSION``)."""
    return report.to_dict()


def diff_payload(report) -> Dict[str, Any]:
    """``analyze diff``: the versioned
    :class:`~repro.insights.DiffReport` dict (``INSIGHTS_SCHEMA_VERSION``)."""
    return report.to_dict()


def regression_payload(report) -> Dict[str, Any]:
    """``analyze regressions``: the versioned
    :class:`~repro.insights.RegressionReport` dict
    (``INSIGHTS_SCHEMA_VERSION``)."""
    return report.to_dict()


def job_analysis_payload(record, analysis: Mapping[str, Any]) -> Dict[str, Any]:
    """``GET /jobs/<id>/analysis``: job identity plus its insights dict."""
    from repro.daemon.jobs import DAEMON_SCHEMA_VERSION

    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "id": record.id,
        "kind": record.spec.kind,
        "analysis": dict(analysis),
    }
