"""Trace repository: discovery, validation and loading of serialised traces.

A repository is a directory of execution traces serialised as JSON by
:meth:`repro.et.trace.ExecutionTrace.save` (the same files
:class:`repro.core.generator.BenchmarkGenerator` emits next to generated
benchmarks).  Discovery walks the directory, validates each candidate file
against the ET schema, and produces lightweight :class:`TraceRecord` entries
— path, content digest, node counts, metadata — without keeping the full
traces in memory.  Files that parse as JSON but are not execution traces
(for instance the profiler traces the generator writes alongside) are
skipped and reported in :attr:`TraceRepository.invalid`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.et.schema import ETNode
from repro.et.trace import ExecutionTrace


class TraceValidationError(Exception):
    """A file under the repository root is not a valid execution trace."""


@dataclass
class TraceRecord:
    """One discovered trace: everything the batch layer needs to schedule a
    replay without loading the full trace."""

    name: str
    path: Path
    digest: str
    num_nodes: int
    num_operators: int
    schema_version: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def workload(self) -> str:
        return str(self.metadata.get("workload", ""))

    @property
    def world_size(self) -> int:
        return int(self.metadata.get("world_size", 1))


class TraceRepository:
    """Discovers and loads execution traces under a directory tree.

    Parameters
    ----------
    root:
        Directory to scan.  It is created on demand by :meth:`add`.
    pattern:
        Glob applied recursively under ``root`` (default ``*.json``).
    """

    def __init__(self, root: Union[str, Path], pattern: str = "*.json") -> None:
        self.root = Path(root)
        self.pattern = pattern
        #: path -> reason, for files matching the pattern that failed
        #: validation during the last :meth:`discover`.
        self.invalid: Dict[Path, str] = {}
        self._records: Optional[List[TraceRecord]] = None

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(self, refresh: bool = False) -> List[TraceRecord]:
        """Scan the root and return all valid trace records, sorted by name.

        Results are memoised; pass ``refresh=True`` to re-scan after files
        changed on disk.
        """
        if self._records is not None and not refresh:
            return list(self._records)
        records: List[TraceRecord] = []
        self.invalid = {}
        if self.root.is_dir():
            for path in sorted(self.root.rglob(self.pattern)):
                if not path.is_file():
                    continue
                # Hidden files/directories (.cache, .git ...) are never traces.
                relative = path.relative_to(self.root)
                if any(part.startswith(".") for part in relative.parts):
                    continue
                try:
                    records.append(self._record_for(path))
                except TraceValidationError as error:
                    self.invalid[path] = str(error)
        self._records = records
        return list(records)

    def _record_for(self, path: Path) -> TraceRecord:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise TraceValidationError(f"unreadable JSON: {error}") from error
        trace = decode_trace_dict(data)
        return TraceRecord(
            name=self._name_for(path),
            path=path,
            digest=trace.digest(),
            num_nodes=len(trace),
            num_operators=len(trace.operators()),
            schema_version=str(data.get("schema", "")),
            metadata=dict(trace.metadata),
        )

    def _name_for(self, path: Path) -> str:
        relative = path.relative_to(self.root)
        return str(relative.with_suffix("")).replace("\\", "/")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.discover())

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.discover())

    def names(self) -> List[str]:
        return [record.name for record in self.discover()]

    def get(self, name: str) -> TraceRecord:
        """Record for ``name`` (the path under the root, without ``.json``)."""
        for record in self.discover():
            if record.name == name:
                return record
        raise KeyError(f"no trace named {name!r} in {self.root}; known: {self.names()}")

    def load(self, name_or_record: Union[str, TraceRecord]) -> ExecutionTrace:
        """Load the full execution trace for a name or record."""
        record = name_or_record if isinstance(name_or_record, TraceRecord) else self.get(name_or_record)
        return ExecutionTrace.load(record.path)

    def add(self, name: str, trace: ExecutionTrace) -> TraceRecord:
        """Serialise ``trace`` into the repository and return its record."""
        path = self.root / f"{name}.json"
        trace.save(path)
        self._records = None  # force re-discovery
        return self._record_for(path)


def decode_trace_dict(data: Any) -> ExecutionTrace:
    """Validate and decode a serialised execution trace in one pass.

    Raises :class:`TraceValidationError` unless ``data`` is the
    ``et.schema`` Table 2 shape; each node is decoded exactly once.
    """
    if not isinstance(data, dict):
        raise TraceValidationError("top-level JSON value is not an object")
    raw_nodes = data.get("nodes")
    if not isinstance(raw_nodes, list) or not raw_nodes:
        raise TraceValidationError("missing or empty 'nodes' array")
    nodes = []
    for index, entry in enumerate(raw_nodes):
        if not isinstance(entry, dict):
            raise TraceValidationError(f"node {index} is not an object")
        missing = {"name", "id", "parent"} - set(entry)
        if missing:
            raise TraceValidationError(
                f"node {index} is missing required keys: {sorted(missing)}"
            )
        try:
            nodes.append(ETNode.from_dict(entry))
        except (KeyError, TypeError, ValueError) as error:
            raise TraceValidationError(f"node {index} failed to decode: {error}") from error
    return ExecutionTrace(nodes=nodes, metadata=dict(data.get("metadata", {})))


def validate_trace_dict(data: Any) -> None:
    """Raise :class:`TraceValidationError` unless ``data`` is a serialised
    execution trace (the ``et.schema`` Table 2 shape)."""
    decode_trace_dict(data)
