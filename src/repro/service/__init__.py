"""Batch replay orchestration.

The core pipeline (``repro.core``) replays *one* execution trace at a time.
This subpackage scales that up to fleets of traces and grids of replay
configurations — the "benchmark sweep" workflow a production benchmarking
service runs continuously:

* :mod:`~repro.service.repository` — a :class:`TraceRepository` that
  discovers, validates and content-addresses serialised execution traces on
  disk,
* :mod:`~repro.service.cache` — a :class:`ResultCache` keyed on
  (trace digest, replay-config digest) so repeated sweeps skip work that is
  already done,
* :mod:`~repro.service.batch` — a :class:`BatchReplayer` that fans replay
  jobs out over a ``concurrent.futures`` worker pool (thread-, process- or
  serial-backed),
* :mod:`~repro.service.sweep` — a :class:`SweepRunner` that expands a
  declarative :class:`SweepSpec` (traces x devices x config axes) into jobs
  and aggregates the results,
* :mod:`~repro.service.cli` — the ``python -m repro`` command-line
  interface (``list-traces``, ``replay``, ``sweep``).

See ``docs/architecture.md`` for how this layer sits on top of ``et``,
``core``, ``hardware`` and ``bench``.
"""

from repro.service.batch import BatchReplayer, BatchResult, ReplayJob, ReplayJobResult
from repro.service.cache import ResultCache
from repro.service.repository import TraceRecord, TraceRepository, TraceValidationError
from repro.service.sweep import SweepRunner, SweepSpec

__all__ = [
    "BatchReplayer",
    "BatchResult",
    "ReplayJob",
    "ReplayJobResult",
    "ResultCache",
    "TraceRecord",
    "TraceRepository",
    "TraceValidationError",
    "SweepRunner",
    "SweepSpec",
]
