"""``python -m repro`` — the batch orchestration command line.

Five subcommands drive the service layer:

``list-traces``
    Discover and validate the traces in a repository directory.
``replay``
    Replay one or more traces under a single configuration, through the
    worker pool and the result cache.
``replay-dist``
    Co-replay a directory of per-rank traces as one fleet through the
    multi-rank cluster engine (virtual-time collective scheduler) and
    print the per-rank / critical-path report.
``sweep``
    Cross product of traces x devices x config axes (power limits,
    communication-delay scales, iterations ...), batched and cached.
``version``
    Print the package version (also ``repro --version``), so batch logs
    are attributable to a build.

Replays are executed through the :mod:`repro.api` facade (and therefore
the stage pipeline); ``--iterations``/``--warmup`` pass straight through
to the :class:`~repro.core.replayer.ReplayConfig` every job runs under,
and ``repro --version`` reports the package version.

Examples
--------
::

    python -m repro list-traces --repo traces/
    python -m repro replay --repo traces/ --trace rm_et --device A100 -n 3
    python -m repro replay-dist traces/rm_4rank/ --device A100 -n 2
    python -m repro sweep --repo traces/ --device A100 --device NewPlatform \\
        --power-limit 250 --power-limit 400 --cache .repro-cache --workers 4
    python -m repro version

Every command exits 0 on success, 1 when any job failed, and 2 on usage
errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

import repro.api as api
from repro.bench.aggregate import cache_summary_line, format_batch_report, format_device_aggregate
from repro.bench.reporting import format_table
from repro.core.replayer import ReplayConfig
from repro.service.batch import BACKENDS
from repro.service.repository import TraceRepository
from repro.service.sweep import SweepSpec
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch replay orchestration for Mystique execution traces.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-traces", help="discover and validate traces in a repository directory"
    )
    _add_repo_argument(list_parser)
    list_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    replay_parser = subparsers.add_parser(
        "replay", help="replay traces under one configuration"
    )
    _add_repo_argument(replay_parser)
    _add_pool_arguments(replay_parser)
    replay_parser.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to replay (repeatable; default: every trace in the repo)",
    )
    replay_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    _add_config_arguments(replay_parser)
    replay_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    dist_parser = subparsers.add_parser(
        "replay-dist",
        help="co-replay a directory of per-rank traces as one fleet (cluster engine)",
    )
    dist_parser.add_argument(
        "trace_dir", metavar="TRACE_DIR",
        help="directory holding one serialised execution trace per rank "
             "(e.g. written by DistributedRunner.save_captures)",
    )
    dist_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    dist_parser.add_argument(
        "--world", type=int, default=None, metavar="N",
        help="world size collectives are priced at (default: the traces' recorded world size)",
    )
    dist_parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="rendezvous guard against mismatched fleets (default: 60)",
    )
    _add_config_arguments(dist_parser)
    dist_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    sweep_parser = subparsers.add_parser(
        "sweep", help="cross-device / cross-config sweep over a trace repository"
    )
    _add_repo_argument(sweep_parser)
    _add_pool_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to include (repeatable; default: every trace in the repo)",
    )
    sweep_parser.add_argument(
        "--device", action="append", default=None, metavar="NAME",
        help="device to sweep over (repeatable; default: A100)",
    )
    sweep_parser.add_argument(
        "--power-limit", action="append", default=None, type=float, metavar="WATTS",
        help="power-limit axis value (repeatable)",
    )
    sweep_parser.add_argument(
        "--comm-delay-scale", action="append", default=None, type=float, metavar="FACTOR",
        help="communication-delay scale axis value (repeatable; scale-down emulation)",
    )
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    subparsers.add_parser("version", help="print the package version")

    return parser


def _add_repo_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--repo", required=True, metavar="DIR",
        help="trace repository directory (searched recursively for *.json traces)",
    )


def _add_pool_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result-cache directory; repeated invocations skip completed replays",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool size (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker-pool backend (default: thread)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-n", "--iterations", type=int, default=1, help="replay iterations (default: 1)"
    )
    parser.add_argument(
        "--warmup", type=int, default=0, help="unmeasured warm-up iterations (default: 0)"
    )


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_list_traces(args: argparse.Namespace) -> int:
    repository = TraceRepository(args.repo)
    records = repository.discover()
    if args.json:
        payload = {
            "traces": [
                {
                    "name": record.name,
                    "path": str(record.path),
                    "digest": record.digest,
                    "nodes": record.num_nodes,
                    "operators": record.num_operators,
                    "workload": record.workload,
                    "world_size": record.world_size,
                }
                for record in records
            ],
            "invalid": {str(path): reason for path, reason in sorted(repository.invalid.items())},
        }
        print(json.dumps(payload, indent=2))
        return 0
    headers = ["name", "workload", "nodes", "operators", "world_size", "digest"]
    rows = [
        [record.name, record.workload or "-", record.num_nodes, record.num_operators,
         record.world_size, record.digest[:12]]
        for record in records
    ]
    print(format_table(headers, rows, title=f"Traces in {repository.root}"))
    if repository.invalid:
        print(f"\nskipped {len(repository.invalid)} non-trace file(s):")
        for path, reason in sorted(repository.invalid.items()):
            print(f"  {path}: {reason}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    spec = SweepSpec(
        traces=args.trace,
        devices=[args.device],
        base=ReplayConfig(iterations=args.iterations, warmup_iterations=args.warmup),
    )
    return _run_sweep(args, spec)


def _cmd_replay_dist(args: argparse.Namespace) -> int:
    from repro.bench.aggregate import format_cluster_report
    from repro.cluster.engine import ClusterMatchError, ClusterReplayError

    session = (
        api.replay_cluster(args.trace_dir)
        .on(args.device)
        .iterations(args.iterations, warmup=args.warmup)
        .timeout(args.timeout)
    )
    if args.world is not None:
        session.world(args.world)
    try:
        report = session.run()
    except (ClusterMatchError, ClusterReplayError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_cluster_report(report))
    return 0


def _cmd_version(args: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    axes = {}
    if args.power_limit:
        axes["power_limit_w"] = list(args.power_limit)
    if args.comm_delay_scale:
        axes["comm_delay_scale"] = list(args.comm_delay_scale)
    spec = SweepSpec(
        traces=args.trace,
        devices=args.device or ["A100"],
        axes=axes,
        base=ReplayConfig(iterations=args.iterations, warmup_iterations=args.warmup),
    )
    return _run_sweep(args, spec)


def _run_sweep(args: argparse.Namespace, spec: SweepSpec) -> int:
    """Execute a sweep spec through the :mod:`repro.api` facade."""
    try:
        result = api.sweep(
            args.repo,
            spec=spec,
            cache_dir=args.cache,
            workers=args.workers,
            backend=args.backend,
        )
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    batch = result.batch
    if args.json:
        payload = {
            "jobs": [
                {
                    "label": job_result.job.label,
                    "trace": job_result.job.trace_name,
                    "device": job_result.job.config.device,
                    "cached": job_result.cached,
                    "error": job_result.error,
                    "summary": job_result.summary.to_dict() if job_result.summary else None,
                }
                for job_result in batch
            ],
            "replayed": batch.replayed_count,
            "cached": batch.cached_count,
            "failed": batch.error_count,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(format_batch_report(batch))
        if len({job_result.job.config.device for job_result in batch}) > 1:
            print()
            print(format_device_aggregate(batch))
        print()
        print(cache_summary_line(batch))
    return 1 if batch.error_count else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list-traces": _cmd_list_traces,
        "replay": _cmd_replay,
        "replay-dist": _cmd_replay_dist,
        "sweep": _cmd_sweep,
        "version": _cmd_version,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
