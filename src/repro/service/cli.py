"""``python -m repro`` — the batch orchestration command line.

Seven subcommands drive the service layer:

``list-traces``
    Discover and validate the traces in a repository directory.
``replay``
    Replay one or more traces under a single configuration, through the
    worker pool and the result cache (``--memory`` adds the simulated
    device-memory footprint per trace).
``replay-dist``
    Co-replay a directory of per-rank traces as one fleet through the
    multi-rank cluster engine (virtual-time collective scheduler) and
    print the per-rank / critical-path report (``--memory`` adds
    per-rank footprints and the max-rank summary).
``memory-report``
    Simulate the device-memory footprint of traces *without replaying
    them*: peak/average allocated and reserved bytes, per-role and
    per-category attribution, and OOM what-ifs against ``--budget-gb``
    or a smaller ``--device``.
``sweep``
    Cross product of traces x devices x config axes (power limits,
    communication-delay scales, iterations ...), batched and cached.
``profile``
    Profile the replay *engine itself* per trace (host wall time per
    operator, replay throughput in ops/sec) — the :mod:`repro.profiling`
    hot-first summary; ``--scalar`` profiles the scalar execute path for
    comparison against the vectorized default.  Also reachable as
    ``replay --profile`` (which replays sequentially through the session
    API, bypassing the worker pool and the result cache).
``version``
    Print the package version (also ``repro --version``), so batch logs
    are attributable to a build.
``analyze``
    The :mod:`repro.insights` family: ``critical-path`` co-replays a
    fleet and attributes what bounds end-to-end time (straggler rank,
    dominant ops/collectives, comm/compute overlap per rank); ``diff``
    attributes the delta between two saved runs per stage / op class /
    rank; ``regressions`` checks the BENCH trajectory against its
    recorded history and exits 1 on a perf drop.

A second family of subcommands drives the replay daemon
(:mod:`repro.daemon`, see ``docs/daemon.md``): ``serve`` runs the
long-lived multi-tenant service, and ``submit`` / ``status`` /
``result`` / ``cancel`` / ``pause`` / ``resume`` / ``snapshot`` are the
client verbs talking to it over its REST/JSON API (``--url``,
identifying themselves with ``--client``).  Client verbs always print
JSON — they are thin mirrors of the API payloads.

Replays are executed through the :mod:`repro.api` facade (and therefore
the stage pipeline); ``--iterations``/``--warmup`` pass straight through
to the :class:`~repro.core.replayer.ReplayConfig` every job runs under.
Every subcommand supports ``--json`` for machine-readable output; all
payloads are built by the shared :mod:`repro.service.serialize` module.

Examples
--------
::

    python -m repro list-traces --repo traces/
    python -m repro replay --repo traces/ --trace rm_et --device A100 -n 3 --memory
    python -m repro replay-dist traces/rm_4rank/ --device A100 -n 2 --memory
    python -m repro memory-report --repo traces/ --device V100 --budget-gb 8 --json
    python -m repro sweep --repo traces/ --device A100 --device NewPlatform \\
        --power-limit 250 --power-limit 400 --cache .repro-cache --workers 4
    python -m repro profile --repo traces/ --trace rm_et -n 5 --top 10
    python -m repro version
    python -m repro serve --state-dir .repro-daemon --port 8642
    python -m repro submit sweep --repo traces/ --device A100 --power-limit 250 \\
        --client alice --wait
    python -m repro pause JOB_ID --client alice && python -m repro snapshot JOB_ID \\
        --client alice

Every command exits 0 on success, 1 when any job failed (or, for
``memory-report``, any trace did not fit), and 2 on usage errors
(argparse's convention).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

import repro.api as api
from repro.bench.aggregate import cache_summary_line, format_batch_report, format_device_aggregate
from repro.bench.reporting import format_table
from repro.core.replayer import ReplayConfig
from repro.memory import MemoryReport, format_bytes, format_memory_report, simulate_memory
from repro.service import serialize
from repro.service.batch import BACKENDS
from repro.service.repository import TraceRepository
from repro.service.sweep import SweepSpec
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch replay orchestration for Mystique execution traces.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-traces", help="discover and validate traces in a repository directory"
    )
    _add_repo_argument(list_parser)
    list_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    replay_parser = subparsers.add_parser(
        "replay", help="replay traces under one configuration"
    )
    _add_repo_argument(replay_parser)
    _add_pool_arguments(replay_parser)
    replay_parser.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to replay (repeatable; default: every trace in the repo)",
    )
    replay_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    _add_config_arguments(replay_parser)
    _add_memory_arguments(replay_parser)
    replay_parser.add_argument(
        "--profile", action="store_true",
        help="profile the replay engine per trace (replays sequentially through "
             "the session API; incompatible with --cache/--workers)",
    )
    replay_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    dist_parser = subparsers.add_parser(
        "replay-dist",
        help="co-replay a directory of per-rank traces as one fleet (cluster engine)",
    )
    dist_parser.add_argument(
        "trace_dir", metavar="TRACE_DIR",
        help="directory holding one serialised execution trace per rank "
             "(e.g. written by DistributedRunner.save_captures)",
    )
    dist_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    dist_parser.add_argument(
        "--world-size", "--world", type=int, default=None, metavar="N", dest="world",
        help="world size collectives are priced at (default: the traces' recorded world size)",
    )
    dist_parser.add_argument(
        "--topology", default=None, metavar="NAME",
        choices=("flat", "nvlink-island", "rail-spine"),
        help="hierarchical fabric preset pricing the collectives "
             "(flat | nvlink-island | rail-spine; default: flat)",
    )
    dist_parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="rendezvous guard against mismatched fleets (default: 60)",
    )
    dist_parser.add_argument(
        "--trace-out", default=None, metavar="PATH", dest="trace_out",
        help="write the co-replay's telemetry timeline (per-rank compute/comms/"
             "stall Gantt on the virtual clock) as Chrome-trace JSON to PATH "
             "(open at chrome://tracing or ui.perfetto.dev)",
    )
    _add_config_arguments(dist_parser)
    _add_memory_arguments(dist_parser)
    dist_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    memory_parser = subparsers.add_parser(
        "memory-report",
        help="simulate traces' device-memory footprints (no replay)",
    )
    _add_repo_argument(memory_parser)
    memory_parser.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to analyse (repeatable; default: every trace in the repo)",
    )
    memory_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    memory_parser.add_argument(
        "--budget-gb", type=float, default=None, metavar="GIB",
        help="what-if pool size in GiB (default: the device's capacity)",
    )
    memory_parser.add_argument(
        "--timeline", action="store_true",
        help="include the per-op footprint timeline in --json output",
    )
    memory_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    sweep_parser = subparsers.add_parser(
        "sweep", help="cross-device / cross-config sweep over a trace repository"
    )
    _add_repo_argument(sweep_parser)
    _add_pool_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to include (repeatable; default: every trace in the repo)",
    )
    sweep_parser.add_argument(
        "--device", action="append", default=None, metavar="NAME",
        help="device to sweep over (repeatable; default: A100)",
    )
    sweep_parser.add_argument(
        "--power-limit", action="append", default=None, type=float, metavar="WATTS",
        help="power-limit axis value (repeatable)",
    )
    sweep_parser.add_argument(
        "--comm-delay-scale", action="append", default=None, type=float, metavar="FACTOR",
        help="communication-delay scale axis value (repeatable; scale-down emulation)",
    )
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile the replay engine's own per-op wall time and throughput",
    )
    _add_repo_argument(profile_parser)
    profile_parser.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to profile (repeatable; default: every trace in the repo)",
    )
    profile_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    _add_config_arguments(profile_parser)
    profile_parser.add_argument(
        "--scalar", action="store_true",
        help="profile the scalar execute path instead of the vectorized default",
    )
    profile_parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="operator rows per hot-first table (default: 20)",
    )
    profile_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    version_parser = subparsers.add_parser("version", help="print the package version")
    version_parser.add_argument("--json", action="store_true", help="emit JSON")

    _add_analyze_parsers(subparsers)
    _add_daemon_parsers(subparsers)

    return parser


def _add_analyze_parsers(subparsers) -> None:
    """The insights family: critical-path, diff, regressions."""
    analyze_parser = subparsers.add_parser(
        "analyze",
        help="structured diagnoses: critical-path attribution, run diffs, "
             "perf-regression watchdog (repro.insights)",
    )
    analyze_sub = analyze_parser.add_subparsers(dest="analyze_command", required=True)

    cp_parser = analyze_sub.add_parser(
        "critical-path",
        help="co-replay a fleet and attribute its critical path "
             "(straggler rank, dominant ops/collectives, overlap per rank)",
    )
    cp_parser.add_argument(
        "trace_dir", metavar="TRACE_DIR",
        help="directory holding one serialised execution trace per rank",
    )
    cp_parser.add_argument("--device", default="A100", help="device spec name (default: A100)")
    cp_parser.add_argument(
        "--world-size", "--world", type=int, default=None, metavar="N", dest="world",
        help="world size collectives are priced at (default: the traces' recorded world size)",
    )
    cp_parser.add_argument(
        "--topology", default=None, metavar="NAME",
        choices=("flat", "nvlink-island", "rail-spine"),
        help="hierarchical fabric preset pricing the collectives",
    )
    _add_config_arguments(cp_parser)
    cp_parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="dominant-op rows to report (default: 5)",
    )
    cp_parser.add_argument(
        "--straggler-threshold", type=float, default=5.0, metavar="PCT",
        help="flag ranks slower than the fleet mean by more than PCT%% (default: 5)",
    )
    cp_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    diff_parser = analyze_sub.add_parser(
        "diff",
        help="attribute the end-to-end delta between two runs "
             "(per stage / op class / rank)",
    )
    diff_parser.add_argument(
        "baseline", metavar="BASELINE",
        help="JSON artifact of the baseline run: a telemetry trace payload, "
             "a replay-dist --json report, or a daemon cluster result body",
    )
    diff_parser.add_argument(
        "current", metavar="CURRENT", help="JSON artifact of the run to compare",
    )
    diff_parser.add_argument(
        "--threshold", type=float, default=2.0, metavar="PCT",
        help="end-to-end growth below PCT%% counts as noise (default: 2)",
    )
    diff_parser.add_argument(
        "--top", type=int, default=8, metavar="N",
        help="rows per attribution table (default: 8)",
    )
    diff_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    reg_parser = analyze_sub.add_parser(
        "regressions",
        help="check the BENCH trajectory for perf drops (exits 1 on regression)",
    )
    reg_parser.add_argument(
        "--bench", default=None, metavar="PATH",
        help="bench payload to check (default: the repo's BENCH_replay_throughput.json)",
    )
    reg_parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="append-only JSON-lines trajectory store "
             "(default: BENCH_history.jsonl next to the bench file)",
    )
    reg_parser.add_argument(
        "--threshold", type=float, default=None, metavar="PCT",
        help="relative drop vs the history median that fails (default: 30)",
    )
    reg_parser.add_argument(
        "--record", action="store_true",
        help="append this bench payload to the history after checking",
    )
    reg_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")


def _add_daemon_parsers(subparsers) -> None:
    """The daemon family: ``serve`` plus the client verbs."""
    serve_parser = subparsers.add_parser(
        "serve", help="run the persistent multi-tenant replay daemon"
    )
    serve_parser.add_argument(
        "--state-dir", default=".repro-daemon", metavar="DIR",
        help="job records, snapshots and (by default) the result cache live "
             "here; the daemon recovers from it on restart (default: .repro-daemon)",
    )
    serve_parser.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=None, help="bind port (default: 8642)")
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent jobs (each job replays its points serially so it "
             "stays pausable; default: 2)",
    )
    serve_parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result-cache directory (default: <state-dir>/cache)",
    )
    serve_parser.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="LRU bound on cached results (default: unbounded)",
    )
    serve_parser.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="expire cached results older than this (default: never)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit a job to the replay daemon"
    )
    kind_parsers = submit_parser.add_subparsers(dest="job_kind", required=True)

    sweep_job = kind_parsers.add_parser(
        "sweep", help="a sweep job (same grid as the inline `repro sweep`)"
    )
    _add_submit_arguments(sweep_job)
    _add_repo_argument(sweep_job)
    sweep_job.add_argument(
        "--trace", action="append", default=None, metavar="NAME",
        help="trace name to include (repeatable; default: every trace in the repo)",
    )
    sweep_job.add_argument(
        "--device", action="append", default=None, metavar="NAME",
        help="device to sweep over (repeatable; default: A100)",
    )
    sweep_job.add_argument(
        "--power-limit", action="append", default=None, type=float, metavar="WATTS",
        help="power-limit axis value (repeatable)",
    )
    sweep_job.add_argument(
        "--comm-delay-scale", action="append", default=None, type=float, metavar="FACTOR",
        help="communication-delay scale axis value (repeatable)",
    )
    _add_config_arguments(sweep_job)

    cluster_job = kind_parsers.add_parser(
        "cluster", help="a fleet co-replay job (same engine as `repro replay-dist`)"
    )
    _add_submit_arguments(cluster_job)
    cluster_job.add_argument(
        "trace_dir", metavar="TRACE_DIR",
        help="directory holding one serialised execution trace per rank",
    )
    cluster_job.add_argument("--device", default="A100", help="device spec name (default: A100)")
    _add_config_arguments(cluster_job)

    status_parser = subparsers.add_parser(
        "status", help="show one job, or list your jobs on the daemon"
    )
    _add_client_arguments(status_parser)
    status_parser.add_argument(
        "job_id", nargs="?", default=None, metavar="JOB_ID",
        help="job to show (default: list your jobs)",
    )
    status_parser.add_argument(
        "--all", action="store_true", help="when listing, include every client's jobs"
    )

    for verb, help_text in (
        ("result", "fetch a completed job's result"),
        ("snapshot", "fetch a paused job's resume snapshot"),
        ("pause", "pause a job at its next checkpoint boundary"),
        ("resume", "requeue a paused job (completed work is not repriced)"),
        ("cancel", "cancel a job (cooperative when running)"),
    ):
        verb_parser = subparsers.add_parser(verb, help=help_text)
        _add_client_arguments(verb_parser)
        verb_parser.add_argument("job_id", metavar="JOB_ID")


def _add_submit_arguments(parser: argparse.ArgumentParser) -> None:
    """Client identity plus submit-only flags, on each job-kind parser."""
    _add_client_arguments(parser)
    parser.add_argument(
        "--priority", type=int, default=0,
        help="dispatch priority; higher runs first (default: 0)",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a resting state, then print it",
    )


def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.daemon.client import DEFAULT_URL

    parser.add_argument(
        "--url", default=DEFAULT_URL, metavar="URL",
        help=f"daemon base URL (default: {DEFAULT_URL})",
    )
    parser.add_argument(
        "--client", default=os.environ.get("REPRO_CLIENT", "anonymous"), metavar="ID",
        help="client identity jobs are owned by ($REPRO_CLIENT or 'anonymous')",
    )


def _add_repo_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--repo", required=True, metavar="DIR",
        help="trace repository directory (searched recursively for *.json traces)",
    )


def _add_pool_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result-cache directory; repeated invocations skip completed replays",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool size (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker-pool backend (default: thread)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-n", "--iterations", type=int, default=1, help="replay iterations (default: 1)"
    )
    parser.add_argument(
        "--warmup", type=int, default=0, help="unmeasured warm-up iterations (default: 0)"
    )


def _add_memory_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory", action="store_true",
        help="also report the simulated device-memory footprint",
    )
    parser.add_argument(
        "--memory-budget-gb", type=float, default=None, metavar="GIB",
        help="what-if memory pool in GiB for --memory (default: device capacity)",
    )


def _budget_bytes(budget_gb: Optional[float]) -> Optional[int]:
    return int(budget_gb * (1 << 30)) if budget_gb is not None else None


def _reject_orphan_flag(args: argparse.Namespace) -> Optional[str]:
    """Catch dependent flags whose enabling flag is absent — they would
    otherwise be silently ignored (usage error, exit 2)."""
    if getattr(args, "memory_budget_gb", None) is not None and not getattr(args, "memory", False):
        return "--memory-budget-gb requires --memory"
    if getattr(args, "timeline", False) and not getattr(args, "json", False):
        return "--timeline only affects --json output; pass --json too"
    if getattr(args, "profile", False):
        if getattr(args, "cache", None) is not None:
            return "--profile replays sequentially through the session API; drop --cache"
        if getattr(args, "workers", None) is not None:
            return "--profile replays sequentially through the session API; drop --workers"
    return None


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_list_traces(args: argparse.Namespace) -> int:
    repository = TraceRepository(args.repo)
    records = repository.discover()
    if args.json:
        print(serialize.dumps(serialize.trace_list_payload(repository)))
        return 0
    headers = ["name", "workload", "nodes", "operators", "world_size", "digest"]
    rows = [
        [record.name, record.workload or "-", record.num_nodes, record.num_operators,
         record.world_size, record.digest[:12]]
        for record in records
    ]
    print(format_table(headers, rows, title=f"Traces in {repository.root}"))
    if repository.invalid:
        print(f"\nskipped {len(repository.invalid)} non-trace file(s):")
        for path, reason in sorted(repository.invalid.items()):
            print(f"  {path}: {reason}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.profile:
        # Profiling hooks attach per session, so profiled replays run
        # sequentially through the api facade — same flow as `profile`.
        return _cmd_profile(args)
    spec = SweepSpec(
        traces=args.trace,
        devices=[args.device],
        base=ReplayConfig(iterations=args.iterations, warmup_iterations=args.warmup),
    )
    return _run_sweep(args, spec)


def _cmd_replay_dist(args: argparse.Namespace) -> int:
    from repro.bench.aggregate import format_cluster_report
    from repro.cluster.engine import ClusterMatchError, ClusterReplayError

    session = (
        api.replay_cluster(args.trace_dir)
        .on(args.device)
        .iterations(args.iterations, warmup=args.warmup)
        .timeout(args.timeout)
    )
    if args.world is not None:
        session.world(args.world)
    if args.topology is not None:
        session.topology(args.topology)
    if args.memory:
        session.with_memory(budget=_budget_bytes(args.memory_budget_gb))
    if args.trace_out:
        session.with_telemetry()
    try:
        report = session.run()
    except (ClusterMatchError, ClusterReplayError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.trace_out:
        path = session.export_trace(args.trace_out)
        print(f"telemetry timeline written to {path}", file=sys.stderr)
    if args.json:
        print(serialize.dumps(serialize.cluster_payload(report)))
    else:
        print(format_cluster_report(report))
        if report.has_memory:
            print()
            print(_format_cluster_memory(report))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.analyze_command == "critical-path":
        return _cmd_analyze_critical_path(args)
    if args.analyze_command == "diff":
        return _cmd_analyze_diff(args)
    return _cmd_analyze_regressions(args)


def _cmd_analyze_critical_path(args: argparse.Namespace) -> int:
    from repro.cluster.engine import ClusterMatchError, ClusterReplayError
    from repro.insights import format_critical_path

    session = (
        api.replay_cluster(args.trace_dir)
        .on(args.device)
        .iterations(args.iterations, warmup=args.warmup)
        .with_telemetry()
    )
    if args.world is not None:
        session.world(args.world)
    if args.topology is not None:
        session.topology(args.topology)
    try:
        session.run()
    except (ClusterMatchError, ClusterReplayError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    insights = session.analyze(
        top=args.top, straggler_threshold_pct=args.straggler_threshold
    )
    if args.json:
        print(serialize.dumps(serialize.critical_path_payload(insights)))
    else:
        print(format_critical_path(insights, top=args.top))
    return 0


def _cmd_analyze_diff(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.insights import RunProfile, diff_runs, format_diff

    profiles = []
    for path_arg in (args.baseline, args.current):
        path = Path(path_arg)
        try:
            payload = _json.loads(path.read_text())
            profiles.append(RunProfile.from_any(payload, label=path.name))
        except (OSError, ValueError) as error:
            print(f"error: {path_arg}: {error}", file=sys.stderr)
            return 1
    report = diff_runs(profiles[0], profiles[1], threshold_pct=args.threshold)
    if args.json:
        print(serialize.dumps(serialize.diff_payload(report)))
    else:
        print(format_diff(report, top=args.top))
    return 0


def _cmd_analyze_regressions(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.insights import (
        DEFAULT_DROP_THRESHOLD_PCT,
        TrajectoryStore,
        check_regressions,
        default_bench_path,
        default_history_path,
        format_regressions,
    )

    bench_path = Path(args.bench) if args.bench else default_bench_path()
    try:
        bench = _json.loads(bench_path.read_text())
    except (OSError, ValueError) as error:
        print(f"error: {bench_path}: {error}", file=sys.stderr)
        return 1
    history_path = Path(args.history) if args.history else default_history_path()
    store = TrajectoryStore(history_path)
    threshold = (
        DEFAULT_DROP_THRESHOLD_PCT if args.threshold is None else args.threshold
    )
    report = check_regressions(
        bench, history=store.history(), drop_threshold_pct=threshold
    )
    if args.record:
        store.append(bench, meta={"bench_path": str(bench_path)})
    if args.json:
        print(serialize.dumps(serialize.regression_payload(report)))
    else:
        print(format_regressions(report))
    return 0 if report.ok else 1


def _cmd_memory_report(args: argparse.Namespace) -> int:
    try:
        reports = _memory_reports(
            args.repo, args.trace, args.device, _budget_bytes(args.budget_gb)
        )
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(serialize.dumps(serialize.memory_payload(reports, include_timeline=args.timeline)))
    else:
        print(_format_memory_summary(reports, args.device))
        for report in reports.values():
            print()
            print(format_memory_report(report))
    return 1 if any(not report.fits for report in reports.values()) else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        reports = _profile_traces(
            args.repo,
            args.trace,
            args.device,
            iterations=args.iterations,
            warmup=args.warmup,
            vectorized=not getattr(args, "scalar", False),
        )
    except (ValueError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(serialize.dumps(serialize.profile_payload(reports)))
    else:
        top = getattr(args, "top", 20)
        for index, report in enumerate(reports.values()):
            if index:
                print()
            print(report.format_table(top=top))
    return 0


def _profile_traces(
    repo: str,
    trace_names: Optional[Sequence[str]],
    device: str,
    iterations: int,
    warmup: int,
    vectorized: bool,
):
    """Replay the named repository traces with a profiling hook attached."""
    repository = TraceRepository(repo)
    records = {record.name: record for record in repository.discover()}
    names = list(trace_names) if trace_names else sorted(records)
    unknown = sorted(set(names) - set(records))
    if unknown:
        raise ValueError(
            f"trace(s) {unknown} not found in {repo!r} (known: {sorted(records)})"
        )
    config = ReplayConfig(
        device=device,
        iterations=iterations,
        warmup_iterations=warmup,
        vectorized=vectorized,
    )
    reports = {}
    for name in names:
        result = api.replay(repository.load(name)).using(config).with_profiling().run()
        report = result.profile_report
        if not report.trace_name:
            report.trace_name = name
        reports[name] = report
    return reports


def _cmd_version(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        print(serialize.dumps(serialize.version_payload(__version__)))
    else:
        print(f"repro {__version__}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    axes = {}
    if args.power_limit:
        axes["power_limit_w"] = list(args.power_limit)
    if args.comm_delay_scale:
        axes["comm_delay_scale"] = list(args.comm_delay_scale)
    spec = SweepSpec(
        traces=args.trace,
        devices=args.device or ["A100"],
        axes=axes,
        base=ReplayConfig(iterations=args.iterations, warmup_iterations=args.warmup),
    )
    return _run_sweep(args, spec)


def _run_sweep(args: argparse.Namespace, spec: SweepSpec) -> int:
    """Execute a sweep spec through the :mod:`repro.api` facade."""
    try:
        result = api.sweep(
            args.repo,
            spec=spec,
            cache_dir=args.cache,
            workers=args.workers,
            backend=args.backend,
        )
        memory_reports: Optional[Dict[str, MemoryReport]] = None
        if getattr(args, "memory", False):
            replayed = sorted({job_result.job.trace_name for job_result in result.batch})
            memory_reports = _memory_reports(
                args.repo, replayed or None, args.device,
                _budget_bytes(args.memory_budget_gb),
            )
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    batch = result.batch
    if args.json:
        print(serialize.dumps(serialize.batch_payload(batch, memory_reports)))
    else:
        print(format_batch_report(batch))
        if len({job_result.job.config.device for job_result in batch}) > 1:
            print()
            print(format_device_aggregate(batch))
        print()
        print(cache_summary_line(batch))
        if memory_reports is not None:
            print()
            print(_format_memory_summary(memory_reports, args.device))
    return 1 if batch.error_count else 0


# ----------------------------------------------------------------------
# Memory helpers
# ----------------------------------------------------------------------
def _memory_reports(
    repo: str,
    trace_names: Optional[Sequence[str]],
    device: str,
    budget_bytes: Optional[int],
) -> Dict[str, MemoryReport]:
    """Simulate the memory footprint of the named repository traces."""
    repository = TraceRepository(repo)
    records = {record.name: record for record in repository.discover()}
    names = list(trace_names) if trace_names else sorted(records)
    unknown = sorted(set(names) - set(records))
    if unknown:
        # ValueError, not KeyError: str(KeyError) repr-quotes the message.
        raise ValueError(
            f"trace(s) {unknown} not found in {repo!r} (known: {sorted(records)})"
        )
    reports: Dict[str, MemoryReport] = {}
    for name in names:
        trace = repository.load(name)
        reports[name] = simulate_memory(
            trace, device=device, budget=budget_bytes, trace_name=name
        )
    return reports


def _format_memory_summary(reports: Dict[str, MemoryReport], device: str) -> str:
    """One compact row per trace (full per-trace tables follow separately)."""
    rows = [
        [
            name,
            format_bytes(report.peak_allocated_bytes),
            format_bytes(report.peak_reserved_bytes),
            format_bytes(report.budget_bytes),
            "OK" if report.fits else f"OOM at {report.oom.op_name}",
        ]
        for name, report in reports.items()
    ]
    return format_table(
        ["trace", "peak_alloc", "peak_reserved", "budget", "status"],
        rows,
        title=f"Simulated device memory on {device}",
    )


def _format_cluster_memory(report) -> str:
    """Per-rank memory rows plus the max-rank summary for replay-dist."""
    rows = [
        [
            rank.rank,
            format_bytes(rank.memory.peak_allocated_bytes),
            format_bytes(rank.memory.peak_reserved_bytes),
            "OK" if rank.memory.fits else f"OOM at {rank.memory.oom.op_name}",
        ]
        for rank in report.ranks
        if rank.memory is not None
    ]
    table = format_table(
        ["rank", "peak_alloc", "peak_reserved", "status"],
        rows,
        title="Per-rank simulated device memory",
    )
    summary = (
        f"fleet peak {format_bytes(report.peak_allocated_bytes)} "
        f"on rank {report.max_memory_rank}"
    )
    if report.oom_ranks:
        summary += f"; OOM rank(s): {report.oom_ranks}"
    return f"{table}\n{summary}"


# ----------------------------------------------------------------------
# Daemon subcommands
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.daemon.daemon import ReplayDaemon
    from repro.daemon.server import DEFAULT_HOST, DEFAULT_PORT, DaemonServer

    daemon = ReplayDaemon(
        args.state_dir,
        cache_dir=args.cache,
        cache_max_entries=args.cache_max_entries,
        cache_ttl_s=args.cache_ttl,
        workers=args.workers,
    )
    server = DaemonServer(
        daemon,
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        verbose=args.verbose,
    )
    host, port = server.address
    print(f"repro daemon listening on http://{host}:{port} "
          f"(state: {daemon.state_dir}, workers: {args.workers})", file=sys.stderr)
    server.serve_forever()
    return 0


def _daemon_client(args: argparse.Namespace):
    from repro.daemon.client import DaemonClient

    return DaemonClient(url=args.url, client_id=args.client)


def _submit_payload(args: argparse.Namespace) -> dict:
    """Build the JobSpec payload from the submit sub-subcommand's flags —
    the same shapes the inline ``sweep`` / ``replay-dist`` paths use."""
    base = {"iterations": args.iterations, "warmup_iterations": args.warmup}
    if args.job_kind == "sweep":
        axes = {}
        if args.power_limit:
            axes["power_limit_w"] = list(args.power_limit)
        if args.comm_delay_scale:
            axes["comm_delay_scale"] = list(args.comm_delay_scale)
        return {
            "repo": args.repo,
            "traces": args.trace,
            "devices": args.device or ["A100"],
            "axes": axes,
            "base": base,
        }
    return {
        "trace_dir": args.trace_dir,
        "config": dict(base, device=args.device),
    }


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.daemon.client import DaemonClientError

    client = _daemon_client(args)
    try:
        status = client.submit(args.job_kind, _submit_payload(args), priority=args.priority)
        if args.wait:
            status = client.wait(status["id"])
        print(serialize.dumps(status))
    except (DaemonClientError, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 1 if status.get("state") == "failed" else 0


def _cmd_daemon_verb(args: argparse.Namespace) -> int:
    """status/result/snapshot/pause/resume/cancel — thin API mirrors."""
    from repro.daemon.client import DaemonClientError

    client = _daemon_client(args)
    try:
        if args.command == "status":
            if args.job_id is None:
                payload = client.list_jobs(all_owners=args.all)
            else:
                payload = client.status(args.job_id)
        else:
            payload = getattr(client, args.command)(args.job_id)
    except DaemonClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(serialize.dumps(payload))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    usage_error = _reject_orphan_flag(args)
    if usage_error is not None:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    handlers = {
        "list-traces": _cmd_list_traces,
        "replay": _cmd_replay,
        "replay-dist": _cmd_replay_dist,
        "memory-report": _cmd_memory_report,
        "sweep": _cmd_sweep,
        "profile": _cmd_profile,
        "version": _cmd_version,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_daemon_verb,
        "result": _cmd_daemon_verb,
        "snapshot": _cmd_daemon_verb,
        "pause": _cmd_daemon_verb,
        "resume": _cmd_daemon_verb,
        "cancel": _cmd_daemon_verb,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
