"""``repro.api`` — the stable, composable public facade.

Everything a consumer of this package needs for the paper's capture →
replay → compare workflow (and the batch/sweep workflows on top of it) is
reachable from here, without touching core internals:

Replay a trace fluently::

    import repro.api as api

    result = (
        api.replay(trace)                      # ExecutionTrace, CaptureResult, or path
        .on("A100")                            # target device
        .select(categories=("aten",))          # operator filter
        .iterations(5, warmup=1)               # measurement plan
        .hook(api.ProgressHook())              # observe stages / ops
        .run()                                 # -> ReplayResult
    )

Capture and compare a workload::

    capture = api.capture(workload, device="A100")
    replay = api.replay(capture).iterations(3).run()
    row = api.compare(workload, device="A100")     # one Table-4 row

Sweep a trace repository::

    sweep = api.sweep("traces/", devices=["A100", "NewPlatform"],
                      axes={"power_limit_w": [None, 250.0]},
                      cache_dir=".repro-cache")

Co-replay a fleet of per-rank traces (multi-rank distributed replay)::

    report = (
        api.replay_cluster("traces/rm_4rank/")    # or a list of captures
        .world(64).on("A100")
        .configure_rank(0, device="V100")         # model a straggler
        .run()                                    # -> ClusterReport
    )

Customisation happens through the stage pipeline: stages
(:class:`SelectStage` … :class:`MeasureStage`) are first-class objects a
session can insert, replace or skip, and :class:`ReplayHook` observers
receive lifecycle events (``on_stage_start/end``, ``on_op_replayed``,
``on_error``).  See ``docs/api.md`` for the full protocol.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.api.hooks import (
    ErrorCollectorHook,
    MemoryHook,
    MetricsTapHook,
    OpTraceHook,
    ProgressHook,
    StageTimingHook,
)
from repro.api.cluster import ClusterSession, FleetSource
from repro.api.session import ReplaySession, ReplaySource
from repro.cluster.engine import ClusterReplayer, ClusterReport, RankReport
from repro.bench.harness import (
    CaptureResult,
    ComparisonResult,
    capture_workload,
    compare_workload,
)
from repro.core.pipeline import (
    AssignStreamsStage,
    ExecuteStage,
    InitCommsStage,
    MaterializeTensorsStage,
    MeasureStage,
    ReconstructStage,
    ReplayContext,
    ReplayHook,
    ReplayPipeline,
    ReplayPipelineError,
    ReplayStage,
    SelectStage,
    TrackMemoryStage,
)
from repro.memory import (
    MemoryReport,
    OOMEvent,
    SimulatedOOMError,
    check_device_fit,
    format_memory_report,
    simulate_memory,
)
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, ReplayResult, ReplayResultSummary
from repro.insights import (
    CriticalPathReport,
    DiffReport,
    RunProfile,
    analyze_critical_path,
    analyze_replay_result,
    diff_runs,
)
from repro.profiling import ProfileHook, ProfileReport
from repro.telemetry import (
    MetricsRegistry,
    Span,
    TelemetryHook,
    Tracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.service.cache import ResultCache
from repro.service.repository import TraceRepository
from repro.service.sweep import SweepResult, SweepRunner, SweepSpec
from repro.torchsim.profiler import ProfilerTrace
from repro.torchsim.runtime import Runtime
from repro.workloads.base import Workload


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def replay(
    source: ReplaySource,
    profiler_trace: Optional[ProfilerTrace] = None,
    config: Optional[ReplayConfig] = None,
    support: Optional[ReplaySupport] = None,
    pipeline: Optional[ReplayPipeline] = None,
) -> ReplaySession:
    """Start a fluent replay session for a trace, capture, or trace path.

    Nothing executes until ``.run()`` / ``.summarize()`` on the returned
    :class:`ReplaySession`.  When ``source`` is a
    :class:`~repro.bench.harness.CaptureResult`, its profiler trace and
    capture device seed the session automatically.
    """
    return ReplaySession(
        source,
        profiler_trace=profiler_trace,
        config=config,
        support=support,
        pipeline=pipeline,
    )


def replay_cluster(
    fleet: FleetSource,
    config: Optional[ReplayConfig] = None,
    support: Optional[ReplaySupport] = None,
) -> ClusterSession:
    """Start a fluent multi-rank co-replay session for a trace fleet.

    ``fleet`` is a directory of serialised per-rank traces, or a sequence
    of traces / paths / ``RankCapture`` objects (one per rank, captured
    from the same iteration so collectives match across ranks).  Nothing
    executes until ``.run()`` on the returned :class:`ClusterSession`::

        report = api.replay_cluster(captures).world(64).on("A100").run()
        critical_path = report.critical_path_us
        exposed = report.mean_exposed_comm_us
    """
    return ClusterSession(fleet, config=config, support=support)


def capture(
    workload: Workload,
    device: str = "A100",
    warmup_iterations: int = 1,
    power_limit_w: Optional[float] = None,
    runtime: Optional[Runtime] = None,
) -> CaptureResult:
    """Capture one instrumented iteration of ``workload`` (Section 4.1).

    The returned capture feeds straight into :func:`replay`.
    """
    return capture_workload(
        workload,
        device=device,
        warmup_iterations=warmup_iterations,
        power_limit_w=power_limit_w,
        runtime=runtime,
    )


def compare(
    workload: Workload,
    device: str = "A100",
    replay_iterations: int = 1,
    power_limit_w: Optional[float] = None,
    support: Optional[ReplaySupport] = None,
    config: Optional[ReplayConfig] = None,
    capture_result: Optional[CaptureResult] = None,
) -> ComparisonResult:
    """Capture, replay and compare ``workload`` — one Table-4 row."""
    return compare_workload(
        workload,
        device=device,
        replay_iterations=replay_iterations,
        power_limit_w=power_limit_w,
        support=support,
        config=config,
        capture=capture_result,
    )


def sweep(
    repo: Union[str, Path, TraceRepository],
    traces: Optional[Sequence[str]] = None,
    devices: Sequence[str] = ("A100",),
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    base: Optional[ReplayConfig] = None,
    spec: Optional[SweepSpec] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
    backend: str = "thread",
) -> SweepResult:
    """Replay a trace repository across devices and config axes, cached.

    Either pass a ready :class:`SweepSpec` via ``spec=`` or let the
    keyword arguments build one.  Every replay runs through the stage
    pipeline inside a :class:`~repro.service.batch.BatchReplayer` worker
    pool, consulting (and filling) the result cache when ``cache_dir`` is
    given.
    """
    repository = repo if isinstance(repo, TraceRepository) else TraceRepository(repo)
    if spec is not None:
        overrides = {
            "traces": traces is not None,
            "devices": tuple(devices) != ("A100",),
            "axes": bool(axes),
            "base": base is not None,
        }
        clashing = sorted(name for name, given in overrides.items() if given)
        if clashing:
            raise ValueError(
                f"pass either spec= or the spec-building arguments {clashing}, not both "
                "(a ready spec is used as-is; the keyword values would be silently lost)"
            )
    if spec is None:
        spec = SweepSpec(
            traces=list(traces) if traces is not None else None,
            devices=list(devices),
            axes=dict(axes or {}),
            base=base if base is not None else ReplayConfig(),
        )
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    runner = SweepRunner(repository, cache=cache, max_workers=workers, backend=backend)
    return runner.run(spec)


__all__ = [
    # entry points
    "replay",
    "replay_cluster",
    "capture",
    "compare",
    "sweep",
    # cluster replay
    "ClusterSession",
    "ClusterReplayer",
    "ClusterReport",
    "RankReport",
    # session / pipeline protocol
    "ReplaySession",
    "ReplayPipeline",
    "ReplayPipelineError",
    "ReplayContext",
    "ReplayStage",
    "ReplayHook",
    "SelectStage",
    "ReconstructStage",
    "MaterializeTensorsStage",
    "AssignStreamsStage",
    "InitCommsStage",
    "ExecuteStage",
    "MeasureStage",
    "TrackMemoryStage",
    # memory simulation
    "MemoryReport",
    "OOMEvent",
    "SimulatedOOMError",
    "simulate_memory",
    "check_device_fit",
    "format_memory_report",
    # ready-made hooks
    "ProgressHook",
    "OpTraceHook",
    "StageTimingHook",
    "MetricsTapHook",
    "ErrorCollectorHook",
    "MemoryHook",
    # replay-engine profiling
    "ProfileHook",
    "ProfileReport",
    # telemetry (tracing / metrics / timeline export)
    "Tracer",
    "Span",
    "TelemetryHook",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    # insights (critical path / diff / regression analyses)
    "CriticalPathReport",
    "DiffReport",
    "RunProfile",
    "analyze_critical_path",
    "analyze_replay_result",
    "diff_runs",
    # configuration / results
    "ReplayConfig",
    "ReplayResult",
    "ReplayResultSummary",
    "ReplaySupport",
    "CaptureResult",
    "ComparisonResult",
    "SweepSpec",
    "SweepResult",
]
