"""The fluent cluster-replay session behind :func:`repro.api.replay_cluster`.

A :class:`ClusterSession` accumulates *what* to co-replay (a fleet of
per-rank traces, captures, paths, or a directory of serialised traces) and
*how* (device, priced world size, iterations, interconnect, per-rank
straggler overrides), then hands everything to the
:class:`~repro.cluster.engine.ClusterReplayer`::

    report = (
        api.replay_cluster("traces/rm_64rank/")
        .world(64)
        .on("A100")
        .iterations(3, warmup=1)
        .configure_rank(0, device="V100")    # model a straggler
        .run()
    )
    critical_path, straggler = report.critical_path_us, report.straggler_rank

Every mutator returns ``self``; nothing executes until :meth:`run`.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.cluster.engine import ClusterReplayer, ClusterReport, TraceLike
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig
from repro.hardware.network import InterconnectSpec

#: What :func:`repro.api.replay_cluster` accepts: a directory of serialised
#: traces, or an explicit sequence of per-rank sources.
FleetSource = Union[str, Path, Sequence[TraceLike]]


class ClusterSession:
    """Fluent builder for one multi-rank co-replay."""

    def __init__(
        self,
        fleet: FleetSource,
        config: Optional[ReplayConfig] = None,
        support: Optional[ReplaySupport] = None,
    ) -> None:
        self._fleet = fleet
        self._config = config if config is not None else ReplayConfig()
        self._support = support
        self._rank_overrides: Dict[int, Dict[str, Any]] = {}
        self._backend = "thread"
        self._timeout_s = 60.0
        self._strict_match = True
        self._track_memory = False
        self._memory_budget: Optional[Any] = None
        self._profile = False
        self._profile_at_exit = False
        self._tracer: Optional[Any] = None
        self._last_report: Optional[ClusterReport] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def config(self) -> ReplayConfig:
        """The base config every replica runs under (read-only snapshot)."""
        return self._config

    def using(self, config: ReplayConfig) -> "ClusterSession":
        """Replace the whole base config (later field mutators still apply)."""
        self._config = config
        return self

    def configure(self, **fields: Any) -> "ClusterSession":
        """Override arbitrary :class:`ReplayConfig` fields for every rank."""
        self._config = dataclass_replace(self._config, **fields)
        return self

    def on(self, device: str) -> "ClusterSession":
        """Target device spec for every replica (``"A100"``, ``"V100"`` …)."""
        return self.configure(device=device)

    def world(self, world_size: int) -> "ClusterSession":
        """World size the collectives are priced at.

        Defaults to the world size recorded in the trace metadata; override
        it to re-price a fleet as if it ran at a different scale (the
        scale-down emulation of Section 7.3, fleet edition).
        """
        return self.configure(world_size=world_size)

    def iterations(self, count: int, warmup: Optional[int] = None) -> "ClusterSession":
        """Measured iteration count (and optionally the warm-up count)."""
        overrides: dict = {"iterations": count}
        if warmup is not None:
            overrides["warmup_iterations"] = warmup
        return self.configure(**overrides)

    def interconnect(self, spec: InterconnectSpec) -> "ClusterSession":
        """Cluster-fabric description pricing every matched collective."""
        return self.configure(interconnect=spec)

    def topology(self, name: Optional[str]) -> "ClusterSession":
        """Hierarchical-fabric preset pricing the collectives
        (``"nvlink-island"``, ``"rail-spine"``; ``"flat"``/``None`` keep
        the classic two-level model).  Combine with :meth:`world` to ask
        what a fleet costs at, say, 1024 ranks on a rail/spine fabric."""
        return self.configure(topology=None if name == "flat" else name)

    def comm_delay(self, scale: float = 1.0, extra_us: float = 0.0) -> "ClusterSession":
        """Scale/offset collective durations (scale-down emulation knobs)."""
        return self.configure(comm_delay_scale=scale, comm_extra_delay_us=extra_us)

    def configure_rank(self, rank: int, **fields: Any) -> "ClusterSession":
        """Override config fields for one replica only — the straggler
        modelling knob (e.g. ``configure_rank(0, device="V100")``)."""
        self._rank_overrides.setdefault(int(rank), {}).update(fields)
        return self

    def with_support(self, support: ReplaySupport) -> "ClusterSession":
        """Replay-support policy (custom-operator registrations)."""
        self._support = support
        return self

    def with_memory(self, budget: Optional[Any] = None) -> "ClusterSession":
        """Track every replica's simulated device-memory footprint.

        The resulting :class:`~repro.cluster.engine.ClusterReport` carries
        one :class:`~repro.memory.report.MemoryReport` per rank plus the
        max-rank summary (``peak_allocated_bytes``, ``max_memory_rank``,
        ``oom_ranks``).  ``budget`` bounds the simulated pool per rank
        (bytes or a ``"16GB"`` string); over-budget ranks record a
        structured OOM on their report rather than aborting the fleet.
        """
        self._track_memory = True
        self._memory_budget = budget
        return self

    def with_profiling(self, report_at_exit: bool = False) -> "ClusterSession":
        """Profile every replica's replay engine (host wall time per op).

        Each rank runs with its own :class:`~repro.profiling.ProfileHook`
        (so per-rank attribution stays separate; under the event engine the
        scheduler re-anchors each hook via ``on_resume`` whenever it
        switches ranks, so interleaving does not misattribute wall time);
        the aggregated per-rank
        :class:`~repro.profiling.ProfileReport` objects are available as
        ``report.rank_report(r).profile`` / ``report.profile_reports``.
        Timing results and cache digests are unaffected.
        """
        self._profile = True
        self._profile_at_exit = report_at_exit
        return self

    def with_telemetry(
        self, tracer: Optional[Any] = None, enabled: bool = True
    ) -> "ClusterSession":
        """Trace the co-replay on the unified telemetry timeline.

        Every replica gets a per-rank
        :class:`~repro.telemetry.TelemetryHook` (stage spans), the event
        scheduler emits park/wake/rendezvous markers, and after
        :meth:`run` the fleet's virtual-time Gantt — per-rank
        compute / comms / exposed-comms / stall lanes — is recorded onto
        ``tracer`` (a fresh :class:`~repro.telemetry.Tracer` when none is
        given).  :meth:`export_trace` renders it as Chrome-trace JSON.
        Purely observational: reports and cache digests are byte-identical
        with telemetry on, disabled (``enabled=False``) or absent.
        """
        from repro.telemetry import Tracer

        self._tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        return self

    @property
    def tracer(self) -> Optional[Any]:
        """The session's :class:`~repro.telemetry.Tracer` (set by
        :meth:`with_telemetry`), or ``None``."""
        return self._tracer

    def export_trace(self, path: Union[str, Path]) -> Path:
        """Write the telemetry timeline as Chrome-trace JSON to ``path``.

        Requires :meth:`with_telemetry` and a completed :meth:`run`.
        """
        if self._tracer is None:
            raise RuntimeError(
                "no telemetry on this session — call .with_telemetry() before .run()"
            )
        from repro.telemetry import write_chrome_trace

        return write_chrome_trace(self._tracer, Path(path))

    # ------------------------------------------------------------------
    # Execution policy
    # ------------------------------------------------------------------
    def backend(self, backend: str) -> "ClusterSession":
        """Worker backend: ``"thread"`` (default) or ``"serial"`` (one
        replica only; kept as a single-replica assertion — the event
        scheduler is single-threaded either way)."""
        self._backend = backend
        return self

    def timeout(self, seconds: float) -> "ClusterSession":
        """Accepted for compatibility; the event scheduler detects
        unresolvable fleets structurally, so no wall-clock guard runs."""
        self._timeout_s = seconds
        return self

    def lenient_match(self) -> "ClusterSession":
        """Attempt the replay even when the pre-flight collective match
        reports unmatched collectives (they then fail at rendezvous time)."""
        self._strict_match = False
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ClusterReport:
        """Pre-flight-match, co-replay the fleet, and aggregate the report."""
        profile_hook_factory = None
        if self._profile:
            from repro.profiling import ProfileHook

            at_exit = self._profile_at_exit
            shared_tracer = self._tracer

            def profile_hook_factory(rank: int) -> ProfileHook:
                return ProfileHook(report_at_exit=at_exit, tracer=shared_tracer)

        replayer = ClusterReplayer(
            config=self._config,
            backend=self._backend,
            timeout_s=self._timeout_s,
            strict_match=self._strict_match,
            support=self._support,
            track_memory=self._track_memory,
            memory_budget=self._memory_budget,
            profile_hook_factory=profile_hook_factory,
        )
        replayer.tracer = self._tracer
        fleet = self._fleet
        if isinstance(fleet, (str, Path)):
            fleet = ClusterReplayer.load_fleet(fleet)
        report = replayer.replay(fleet, rank_overrides=self._rank_overrides or None)
        self._last_report = report
        return report

    def analyze(
        self,
        top: int = 5,
        straggler_threshold_pct: Optional[float] = None,
    ) -> Any:
        """Critical-path attribution of the last :meth:`run`.

        Returns a :class:`~repro.insights.CriticalPathReport`: per-rank
        compute/comm/stall decomposition with overlap scores, straggler
        detection, and — when the session ran with telemetry — the
        dominant ops and collectives from the virtual-time Gantt slices.
        """
        if self._last_report is None:
            raise RuntimeError("nothing to analyze — call .run() first")
        from repro.insights import analyze_critical_path
        from repro.insights.critical_path import DEFAULT_STRAGGLER_THRESHOLD_PCT

        return analyze_critical_path(
            self._last_report,
            trace=self._tracer,
            top=top,
            straggler_threshold_pct=(
                DEFAULT_STRAGGLER_THRESHOLD_PCT
                if straggler_threshold_pct is None
                else straggler_threshold_pct
            ),
        )
