"""The fluent replay session builder behind :func:`repro.api.replay`.

A :class:`ReplaySession` accumulates *what* to replay (a trace, a capture,
or a path to a serialised trace), *how* to replay it (a
:class:`~repro.core.replayer.ReplayConfig`, built up field by field), and
*who gets to watch or change it* (hooks, stage edits), then runs the stage
pipeline::

    result = (
        api.replay(trace)
        .on("A100")
        .select(categories=("aten",))
        .iterations(5, warmup=1)
        .hook(ProgressHook())
        .run()
    )

Every mutator returns ``self`` so calls chain; nothing executes until
:meth:`run` (or :meth:`summarize`).  A session owns a private pipeline
clone, so stage edits never leak into other sessions.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.core.pipeline import ReplayContext, ReplayHook, ReplayPipeline, ReplayStage
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, ReplayResult, ReplayResultSummary
from repro.et.trace import ExecutionTrace
from repro.torchsim.profiler import ProfilerTrace
from repro.torchsim.runtime import Runtime

#: What :func:`repro.api.replay` accepts as a replay source.
ReplaySource = Union[ExecutionTrace, str, Path, "CaptureResult"]  # noqa: F821


class ReplaySession:
    """Fluent builder for one replay through the stage pipeline."""

    def __init__(
        self,
        source: ReplaySource,
        profiler_trace: Optional[ProfilerTrace] = None,
        config: Optional[ReplayConfig] = None,
        support: Optional[ReplaySupport] = None,
        pipeline: Optional[ReplayPipeline] = None,
    ) -> None:
        # Paths are resolved lazily (nothing is read until run time); other
        # sources are normalised now so type errors fail fast.
        self._trace_path: Optional[Path] = None
        if isinstance(source, (str, Path)):
            self._trace_path = Path(source)
            trace, inferred_profiler, inferred_device = None, None, None
        else:
            trace, inferred_profiler, inferred_device = _resolve_source(source)
        self._trace = trace
        self._profiler_trace = profiler_trace if profiler_trace is not None else inferred_profiler
        if config is None:
            config = ReplayConfig(device=inferred_device) if inferred_device else ReplayConfig()
        self._config = config
        self._support = support
        self._pipeline = (pipeline if pipeline is not None else ReplayPipeline.default()).clone()
        self._runtime: Optional[Runtime] = None
        self._profile_hook: Optional[Any] = None
        self._tracer: Optional[Any] = None
        self._last_result: Optional[ReplayResult] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def config(self) -> ReplayConfig:
        """The config the session will replay under (read-only snapshot)."""
        return self._config

    def using(self, config: ReplayConfig) -> "ReplaySession":
        """Replace the whole config (later field mutators still apply)."""
        self._config = config
        return self

    def configure(self, **fields: Any) -> "ReplaySession":
        """Override arbitrary :class:`ReplayConfig` fields by name.

        Unknown field names raise ``TypeError`` — a typo never silently
        vanishes into a default config.
        """
        self._config = dataclass_replace(self._config, **fields)
        return self

    def on(self, device: str) -> "ReplaySession":
        """Target device spec (``"A100"``, ``"V100"``, ``"NewPlatform"`` …)."""
        return self.configure(device=device)

    def select(
        self,
        categories: Optional[Sequence[str]] = None,
        subtrace: Optional[str] = None,
    ) -> "ReplaySession":
        """Restrict replay to operator categories and/or a subtrace label."""
        overrides: dict = {}
        if categories is not None:
            overrides["categories"] = tuple(categories)
        if subtrace is not None:
            overrides["subtrace_label"] = subtrace
        return self.configure(**overrides)

    def iterations(self, count: int, warmup: Optional[int] = None) -> "ReplaySession":
        """Measured iteration count (and optionally the warm-up count)."""
        overrides: dict = {"iterations": count}
        if warmup is not None:
            overrides["warmup_iterations"] = warmup
        return self.configure(**overrides)

    def power_limit(self, watts: Optional[float]) -> "ReplaySession":
        """GPU power cap in Watts (``None`` for the device's TDP)."""
        return self.configure(power_limit_w=watts)

    def with_support(self, support: ReplaySupport) -> "ReplaySession":
        """Replay-support policy (custom-operator registrations)."""
        self._support = support
        return self

    def with_profiler(self, profiler_trace: Optional[ProfilerTrace]) -> "ReplaySession":
        """Profiler trace guiding stream placement (``None`` to drop it)."""
        self._profiler_trace = profiler_trace
        return self

    def with_runtime(self, runtime: Runtime) -> "ReplaySession":
        """Inject a pre-built runtime instead of letting the init-comms
        stage create one (advanced; e.g. to share a simulated cluster)."""
        self._runtime = runtime
        return self

    def with_memory(
        self,
        budget: Optional[Any] = None,
        on_oom: str = "record",
        keep_timeline: bool = True,
    ) -> "ReplaySession":
        """Track the replay's simulated device-memory footprint.

        Inserts the ``track-memory`` stage (after stream assignment, so
        tensors land on their recorded streams); the resulting
        :class:`~repro.memory.report.MemoryReport` is available as
        ``result.memory_report`` after :meth:`run`.  ``budget`` caps the
        simulated pool below the device's capacity (bytes or a ``"16GB"``
        string) for OOM what-if replays; ``on_oom="raise"`` aborts the
        replay with :class:`~repro.memory.report.SimulatedOOMError` when
        the trace does not fit.  Timing results and cache digests are
        unaffected either way.
        """
        from repro.core.pipeline import TrackMemoryStage

        stage = TrackMemoryStage(budget=budget, on_oom=on_oom, keep_timeline=keep_timeline)
        if TrackMemoryStage.name in self._pipeline.stage_names():
            self._pipeline.replace(TrackMemoryStage.name, stage)
        else:
            self._pipeline.insert_after("assign-streams", stage)
        return self

    def with_profiling(
        self, hook: Optional[Any] = None, report_at_exit: bool = False
    ) -> "ReplaySession":
        """Profile the replay engine itself (host wall time per operator).

        Attaches a :class:`~repro.profiling.ProfileHook` to the session's
        pipeline; after :meth:`run` the aggregated
        :class:`~repro.profiling.ProfileReport` is available as
        ``result.profile_report``.  Profiling observes through the hook
        protocol only — replay results and cache digests are unchanged, and
        sessions without the hook pay zero per-op overhead.  Pass a
        pre-built ``hook`` to share or customise aggregation;
        ``report_at_exit=True`` prints the hot-first summary at interpreter
        shutdown (tinygrad-style).
        """
        from repro.profiling import ProfileHook

        self._profile_hook = (
            hook if hook is not None else ProfileHook(report_at_exit=report_at_exit)
        )
        if self._tracer is not None and getattr(self._profile_hook, "tracer", None) is None:
            self._profile_hook.tracer = self._tracer
        self._pipeline.add_hook(self._profile_hook)
        return self

    def with_telemetry(
        self, tracer: Optional[Any] = None, enabled: bool = True
    ) -> "ReplaySession":
        """Trace the replay on the unified telemetry timeline.

        Attaches a :class:`~repro.telemetry.TelemetryHook` recording one
        wall+virtual span per pipeline stage onto ``tracer`` (a fresh
        :class:`~repro.telemetry.Tracer` is created when none is given);
        after :meth:`run` the measured kernel launches are folded in as
        compute/comms/exposed-comms Gantt slices, and
        :meth:`export_trace` writes the whole thing as Chrome-trace JSON.
        Telemetry observes through the hook protocol only, so replay
        results and cache digests are byte-identical with it on, off
        (``enabled=False``) or absent — the disabled path costs one
        attribute read per callback.
        """
        from repro.telemetry import TelemetryHook, Tracer

        self._tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        if self._profile_hook is not None and getattr(self._profile_hook, "tracer", None) is None:
            self._profile_hook.tracer = self._tracer
        self._pipeline.add_hook(TelemetryHook(self._tracer))
        return self

    @property
    def tracer(self) -> Optional[Any]:
        """The session's :class:`~repro.telemetry.Tracer` (set by
        :meth:`with_telemetry`), or ``None``."""
        return self._tracer

    def export_trace(self, path: Union[str, Path]) -> Path:
        """Write the telemetry timeline as Chrome-trace JSON to ``path``.

        Requires :meth:`with_telemetry` and a completed :meth:`run`.
        """
        if self._tracer is None:
            raise RuntimeError(
                "no telemetry on this session — call .with_telemetry() before .run()"
            )
        from repro.telemetry import write_chrome_trace

        return write_chrome_trace(self._tracer, Path(path))

    # ------------------------------------------------------------------
    # Observation and stage composition
    # ------------------------------------------------------------------
    def hook(self, *hooks: ReplayHook) -> "ReplaySession":
        """Register lifecycle/per-op hooks on this session's pipeline."""
        for one in hooks:
            self._pipeline.add_hook(one)
        return self

    def insert_stage(
        self,
        stage: ReplayStage,
        before: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "ReplaySession":
        """Insert a custom stage relative to a named one."""
        if (before is None) == (after is None):
            raise ValueError("pass exactly one of before= / after=")
        if before is not None:
            self._pipeline.insert_before(before, stage)
        else:
            self._pipeline.insert_after(after, stage)
        return self

    def replace_stage(self, name: str, stage: ReplayStage) -> "ReplaySession":
        """Swap the named stage for a custom implementation."""
        self._pipeline.replace(name, stage)
        return self

    def without_stage(self, *names: str) -> "ReplaySession":
        """Drop the named stages.

        A pipeline without the measure stage produces no result — execute
        it with :meth:`run_context` (a dry build) rather than :meth:`run`.
        """
        self._pipeline.skip(*names)
        return self

    @property
    def pipeline(self) -> ReplayPipeline:
        """This session's private pipeline (for advanced composition)."""
        return self._pipeline

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build_context(self) -> ReplayContext:
        """The context :meth:`run` would thread through the pipeline.

        A path source is loaded here (first call), not at construction.
        """
        if self._trace is None:
            self._trace = ExecutionTrace.load(self._trace_path)
        return ReplayContext(
            trace=self._trace,
            profiler_trace=self._profiler_trace,
            config=self._config,
            support=self._support,
            runtime=self._runtime,
        )

    def run(self) -> ReplayResult:
        """Execute the pipeline and return the full measurement."""
        context = self.build_context()
        result = self._pipeline.run(context)
        if self._profile_hook is not None:
            result.profile_report = self._profile_hook.report(
                trace_name=str(context.trace.metadata.get("workload", "")),
                device=self._config.device,
                vectorized=getattr(self._config, "vectorized", True),
            )
        if self._tracer is not None and self._tracer.enabled:
            from repro.telemetry import record_replay_timeline

            record_replay_timeline(
                self._tracer, result, rank=int(self._config.rank or 0)
            )
        self._last_result = result
        return result

    def analyze(self, top: int = 5) -> Any:
        """Critical-path attribution of the last :meth:`run`.

        Returns a :class:`~repro.insights.CriticalPathReport` ranking
        the ops and collectives behind the measured iteration time,
        with the comm/compute overlap score.
        """
        if self._last_result is None:
            raise RuntimeError("nothing to analyze — call .run() first")
        from repro.insights import analyze_replay_result

        return analyze_replay_result(
            self._last_result,
            rank=int(self._config.rank or 0),
            device=self._config.device,
            top=top,
        )

    def run_context(self) -> ReplayContext:
        """Execute the pipeline and return the threaded context.

        Unlike :meth:`run`, no final result is demanded — the entry point
        for partial pipelines (e.g. ``.without_stage("measure")`` dry
        builds, or build-phase-only inspection).
        """
        return self._pipeline.run_context(self.build_context())

    def summarize(self) -> ReplayResultSummary:
        """Execute and return only the compact, cacheable summary."""
        return self.run().summarize()


def _resolve_source(source: ReplaySource):
    """Normalise a non-path replay source to (trace, profiler trace or
    None, device hint or None).  Paths never reach here — the session
    stores them and loads lazily in :meth:`ReplaySession.build_context`."""
    if isinstance(source, ExecutionTrace):
        return source, None, None
    # A bench-harness CaptureResult carries the trace, the profiler trace
    # and the capture device; duck-typed so api does not force the import.
    trace = getattr(source, "execution_trace", None)
    if isinstance(trace, ExecutionTrace):
        return (
            trace,
            getattr(source, "profiler_trace", None),
            getattr(source, "device", None),
        )
    raise TypeError(
        "repro.api.replay() expects an ExecutionTrace, a CaptureResult, or a "
        f"path to a serialised trace; got {type(source).__name__}"
    )
