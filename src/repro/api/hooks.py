"""Ready-made replay hooks: progress reporting, per-op tracing, metric taps.

These are small, composable examples of the :class:`~repro.core.pipeline.ReplayHook`
protocol — register them on a session with ``.hook(...)`` or on a pipeline
with ``add_hook``.  They only read the context and keep their own state, so
any combination can observe the same replay.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO

from repro.core.pipeline import ReplayContext, ReplayHook, ReplayStage, TrackMemoryStage


class ProgressHook(ReplayHook):
    """Prints one line per stage (and a per-op tally) to a stream.

    Useful for long replays driven from scripts or the CLI; writes to
    ``stderr`` by default so JSON output on ``stdout`` stays clean.
    """

    def __init__(self, stream: Optional[TextIO] = None, every_ops: int = 0) -> None:
        self.stream = stream if stream is not None else sys.stderr
        #: Emit an op-count line every N replayed operators (0 disables).
        self.every_ops = every_ops
        self._ops = 0

    def on_stage_start(self, context: ReplayContext, stage: ReplayStage) -> None:
        print(f"[repro] stage {stage.name} ...", file=self.stream)

    def on_stage_end(self, context: ReplayContext, stage: ReplayStage) -> None:
        detail = ""
        if stage.name == "select" and context.selection is not None:
            detail = f" ({len(context.selection.entries)} nodes selected)"
        elif stage.name == "reconstruct":
            detail = f" ({len(context.reconstructed)} ops reconstructed)"
        elif stage.name == "execute":
            detail = f" ({context.replayed_ops} replayed, {context.skipped_ops} skipped)"
        print(f"[repro] stage {stage.name} done{detail}", file=self.stream)

    def on_op_replayed(self, context: ReplayContext, entry, output) -> None:
        self._ops += 1
        if self.every_ops and self._ops % self.every_ops == 0:
            print(f"[repro]   {self._ops} ops replayed", file=self.stream)

    def on_error(self, context: ReplayContext, stage: ReplayStage, error: BaseException) -> None:
        print(f"[repro] stage {stage.name} FAILED: {error}", file=self.stream)


@dataclass
class OpRecord:
    """One replayed operator, as recorded by :class:`OpTraceHook`."""

    node_id: int
    name: str
    category: str
    measuring: bool


class OpTraceHook(ReplayHook):
    """Records every replayed operator (id, name, category, warm-up or
    measured) — a lightweight per-op trace for debugging selection and
    ordering questions."""

    def __init__(self) -> None:
        self.records: List[OpRecord] = []

    def on_op_replayed(self, context: ReplayContext, entry, output) -> None:
        self.records.append(
            OpRecord(
                node_id=entry.node.id,
                name=entry.node.name,
                category=str(getattr(entry, "category", "")),
                measuring=context.measuring,
            )
        )

    def measured(self) -> List[OpRecord]:
        return [record for record in self.records if record.measuring]


class StageTimingHook(ReplayHook):
    """Taps wall-clock duration per stage into a dict — the 'where does my
    replay spend its time' metric tap."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.durations_s: Dict[str, float] = {}
        self._starts: Dict[str, float] = {}

    def on_stage_start(self, context: ReplayContext, stage: ReplayStage) -> None:
        self._starts[stage.name] = self.clock()

    def on_stage_end(self, context: ReplayContext, stage: ReplayStage) -> None:
        started = self._starts.pop(stage.name, None)
        if started is not None:
            self.durations_s[stage.name] = self.durations_s.get(stage.name, 0.0) + (
                self.clock() - started
            )


class MetricsTapHook(ReplayHook):
    """Streams the finished result's scalar metrics to a callback.

    The callback receives one flat dict (the
    :class:`~repro.core.replayer.ReplayResultSummary` dict) right after the
    measure stage — handy for pushing replay metrics into a dashboard or
    accumulating them across a batch without holding full results.
    """

    def __init__(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        self.sink = sink

    def on_stage_end(self, context: ReplayContext, stage: ReplayStage) -> None:
        if context.result is not None and stage.name == "measure":
            self.sink(context.result.summarize().to_dict())


class MemoryHook(ReplayHook):
    """Captures the memory report the ``track-memory`` stage produced.

    Register together with ``.with_memory(...)``; after the replay the
    hook's :attr:`report` holds the
    :class:`~repro.memory.report.MemoryReport` (also available as
    ``result.memory_report``), and the optional ``sink`` callback receives
    it the moment the stage finishes — useful to stream footprints out of
    batch/cluster replays without holding full results.
    """

    def __init__(self, sink: Optional[Callable[[Any], None]] = None) -> None:
        self.report: Optional[Any] = None
        self.sink = sink

    def on_stage_end(self, context: ReplayContext, stage: ReplayStage) -> None:
        if stage.name == TrackMemoryStage.name:
            self._capture(context)

    def on_error(self, context: ReplayContext, stage: ReplayStage, error: BaseException) -> None:
        # With on_oom="raise" the stage publishes the report and then
        # raises, so on_stage_end never fires — capture it here, exactly
        # when the report matters most.
        if stage.name == TrackMemoryStage.name:
            self._capture(context)

    def _capture(self, context: ReplayContext) -> None:
        self.report = context.extras.get(TrackMemoryStage.EXTRAS_KEY)
        if self.sink is not None and self.report is not None:
            self.sink(self.report)

    @property
    def peak_allocated_bytes(self) -> int:
        return self.report.peak_allocated_bytes if self.report is not None else 0


@dataclass
class ErrorReport:
    """One stage failure, as collected by :class:`ErrorCollectorHook`."""

    stage: str
    error: str
    extras: Dict[str, Any] = field(default_factory=dict)


class ErrorCollectorHook(ReplayHook):
    """Collects stage failures (which still re-raise) for later reporting."""

    def __init__(self) -> None:
        self.errors: List[ErrorReport] = []

    def on_error(self, context: ReplayContext, stage: ReplayStage, error: BaseException) -> None:
        self.errors.append(
            ErrorReport(stage=stage.name, error=f"{type(error).__name__}: {error}")
        )
