"""Roofline-style kernel cost model.

Each kernel descriptor is converted into an on-device duration:

``time = max(compute_time, memory_time) + fixed_overhead``

where ``compute_time = flops / (peak_flops * efficiency(kind))`` and
``memory_time = bytes / (peak_bandwidth * efficiency(kind, locality))``.

Efficiency factors are per kernel kind (a GEMM gets much closer to peak than
a gather).  The power model scales the compute roof with the device clock,
which is how the power-limit sweep of Figure 8 bends throughput.

An alternative pure-FLOP model (no bandwidth roof) is provided for the
ablation benchmark; the roofline model is the default everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.hardware.specs import DeviceSpec
from repro.torchsim.kernel import KernelDesc, KernelKind

#: Fraction of peak compute each kernel kind typically achieves.
_DEFAULT_COMPUTE_EFFICIENCY: Dict[KernelKind, float] = {
    KernelKind.GEMM: 0.72,
    KernelKind.CONV: 0.62,
    KernelKind.ELEMENTWISE: 0.30,
    KernelKind.REDUCTION: 0.28,
    KernelKind.NORMALIZATION: 0.25,
    KernelKind.POOLING: 0.25,
    KernelKind.EMBEDDING: 0.15,
    KernelKind.MEMCPY: 0.10,
    KernelKind.COLLECTIVE: 0.10,
    KernelKind.CUSTOM: 0.45,
    KernelKind.FUSED: 0.40,
}

#: Fraction of peak DRAM bandwidth each kernel kind typically achieves.
_DEFAULT_MEMORY_EFFICIENCY: Dict[KernelKind, float] = {
    KernelKind.GEMM: 0.75,
    KernelKind.CONV: 0.70,
    KernelKind.ELEMENTWISE: 0.85,
    KernelKind.REDUCTION: 0.80,
    KernelKind.NORMALIZATION: 0.70,
    KernelKind.POOLING: 0.70,
    KernelKind.EMBEDDING: 0.55,
    KernelKind.MEMCPY: 0.90,
    KernelKind.COLLECTIVE: 0.80,
    KernelKind.CUSTOM: 0.60,
    KernelKind.FUSED: 0.85,
}

#: Minimum duration of any launched kernel, in microseconds.  Real devices
#: cannot retire a kernel faster than a few microseconds end to end.
_MIN_KERNEL_US = 1.5


@dataclass
class KernelCostModel:
    """Maps a :class:`KernelDesc` to a duration on a given device.

    Parameters
    ----------
    spec:
        The device to model.
    clock_scale:
        Multiplier on the compute roof; the power model lowers it when the
        device power limit forces a lower clock.
    mode:
        ``"roofline"`` (default) or ``"flops"``; the latter ignores the
        memory roof and exists for the cost-model ablation.
    """

    spec: DeviceSpec
    clock_scale: float = 1.0
    mode: str = "roofline"
    compute_efficiency: Dict[KernelKind, float] = field(
        default_factory=lambda: dict(_DEFAULT_COMPUTE_EFFICIENCY)
    )
    memory_efficiency: Dict[KernelKind, float] = field(
        default_factory=lambda: dict(_DEFAULT_MEMORY_EFFICIENCY)
    )

    def __post_init__(self) -> None:
        if self.mode not in ("roofline", "flops"):
            raise ValueError(f"unknown cost model mode: {self.mode!r}")
        if not 0.0 < self.clock_scale <= 1.5:
            raise ValueError("clock_scale must be in (0, 1.5]")

    # ------------------------------------------------------------------
    def compute_time_us(self, desc: KernelDesc) -> float:
        """Time the kernel spends on the compute roof, in microseconds."""
        if desc.flops <= 0:
            return 0.0
        efficiency = self.compute_efficiency.get(desc.kind, 0.4)
        precision_peak = self.spec.peak_fp32_flops
        if desc.metadata.get("dtype") in ("float16", "bfloat16"):
            precision_peak = self.spec.peak_fp16_flops
        effective = precision_peak * efficiency * desc.occupancy * self.clock_scale
        if effective <= 0:
            return float("inf")
        return desc.flops / effective * 1e6

    def memory_time_us(self, desc: KernelDesc) -> float:
        """Time the kernel spends on the memory roof, in microseconds."""
        if desc.bytes_total <= 0:
            return 0.0
        efficiency = self.memory_efficiency.get(desc.kind, 0.6)
        # Poor locality (cache-hostile gathers) wastes bandwidth on partially
        # used cache lines; scale the achievable bandwidth accordingly.
        locality_factor = 0.45 + 0.55 * max(0.0, min(1.0, desc.locality))
        effective = self.spec.mem_bandwidth_bps * efficiency * locality_factor
        return desc.bytes_total / effective * 1e6

    def duration_us(self, desc: KernelDesc) -> float:
        """Modelled on-device execution time of the kernel, in microseconds."""
        compute = self.compute_time_us(desc)
        memory = self.memory_time_us(desc)
        if self.mode == "flops":
            body = compute if compute > 0 else memory
        else:
            body = max(compute, memory)
        return max(_MIN_KERNEL_US, body + 0.5)

    def batch_duration_us(self, descs: Sequence[KernelDesc]) -> np.ndarray:
        """Price a whole group of kernels in one vectorized evaluation.

        Returns one duration per descriptor, **bit-identical** to calling
        :meth:`duration_us` per kernel: every arithmetic step is the same
        IEEE-double operation in the same order, just evaluated across the
        group as numpy arrays instead of one Python dispatch per kernel.
        This is the batched cost-evaluation entry point the vectorized
        replay path prices operator groups through
        (``tests/test_vectorized_equivalence.py`` asserts the exact
        equality).
        """
        if not descs:
            return np.zeros(0, dtype=np.float64)
        flops = np.array([d.flops for d in descs], dtype=np.float64)
        bytes_total = np.array([d.bytes_total for d in descs], dtype=np.float64)
        occupancy = np.array([d.occupancy for d in descs], dtype=np.float64)
        locality = np.array([d.locality for d in descs], dtype=np.float64)
        compute_eff = np.array(
            [self.compute_efficiency.get(d.kind, 0.4) for d in descs], dtype=np.float64
        )
        memory_eff = np.array(
            [self.memory_efficiency.get(d.kind, 0.6) for d in descs], dtype=np.float64
        )
        peak = np.array(
            [
                self.spec.peak_fp16_flops
                if d.metadata.get("dtype") in ("float16", "bfloat16")
                else self.spec.peak_fp32_flops
                for d in descs
            ],
            dtype=np.float64,
        )

        effective_compute = peak * compute_eff * occupancy * self.clock_scale
        locality_factor = 0.45 + 0.55 * np.maximum(0.0, np.minimum(1.0, locality))
        effective_memory = self.spec.mem_bandwidth_bps * memory_eff * locality_factor
        with np.errstate(divide="ignore", invalid="ignore"):
            compute = np.where(
                flops <= 0,
                0.0,
                np.where(effective_compute <= 0, np.inf, flops / effective_compute * 1e6),
            )
            memory = np.where(bytes_total <= 0, 0.0, bytes_total / effective_memory * 1e6)
        if self.mode == "flops":
            body = np.where(compute > 0, compute, memory)
        else:
            body = np.maximum(compute, memory)
        return np.maximum(_MIN_KERNEL_US, body + 0.5)

    def dominant_roof(self, desc: KernelDesc) -> str:
        """Which roof binds the kernel: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_time_us(desc) >= self.memory_time_us(desc) else "memory"

    def with_clock_scale(self, clock_scale: float) -> "KernelCostModel":
        """Return a copy of the model running at a different clock."""
        return KernelCostModel(
            spec=self.spec,
            clock_scale=clock_scale,
            mode=self.mode,
            compute_efficiency=dict(self.compute_efficiency),
            memory_efficiency=dict(self.memory_efficiency),
        )
