"""Interconnect and collective-communication cost model.

Distributed training in the paper runs on 8-GPU NVLink nodes connected by a
200 Gb/s NIC per GPU.  This module provides an alpha-beta (latency +
bandwidth) model for the c10d collectives used by the workloads:
``all_reduce``, ``all_to_all``, ``all_gather``, ``reduce_scatter``,
``broadcast`` and point-to-point ``send``/``recv``.

The model distinguishes intra-node traffic (NVLink) from inter-node traffic
(NIC) based on the process-group topology, and adds a small synchronisation
skew term that grows slowly with the group size — the same first-order
behaviour that makes large-scale collectives slower per byte than
small-scale ones, and the knob the scale-down emulation of Section 7.3
adjusts.

Beyond the flat two-level split, a :class:`HierarchicalTopology` describes
the fabric as nested tiers (NVLink island → rail-optimised pod → spine),
ASTRA-sim-style: each tier has a span (how many ranks it reaches), a
per-GPU bandwidth and a latency.  A collective over ``n`` ranks is
bottlenecked by the slowest tier it spans and pays the summed latency of
every crossed tier — the first-order reason thousand-rank collectives on a
rail/spine fabric cost more per byte than an 8-GPU island.  Attach one to
a :class:`CollectiveCostModel` (``topology=``) or pick a preset by name
through ``ReplayConfig(topology="rail-spine")`` / the ``replay-dist
--topology`` flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidth/latency description of the cluster fabric.

    Bandwidths are per-GPU unidirectional, in GB/s; latencies in
    microseconds.
    """

    name: str = "a100-cluster"
    intra_node_bw_gbps: float = 300.0   # effective NVLink bandwidth per GPU
    inter_node_bw_gbps: float = 25.0    # 200 Gb/s NIC per GPU
    intra_node_latency_us: float = 4.0
    inter_node_latency_us: float = 12.0
    gpus_per_node: int = 8
    skew_us_per_rank: float = 0.35

    def clone(self, **overrides) -> "InterconnectSpec":
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass(frozen=True)
class TopologyTier:
    """One level of a hierarchical fabric.

    ``span`` is the number of ranks reachable without leaving this tier
    (cumulative: an NVLink island of 8, a rail pod of 256, ...); ``bw_gbps``
    the per-GPU unidirectional bandwidth across the tier and ``latency_us``
    the one-way latency a transfer pays for crossing it.
    """

    name: str
    span: int
    bw_gbps: float
    latency_us: float


@dataclass(frozen=True)
class HierarchicalTopology:
    """A nested-tier fabric model (NVLink island / rail / spine).

    Tiers are ordered innermost → outermost with strictly increasing spans.
    A group of ``world_size`` ranks spans every tier up to the first whose
    ``span`` covers it; the group's bandwidth is the minimum over the
    spanned tiers and its base latency their sum — crossing the spine means
    first crossing the island and the rail.
    """

    name: str
    tiers: Tuple[TopologyTier, ...]
    #: Synchronisation skew per log2(rank) step, as in the flat model.
    skew_us_per_rank: float = 0.35

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a HierarchicalTopology needs at least one tier")
        spans = [tier.span for tier in self.tiers]
        if spans != sorted(spans) or len(set(spans)) != len(spans):
            raise ValueError(
                f"topology tiers must have strictly increasing spans, got {spans}"
            )

    # ------------------------------------------------------------------
    def spanned(self, world_size: int) -> Tuple[TopologyTier, ...]:
        """Tiers a group of ``world_size`` ranks crosses (innermost first)."""
        crossed = []
        for tier in self.tiers:
            crossed.append(tier)
            if world_size <= tier.span:
                break
        return tuple(crossed)

    def bottleneck_bw_gbps(self, world_size: int) -> float:
        return min(tier.bw_gbps for tier in self.spanned(world_size))

    def latency_us(self, world_size: int) -> float:
        return sum(tier.latency_us for tier in self.spanned(world_size))

    @property
    def innermost_span(self) -> int:
        return self.tiers[0].span


def _nvlink_island(spec: InterconnectSpec) -> HierarchicalTopology:
    """The flat model's two levels as explicit tiers: NVLink island plus a
    single rail of NICs covering the rest of the fleet."""
    return HierarchicalTopology(
        name="nvlink-island",
        tiers=(
            TopologyTier("nvlink", spec.gpus_per_node, spec.intra_node_bw_gbps,
                         spec.intra_node_latency_us),
            TopologyTier("rail", 1 << 20, spec.inter_node_bw_gbps,
                         spec.inter_node_latency_us),
        ),
        skew_us_per_rank=spec.skew_us_per_rank,
    )


def _rail_spine(spec: InterconnectSpec) -> HierarchicalTopology:
    """A three-tier datacentre fabric: NVLink islands, rail-optimised pods
    of 32 nodes, and an oversubscribed spine above them (half the NIC
    bandwidth per GPU, 2.5x the NIC latency — a conservative 2:1
    oversubscription plus an extra switch hop)."""
    pod_span = spec.gpus_per_node * 32
    return HierarchicalTopology(
        name="rail-spine",
        tiers=(
            TopologyTier("nvlink", spec.gpus_per_node, spec.intra_node_bw_gbps,
                         spec.intra_node_latency_us),
            TopologyTier("rail", pod_span, spec.inter_node_bw_gbps,
                         spec.inter_node_latency_us),
            TopologyTier("spine", 1 << 20, spec.inter_node_bw_gbps * 0.5,
                         spec.inter_node_latency_us * 2.5),
        ),
        skew_us_per_rank=spec.skew_us_per_rank,
    )


#: Named topology presets, as accepted by ``ReplayConfig.topology`` and the
#: ``replay-dist --topology`` flag.  ``"flat"`` is the classic two-level
#: split baked into :class:`CollectiveCostModel` itself (topology=None).
TOPOLOGY_PRESETS: Dict[str, object] = {
    "flat": None,
    "nvlink-island": _nvlink_island,
    "rail-spine": _rail_spine,
}


def topology_from_name(
    name: Optional[str], spec: Optional[InterconnectSpec] = None
) -> Optional[HierarchicalTopology]:
    """Resolve a preset name to a :class:`HierarchicalTopology` built from
    ``spec`` (default :class:`InterconnectSpec`); ``None``/``"flat"`` mean
    the flat model."""
    if name is None:
        return None
    try:
        factory = TOPOLOGY_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose one of {sorted(TOPOLOGY_PRESETS)}"
        ) from None
    if factory is None:
        return None
    return factory(spec if spec is not None else InterconnectSpec())


@dataclass
class CollectiveCostModel:
    """Duration model for collective and point-to-point operations."""

    spec: InterconnectSpec = InterconnectSpec()
    #: Extra multiplier on every collective's duration; the scale-down
    #: emulator uses it to inject the delay that emulates a larger cluster.
    delay_scale: float = 1.0
    #: Constant extra delay (us) added to every collective.
    extra_delay_us: float = 0.0
    #: Optional hierarchical fabric; ``None`` keeps the flat two-level
    #: model (byte-identical to the pre-topology behaviour).
    topology: Optional[HierarchicalTopology] = None

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def _crosses_nodes(self, world_size: int) -> bool:
        if self.topology is not None:
            return world_size > self.topology.innermost_span
        return world_size > self.spec.gpus_per_node

    def _bottleneck_bw_bps(self, world_size: int) -> float:
        if self.topology is not None:
            return self.topology.bottleneck_bw_gbps(world_size) * 1e9
        gbps = (
            self.spec.inter_node_bw_gbps
            if self._crosses_nodes(world_size)
            else self.spec.intra_node_bw_gbps
        )
        return gbps * 1e9

    def _latency_us(self, world_size: int) -> float:
        if self.topology is not None:
            base = self.topology.latency_us(world_size)
            skew = self.topology.skew_us_per_rank
        else:
            base = (
                self.spec.inter_node_latency_us
                if self._crosses_nodes(world_size)
                else self.spec.intra_node_latency_us
            )
            skew = self.spec.skew_us_per_rank
        return base + skew * math.log2(max(2, world_size))

    def _finalize(self, duration_us: float) -> float:
        return duration_us * self.delay_scale + self.extra_delay_us

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def all_reduce_us(self, bytes_per_rank: float, world_size: int) -> float:
        """Ring all-reduce: each rank moves ``2*(n-1)/n`` of its payload."""
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = 2.0 * (world_size - 1) / world_size * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        steps = 2 * (world_size - 1)
        return self._finalize(transfer + steps * self._latency_us(world_size) / world_size + self._latency_us(world_size))

    def reduce_scatter_us(self, bytes_per_rank: float, world_size: int) -> float:
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = (world_size - 1) / world_size * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        return self._finalize(transfer + self._latency_us(world_size))

    def all_gather_us(self, bytes_per_rank: float, world_size: int) -> float:
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = (world_size - 1) * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        return self._finalize(transfer + self._latency_us(world_size))

    def all_to_all_us(self, bytes_per_rank: float, world_size: int) -> float:
        """All-to-all: every rank sends ``(n-1)/n`` of its payload away."""
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = (world_size - 1) / world_size * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        # all-to-all suffers more from incast than ring collectives.
        congestion = 1.0 + 0.05 * math.log2(max(2, world_size))
        return self._finalize(transfer * congestion + self._latency_us(world_size))

    def broadcast_us(self, bytes_total: float, world_size: int) -> float:
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        transfer = bytes_total / self._bottleneck_bw_bps(world_size) * 1e6
        hops = math.ceil(math.log2(world_size))
        return self._finalize(transfer + hops * self._latency_us(world_size))

    def barrier_us(self, world_size: int) -> float:
        return self._finalize(2.0 * self._latency_us(max(2, world_size)))

    def p2p_us(self, bytes_total: float, same_node: bool = True) -> float:
        bw = (self.spec.intra_node_bw_gbps if same_node else self.spec.inter_node_bw_gbps) * 1e9
        latency = self.spec.intra_node_latency_us if same_node else self.spec.inter_node_latency_us
        return self._finalize(bytes_total / bw * 1e6 + latency)

    # ------------------------------------------------------------------
    def collective_us(self, op_name: str, bytes_per_rank: float, world_size: int) -> float:
        """Dispatch on the (c10d-style) collective operator name."""
        table = {
            "all_reduce": self.all_reduce_us,
            "allreduce": self.all_reduce_us,
            "reduce_scatter": self.reduce_scatter_us,
            "all_gather": self.all_gather_us,
            "allgather": self.all_gather_us,
            "all_to_all": self.all_to_all_us,
            "alltoall": self.all_to_all_us,
        }
        key = op_name.split("::")[-1].lower()
        if key in table:
            return table[key](bytes_per_rank, world_size)
        if key in ("broadcast",):
            return self.broadcast_us(bytes_per_rank, world_size)
        if key in ("barrier",):
            return self.barrier_us(world_size)
        if key in ("send", "recv", "isend", "irecv"):
            return self.p2p_us(bytes_per_rank, same_node=not self._crosses_nodes(world_size))
        raise ValueError(f"unknown collective operator: {op_name!r}")
