"""Interconnect and collective-communication cost model.

Distributed training in the paper runs on 8-GPU NVLink nodes connected by a
200 Gb/s NIC per GPU.  This module provides an alpha-beta (latency +
bandwidth) model for the c10d collectives used by the workloads:
``all_reduce``, ``all_to_all``, ``all_gather``, ``reduce_scatter``,
``broadcast`` and point-to-point ``send``/``recv``.

The model distinguishes intra-node traffic (NVLink) from inter-node traffic
(NIC) based on the process-group topology, and adds a small synchronisation
skew term that grows slowly with the group size — the same first-order
behaviour that makes large-scale collectives slower per byte than
small-scale ones, and the knob the scale-down emulation of Section 7.3
adjusts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidth/latency description of the cluster fabric.

    Bandwidths are per-GPU unidirectional, in GB/s; latencies in
    microseconds.
    """

    name: str = "a100-cluster"
    intra_node_bw_gbps: float = 300.0   # effective NVLink bandwidth per GPU
    inter_node_bw_gbps: float = 25.0    # 200 Gb/s NIC per GPU
    intra_node_latency_us: float = 4.0
    inter_node_latency_us: float = 12.0
    gpus_per_node: int = 8
    skew_us_per_rank: float = 0.35

    def clone(self, **overrides) -> "InterconnectSpec":
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass
class CollectiveCostModel:
    """Duration model for collective and point-to-point operations."""

    spec: InterconnectSpec = InterconnectSpec()
    #: Extra multiplier on every collective's duration; the scale-down
    #: emulator uses it to inject the delay that emulates a larger cluster.
    delay_scale: float = 1.0
    #: Constant extra delay (us) added to every collective.
    extra_delay_us: float = 0.0

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def _crosses_nodes(self, world_size: int) -> bool:
        return world_size > self.spec.gpus_per_node

    def _bottleneck_bw_bps(self, world_size: int) -> float:
        gbps = (
            self.spec.inter_node_bw_gbps
            if self._crosses_nodes(world_size)
            else self.spec.intra_node_bw_gbps
        )
        return gbps * 1e9

    def _latency_us(self, world_size: int) -> float:
        base = (
            self.spec.inter_node_latency_us
            if self._crosses_nodes(world_size)
            else self.spec.intra_node_latency_us
        )
        return base + self.spec.skew_us_per_rank * math.log2(max(2, world_size))

    def _finalize(self, duration_us: float) -> float:
        return duration_us * self.delay_scale + self.extra_delay_us

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def all_reduce_us(self, bytes_per_rank: float, world_size: int) -> float:
        """Ring all-reduce: each rank moves ``2*(n-1)/n`` of its payload."""
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = 2.0 * (world_size - 1) / world_size * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        steps = 2 * (world_size - 1)
        return self._finalize(transfer + steps * self._latency_us(world_size) / world_size + self._latency_us(world_size))

    def reduce_scatter_us(self, bytes_per_rank: float, world_size: int) -> float:
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = (world_size - 1) / world_size * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        return self._finalize(transfer + self._latency_us(world_size))

    def all_gather_us(self, bytes_per_rank: float, world_size: int) -> float:
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = (world_size - 1) * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        return self._finalize(transfer + self._latency_us(world_size))

    def all_to_all_us(self, bytes_per_rank: float, world_size: int) -> float:
        """All-to-all: every rank sends ``(n-1)/n`` of its payload away."""
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        moved = (world_size - 1) / world_size * bytes_per_rank
        transfer = moved / self._bottleneck_bw_bps(world_size) * 1e6
        # all-to-all suffers more from incast than ring collectives.
        congestion = 1.0 + 0.05 * math.log2(max(2, world_size))
        return self._finalize(transfer * congestion + self._latency_us(world_size))

    def broadcast_us(self, bytes_total: float, world_size: int) -> float:
        if world_size <= 1:
            return self._finalize(self.spec.intra_node_latency_us)
        transfer = bytes_total / self._bottleneck_bw_bps(world_size) * 1e6
        hops = math.ceil(math.log2(world_size))
        return self._finalize(transfer + hops * self._latency_us(world_size))

    def barrier_us(self, world_size: int) -> float:
        return self._finalize(2.0 * self._latency_us(max(2, world_size)))

    def p2p_us(self, bytes_total: float, same_node: bool = True) -> float:
        bw = (self.spec.intra_node_bw_gbps if same_node else self.spec.inter_node_bw_gbps) * 1e9
        latency = self.spec.intra_node_latency_us if same_node else self.spec.inter_node_latency_us
        return self._finalize(bytes_total / bw * 1e6 + latency)

    # ------------------------------------------------------------------
    def collective_us(self, op_name: str, bytes_per_rank: float, world_size: int) -> float:
        """Dispatch on the (c10d-style) collective operator name."""
        table = {
            "all_reduce": self.all_reduce_us,
            "allreduce": self.all_reduce_us,
            "reduce_scatter": self.reduce_scatter_us,
            "all_gather": self.all_gather_us,
            "allgather": self.all_gather_us,
            "all_to_all": self.all_to_all_us,
            "alltoall": self.all_to_all_us,
        }
        key = op_name.split("::")[-1].lower()
        if key in table:
            return table[key](bytes_per_rank, world_size)
        if key in ("broadcast",):
            return self.broadcast_us(bytes_per_rank, world_size)
        if key in ("barrier",):
            return self.barrier_us(world_size)
        if key in ("send", "recv", "isend", "irecv"):
            return self.p2p_us(bytes_per_rank, same_node=world_size <= self.spec.gpus_per_node)
        raise ValueError(f"unknown collective operator: {op_name!r}")
