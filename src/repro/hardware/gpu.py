"""GPU timeline simulation.

The runtime records *kernel launches* — (launch timestamp, stream, modelled
duration).  This module resolves them into actual start/end times the way a
CUDA device would:

* kernels on the same stream execute strictly in issue order,
* a kernel cannot start before its CPU-side launch timestamp,
* kernels on different streams overlap freely (the cost model already folds
  average contention into per-kernel efficiency factors).

From the resolved timeline we derive the aggregate statistics the paper
reports: total/busy/exposed GPU time per operator category, SM utilisation,
HBM bandwidth and average power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.torchsim.kernel import KernelLaunch, OpCategory


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping [start, end) intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _total_length(intervals: Sequence[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


def _subtract_intervals(
    base: Sequence[Tuple[float, float]], cover: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Return the parts of ``base`` not covered by ``cover``."""
    result: List[Tuple[float, float]] = []
    cover = list(cover)
    for start, end in base:
        segments = [(start, end)]
        for c_start, c_end in cover:
            next_segments: List[Tuple[float, float]] = []
            for s_start, s_end in segments:
                if c_end <= s_start or c_start >= s_end:
                    next_segments.append((s_start, s_end))
                    continue
                if c_start > s_start:
                    next_segments.append((s_start, c_start))
                if c_end < s_end:
                    next_segments.append((c_end, s_end))
            segments = next_segments
            if not segments:
                break
        result.extend(segments)
    return result


@dataclass
class TimelineStats:
    """Aggregate statistics of one resolved GPU timeline."""

    wall_time_us: float
    busy_time_us: float
    total_kernel_time_us: float
    kernel_count: int
    bytes_moved: float
    weighted_occupancy: float
    category_kernel_time_us: Dict[str, float] = field(default_factory=dict)
    category_exposed_time_us: Dict[str, float] = field(default_factory=dict)
    category_count: Dict[str, int] = field(default_factory=dict)

    @property
    def busy_fraction(self) -> float:
        if self.wall_time_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / self.wall_time_us)

    @property
    def sm_utilization(self) -> float:
        """Average fraction of SMs busy over the wall-clock window (0..1)."""
        if self.wall_time_us <= 0:
            return 0.0
        return min(1.0, self.weighted_occupancy / self.wall_time_us)

    @property
    def hbm_bandwidth_gbps(self) -> float:
        """Average DRAM traffic over the wall-clock window, in GB/s."""
        if self.wall_time_us <= 0:
            return 0.0
        return self.bytes_moved / (self.wall_time_us * 1e-6) / 1e9


class GpuTimeline:
    """Resolves kernel launches into a per-stream ordered timeline."""

    def __init__(self, device_index: int = 0):
        self.device_index = device_index
        self._launches: List[KernelLaunch] = []
        self._stream_ready: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def add_launch(self, launch: KernelLaunch) -> KernelLaunch:
        """Place a kernel on its stream and resolve its start/end time.

        Returns the same object with ``start``/``end`` filled in, so callers
        (e.g. blocking operators) can synchronise on the completion time.
        """
        ready = self._stream_ready.get(launch.stream_id, 0.0)
        start = max(ready, launch.launch_ts)
        end = start + launch.duration
        launch.start = start
        launch.end = end
        self._stream_ready[launch.stream_id] = end
        self._launches.append(launch)
        return launch

    def stream_ready_time(self, stream_id: int) -> float:
        """Time at which the stream drains all currently enqueued kernels."""
        return self._stream_ready.get(stream_id, 0.0)

    def device_ready_time(self) -> float:
        """Time at which every stream has drained (a device synchronize)."""
        if not self._stream_ready:
            return 0.0
        return max(self._stream_ready.values())

    @property
    def launches(self) -> List[KernelLaunch]:
        return list(self._launches)

    @property
    def launch_count(self) -> int:
        """Number of launches recorded so far (an O(1) cursor; the
        vectorized replay path brackets an operator call with it to slice
        out exactly the kernels that call enqueued)."""
        return len(self._launches)

    def launches_since(self, index: int) -> List[KernelLaunch]:
        """The launches recorded at or after position ``index`` (a cursor
        previously read from :attr:`launch_count`)."""
        return self._launches[index:]

    # ------------------------------------------------------------------
    def stats(self, window_start: float = 0.0, window_end: Optional[float] = None) -> TimelineStats:
        """Aggregate the resolved timeline into :class:`TimelineStats`.

        ``window_end`` defaults to the later of the last kernel end and the
        last CPU launch timestamp, i.e. the wall-clock span of the captured
        region.
        """
        launches = [k for k in self._launches if k.resolved and k.end > window_start]
        if window_end is None:
            window_end = max((k.end for k in launches), default=window_start)
            window_end = max(window_end, max((k.launch_ts for k in self._launches), default=0.0))
        window = max(0.0, window_end - window_start)

        intervals = [(max(k.start, window_start), min(k.end, window_end)) for k in launches]
        intervals = [(s, e) for s, e in intervals if e > s]
        busy = _total_length(_merge_intervals(intervals))

        category_time: Dict[str, float] = {}
        category_count: Dict[str, int] = {}
        category_intervals: Dict[str, List[Tuple[float, float]]] = {}
        total_kernel_time = 0.0
        bytes_moved = 0.0
        weighted_occupancy = 0.0
        for kernel in launches:
            start = max(kernel.start, window_start)
            end = min(kernel.end, window_end)
            if end <= start:
                continue
            length = end - start
            category = kernel.category.value
            category_time[category] = category_time.get(category, 0.0) + length
            category_count[category] = category_count.get(category, 0) + 1
            category_intervals.setdefault(category, []).append((start, end))
            total_kernel_time += length
            bytes_moved += kernel.desc.bytes_total
            weighted_occupancy += length * kernel.desc.occupancy

        # Exposed time per category: the part of that category's busy time
        # not overlapped by kernels of any *other* category (Section 3.3's
        # "exposed GPU time" for communication operators).
        category_exposed: Dict[str, float] = {}
        for category, cat_intervals in category_intervals.items():
            own = _merge_intervals(cat_intervals)
            others: List[Tuple[float, float]] = []
            for other, other_intervals in category_intervals.items():
                if other != category:
                    others.extend(other_intervals)
            exposed = _subtract_intervals(own, _merge_intervals(others))
            category_exposed[category] = _total_length(exposed)

        return TimelineStats(
            wall_time_us=window,
            busy_time_us=busy,
            total_kernel_time_us=total_kernel_time,
            kernel_count=len(launches),
            bytes_moved=bytes_moved,
            weighted_occupancy=weighted_occupancy,
            category_kernel_time_us=category_time,
            category_exposed_time_us=category_exposed,
            category_count=category_count,
        )
