"""Device specifications.

The numbers are public datasheet values (peak FLOP rates, memory bandwidth,
SM counts, TDP) plus a handful of framework-level constants (kernel launch
and dispatch overheads) chosen to be representative of a modern CUDA +
PyTorch stack.  Absolute accuracy is not the goal — the paper's evaluation
compares *original vs replay on the same device*, so what matters is that
every workload and its replay see the same device model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant description of one execution platform.

    All throughput numbers are *peak* values; the cost model applies
    kernel-kind-specific efficiency factors on top of them.

    Units: TFLOP/s for compute, GB/s for bandwidth, Watts for power,
    microseconds for overheads, MHz for clocks.
    """

    name: str
    is_gpu: bool
    peak_fp32_tflops: float
    peak_fp16_tflops: float
    mem_bandwidth_gbps: float
    mem_capacity_gb: float
    num_sms: int
    l1_kb_per_sm: float
    l2_mb: float
    idle_power_w: float
    tdp_w: float
    min_power_limit_w: float
    base_clock_mhz: float
    boost_clock_mhz: float
    kernel_launch_overhead_us: float
    dispatch_overhead_us: float
    nvlink_bw_gbps: float = 0.0
    nic_bw_gbps: float = 0.0

    def clone(self, **overrides) -> "DeviceSpec":
        """Return a copy of this spec with some fields replaced."""
        return replace(self, **overrides)

    @property
    def peak_fp32_flops(self) -> float:
        """Peak fp32 throughput in FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def peak_fp16_flops(self) -> float:
        return self.peak_fp16_tflops * 1e12

    @property
    def mem_bandwidth_bps(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9


#: NVIDIA A100-SXM4-40GB (the paper's primary evaluation platform).
A100 = DeviceSpec(
    name="A100",
    is_gpu=True,
    peak_fp32_tflops=19.5,
    peak_fp16_tflops=312.0,
    mem_bandwidth_gbps=1555.0,
    mem_capacity_gb=40.0,
    num_sms=108,
    l1_kb_per_sm=192.0,
    l2_mb=40.0,
    idle_power_w=55.0,
    tdp_w=400.0,
    min_power_limit_w=100.0,
    base_clock_mhz=1095.0,
    boost_clock_mhz=1410.0,
    kernel_launch_overhead_us=4.0,
    dispatch_overhead_us=6.0,
    nvlink_bw_gbps=600.0,
    nic_bw_gbps=25.0,  # 200 Gb/s NIC per GPU
)

#: NVIDIA V100-SXM2-16GB (the secondary GPU platform of Figure 7).
V100 = DeviceSpec(
    name="V100",
    is_gpu=True,
    peak_fp32_tflops=15.7,
    peak_fp16_tflops=125.0,
    mem_bandwidth_gbps=900.0,
    mem_capacity_gb=16.0,
    num_sms=80,
    l1_kb_per_sm=128.0,
    l2_mb=6.0,
    idle_power_w=50.0,
    tdp_w=300.0,
    min_power_limit_w=100.0,
    base_clock_mhz=1290.0,
    boost_clock_mhz=1530.0,
    kernel_launch_overhead_us=4.5,
    dispatch_overhead_us=6.5,
    nvlink_bw_gbps=300.0,
    nic_bw_gbps=12.5,
)

#: A dual-socket Intel Xeon Platinum server, used as the CPU platform of
#: Figure 7 (and the baseline of Figure 10).  Treated as a single "device"
#: with one execution queue.
XEON_CPU = DeviceSpec(
    name="CPU",
    is_gpu=False,
    peak_fp32_tflops=3.0,
    peak_fp16_tflops=3.0,
    mem_bandwidth_gbps=210.0,
    mem_capacity_gb=384.0,
    num_sms=56,  # physical cores
    l1_kb_per_sm=48.0,
    l2_mb=56.0,
    idle_power_w=120.0,
    tdp_w=540.0,
    min_power_limit_w=200.0,
    base_clock_mhz=2400.0,
    boost_clock_mhz=3100.0,
    kernel_launch_overhead_us=0.5,
    dispatch_overhead_us=4.0,
)

#: The hypothetical next-generation accelerator used for the early-stage
#: platform evaluation of Figure 10.  Roughly "an A100 successor": ~1.9x
#: compute, ~2x HBM bandwidth.
NEW_PLATFORM = DeviceSpec(
    name="NewPlatform",
    is_gpu=True,
    peak_fp32_tflops=48.0,
    peak_fp16_tflops=700.0,
    mem_bandwidth_gbps=3000.0,
    mem_capacity_gb=80.0,
    num_sms=132,
    l1_kb_per_sm=256.0,
    l2_mb=50.0,
    idle_power_w=60.0,
    tdp_w=700.0,
    min_power_limit_w=150.0,
    base_clock_mhz=1300.0,
    boost_clock_mhz=1750.0,
    kernel_launch_overhead_us=3.5,
    dispatch_overhead_us=5.5,
    nvlink_bw_gbps=900.0,
    nic_bw_gbps=50.0,
)

_SPECS: Dict[str, DeviceSpec] = {
    spec.name.lower(): spec for spec in (A100, V100, XEON_CPU, NEW_PLATFORM)
}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a device spec by (case-insensitive) name.

    Raises ``KeyError`` with the list of known platforms when the name is
    unknown, which keeps benchmark configuration errors easy to diagnose.
    """
    key = name.lower()
    if key not in _SPECS:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"unknown device spec {name!r}; known specs: {known}")
    return _SPECS[key]


def register_device_spec(spec: DeviceSpec) -> None:
    """Register a user-defined platform (e.g. for early-stage evaluation)."""
    _SPECS[spec.name.lower()] = spec
