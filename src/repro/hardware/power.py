"""Power and DVFS model.

Figure 8 of the paper sweeps the GPU power limit from 100 W to 350 W and
shows that the replayed benchmark tracks the original workload's
energy-efficiency curve.  To reproduce that experiment we need a model of
how a power cap affects (a) the sustained clock — and hence kernel durations
— and (b) the average power actually drawn.

The model is a standard first-order DVFS approximation:

* dynamic power scales roughly with ``V^2 * f`` and, since voltage scales
  with frequency near the operating point, with ``f^3``;
* therefore capping power at ``P_cap`` forces the clock down to
  ``f = f_max * (P_budget / P_dyn_max)^(1/3)`` whenever the uncapped dynamic
  power would exceed the budget;
* the average power drawn is the idle floor plus the (possibly capped)
  dynamic component scaled by how busy the device is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.specs import DeviceSpec


@dataclass
class PowerModel:
    """Power-limit model for one device."""

    spec: DeviceSpec
    power_limit_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.power_limit_w is not None:
            low = self.spec.min_power_limit_w
            high = self.spec.tdp_w
            if not low <= self.power_limit_w <= high:
                raise ValueError(
                    f"power limit {self.power_limit_w} W outside the valid range "
                    f"[{low}, {high}] W for {self.spec.name}"
                )

    # ------------------------------------------------------------------
    @property
    def effective_limit_w(self) -> float:
        return self.power_limit_w if self.power_limit_w is not None else self.spec.tdp_w

    @property
    def clock_scale(self) -> float:
        """Sustained-clock multiplier in (0, 1] implied by the power cap."""
        dynamic_budget = max(1.0, self.effective_limit_w - self.spec.idle_power_w)
        dynamic_max = max(1.0, self.spec.tdp_w - self.spec.idle_power_w)
        ratio = min(1.0, dynamic_budget / dynamic_max)
        # Cube-root law: power ~ f^3 near the operating point.
        scale = ratio ** (1.0 / 3.0)
        # Clocks cannot drop below the base/boost ratio — the device would
        # throttle to base clock rather than stall entirely.
        floor = self.spec.base_clock_mhz / self.spec.boost_clock_mhz * 0.55
        return max(floor, scale)

    # ------------------------------------------------------------------
    def average_power_w(self, busy_fraction: float, utilization: float) -> float:
        """Average device power given how busy the device is.

        Parameters
        ----------
        busy_fraction:
            Fraction of wall-clock time at least one kernel is resident.
        utilization:
            Average SM utilisation while busy (0..1).
        """
        busy_fraction = max(0.0, min(1.0, busy_fraction))
        utilization = max(0.0, min(1.0, utilization))
        dynamic_max = self.spec.tdp_w - self.spec.idle_power_w
        # Dynamic power follows activity, but even idle SMs burn some static
        # power when the device is busy; 0.25 floor captures that.
        activity = 0.25 + 0.75 * utilization
        dynamic = dynamic_max * activity * busy_fraction * (self.clock_scale ** 3)
        return min(self.effective_limit_w, self.spec.idle_power_w + dynamic)

    def energy_j(self, wall_time_us: float, busy_fraction: float, utilization: float) -> float:
        """Energy consumed over ``wall_time_us`` microseconds, in joules."""
        power = self.average_power_w(busy_fraction, utilization)
        return power * wall_time_us * 1e-6

    def energy_efficiency(
        self, iterations: float, wall_time_us: float, busy_fraction: float, utilization: float
    ) -> float:
        """Throughput per watt (iterations/s/W), the y-axis of Figure 8."""
        if wall_time_us <= 0:
            return 0.0
        throughput = iterations / (wall_time_us * 1e-6)
        power = self.average_power_w(busy_fraction, utilization)
        if power <= 0:
            return 0.0
        return throughput / power
