"""Hardware performance models.

This subpackage replaces the physical A100/V100 cluster of the paper with a
deterministic analytic model:

* :mod:`~repro.hardware.specs` — device specifications (CPU, V100, A100 and
  the hypothetical "new platform" of Figure 10).
* :mod:`~repro.hardware.costmodel` — a roofline-style kernel cost model.
* :mod:`~repro.hardware.network` — an alpha-beta interconnect model for the
  c10d collectives (NVLink intra-node, NIC inter-node).
* :mod:`~repro.hardware.power` — the power-limit (DVFS) model used by the
  power-efficiency sweep of Figure 8.
* :mod:`~repro.hardware.gpu` — the discrete-event GPU timeline that resolves
  per-stream kernel start/end times and aggregates busy/exposed time.
* :mod:`~repro.hardware.counters` — system- and micro-level metrics (SM
  utilisation, HBM bandwidth, power, IPC, L1/L2 hit rates, SM throughput).
"""

from repro.hardware.specs import DeviceSpec, A100, V100, XEON_CPU, NEW_PLATFORM, get_device_spec
from repro.hardware.costmodel import KernelCostModel
from repro.hardware.network import InterconnectSpec, CollectiveCostModel
from repro.hardware.power import PowerModel
from repro.hardware.gpu import GpuTimeline, TimelineStats
from repro.hardware.counters import KernelCounters, SystemMetrics, compute_kernel_counters, compute_system_metrics

__all__ = [
    "DeviceSpec",
    "A100",
    "V100",
    "XEON_CPU",
    "NEW_PLATFORM",
    "get_device_spec",
    "KernelCostModel",
    "InterconnectSpec",
    "CollectiveCostModel",
    "PowerModel",
    "GpuTimeline",
    "TimelineStats",
    "KernelCounters",
    "SystemMetrics",
    "compute_kernel_counters",
    "compute_system_metrics",
]
