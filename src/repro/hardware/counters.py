"""System- and micro-level performance counters.

The paper evaluates its generated benchmarks against the originals using

* macro metrics per device: SM utilisation, HBM bandwidth, GPU power
  (Figure 5, Table 5), and
* micro metrics per kernel: IPC, L1 hit rate, L2 hit rate, SM throughput
  (Figure 6).

Both are derived analytically from the kernel descriptors and the resolved
timeline; the formulas are deliberately simple but monotone in the right
quantities (arithmetic intensity, locality, occupancy), so that
original-vs-replay comparisons behave the way the paper's do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.hardware.gpu import TimelineStats
from repro.hardware.power import PowerModel
from repro.hardware.specs import DeviceSpec
from repro.torchsim.kernel import KernelDesc, KernelKind, KernelLaunch


@dataclass
class KernelCounters:
    """Micro-architectural counters for one kernel (Figure 6 metrics)."""

    kernel_name: str
    ipc: float
    l1_hit_rate: float
    l2_hit_rate: float
    sm_throughput: float
    duration_us: float = 0.0


@dataclass
class SystemMetrics:
    """Macro system metrics for one device (Figure 5 / Table 5 metrics)."""

    execution_time_ms: float
    sm_utilization_pct: float
    hbm_bandwidth_gbps: float
    gpu_power_w: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "execution_time_ms": self.execution_time_ms,
            "sm_utilization_pct": self.sm_utilization_pct,
            "hbm_bandwidth_gbps": self.hbm_bandwidth_gbps,
            "gpu_power_w": self.gpu_power_w,
        }


# ----------------------------------------------------------------------
# Micro-level counters
# ----------------------------------------------------------------------
_KIND_IPC_CEILING: Dict[KernelKind, float] = {
    KernelKind.GEMM: 3.6,
    KernelKind.CONV: 3.2,
    KernelKind.ELEMENTWISE: 1.2,
    KernelKind.REDUCTION: 1.0,
    KernelKind.NORMALIZATION: 1.1,
    KernelKind.POOLING: 1.0,
    KernelKind.EMBEDDING: 0.6,
    KernelKind.MEMCPY: 0.4,
    KernelKind.COLLECTIVE: 0.5,
    KernelKind.CUSTOM: 2.0,
    KernelKind.FUSED: 1.6,
}


def compute_kernel_counters(desc: KernelDesc, spec: DeviceSpec, duration_us: float = 0.0) -> KernelCounters:
    """Derive per-kernel micro counters from a kernel descriptor.

    The mapping is analytic:

    * IPC saturates towards a per-kind ceiling as arithmetic intensity
      grows (compute-bound kernels retire more instructions per cycle),
    * L1/L2 hit rates follow the kernel's locality hint, with the L2 always
      catching a larger fraction than the L1,
    * SM throughput is occupancy scaled by how compute-bound the kernel is.
    """
    intensity = desc.arithmetic_intensity
    ceiling = _KIND_IPC_CEILING.get(desc.kind, 1.5)
    # Smoothly interpolate between a bandwidth-bound floor and the ceiling.
    saturation = intensity / (intensity + 40.0)
    ipc = ceiling * (0.25 + 0.75 * saturation) * (0.6 + 0.4 * desc.occupancy)

    locality = max(0.0, min(1.0, desc.locality))
    l1_hit = 0.20 + 0.70 * locality
    l2_hit = min(0.98, l1_hit + 0.18 + 0.10 * locality)

    compute_boundness = saturation
    sm_throughput = desc.occupancy * (0.35 + 0.65 * compute_boundness)

    return KernelCounters(
        kernel_name=desc.name,
        ipc=ipc,
        l1_hit_rate=l1_hit,
        l2_hit_rate=l2_hit,
        sm_throughput=min(1.0, sm_throughput),
        duration_us=duration_us,
    )


def aggregate_kernel_counters(counters: Iterable[KernelCounters]) -> Optional[KernelCounters]:
    """Duration-weighted average of per-kernel counters ("overall" in Fig. 6)."""
    counters = list(counters)
    if not counters:
        return None
    total = sum(c.duration_us for c in counters)
    if total <= 0:
        weights = [1.0 for _ in counters]
        total = float(len(counters))
    else:
        weights = [c.duration_us for c in counters]
    return KernelCounters(
        kernel_name="overall",
        ipc=sum(c.ipc * w for c, w in zip(counters, weights)) / total,
        l1_hit_rate=sum(c.l1_hit_rate * w for c, w in zip(counters, weights)) / total,
        l2_hit_rate=sum(c.l2_hit_rate * w for c, w in zip(counters, weights)) / total,
        sm_throughput=sum(c.sm_throughput * w for c, w in zip(counters, weights)) / total,
        duration_us=total,
    )


# ----------------------------------------------------------------------
# Macro-level metrics
# ----------------------------------------------------------------------
def compute_system_metrics(
    stats: TimelineStats,
    spec: DeviceSpec,
    power_limit_w: Optional[float] = None,
) -> SystemMetrics:
    """Derive Figure 5-style macro metrics from a resolved timeline."""
    power_model = PowerModel(spec, power_limit_w)
    sm_util = stats.sm_utilization
    power = power_model.average_power_w(stats.busy_fraction, sm_util)
    return SystemMetrics(
        execution_time_ms=stats.wall_time_us / 1e3,
        sm_utilization_pct=sm_util * 100.0,
        hbm_bandwidth_gbps=stats.hbm_bandwidth_gbps,
        gpu_power_w=power,
    )
