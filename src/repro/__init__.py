"""Reproduction of *Mystique: Enabling Accurate and Scalable Generation of
Production AI Benchmarks* (Liang et al., ISCA 2023).

The package is organised into:

``repro.torchsim``
    A PyTorch-like framework substrate: tensors, operators (ATen-style,
    communication, fused, custom), streams, a profiler, and the
    ExecutionGraphObserver that captures execution traces.

``repro.hardware``
    Device specifications and a roofline-style performance model that turns
    operator invocations into simulated GPU kernel timelines and
    system-level metrics (SM utilisation, HBM bandwidth, power).

``repro.et``
    The execution-trace (ET) format, analyzer, builder and similarity
    comparator.

``repro.core``
    Mystique itself: operator selection, operator reconstruction, tensor
    management, communication replay, stream assignment, the ET replayer,
    standalone benchmark generation, subtrace replay and scaled-down
    performance emulation.

``repro.workloads``
    The four evaluated workloads (PARAM linear, ResNet, ASR, RM) and the
    distributed data-parallel machinery needed to run them.

``repro.cluster``
    Multi-rank distributed replay: a virtual-time collective scheduler
    that matches collectives across per-rank traces, prices each once,
    and releases all participants at the same virtual completion time —
    making straggler skew and comm/compute overlap measurable.

``repro.bench``
    Harness utilities that regenerate every table and figure of the paper's
    evaluation section.

``repro.service``
    Batch replay orchestration: a trace repository, a content-addressed
    result cache, a ``concurrent.futures`` worker pool, declarative
    cross-device sweeps, and the ``python -m repro`` CLI.

``repro.api``
    The stable public facade: ``replay()`` (a fluent session over the
    stage pipeline), ``capture()``, ``compare()`` and ``sweep()``, plus
    the stage/hook protocol and ready-made hooks.  Start here:
    ``import repro.api as api``.
"""

from repro.version import __version__

__all__ = ["__version__"]
