"""Entry point for ``python -m repro``.

Delegates to :func:`repro.service.cli.main`, the batch replay orchestration
CLI (``list-traces``, ``replay``, ``sweep``).
"""

import sys

from repro.service.cli import main

if __name__ == "__main__":
    sys.exit(main())
