"""Execution trace (ET) format and tooling.

The execution trace is the central artifact of Mystique: a runtime recording
of a model's operators together with their metadata (schema, input/output
arguments, shapes, dtypes, parent/child relationships), captured at operator
granularity.  This subpackage contains:

* :mod:`~repro.et.schema` — the node schema of Table 2 and argument
  encoding/decoding helpers,
* :mod:`~repro.et.trace` — the trace container with (de)serialisation,
* :mod:`~repro.et.analyzer` — trace statistics, operator-category breakdowns
  and population-weight selection over a trace database,
* :mod:`~repro.et.builder` — preprocessing, validation and composition of
  traces,
* :mod:`~repro.et.comparator` — the similarity measurement used by the
  feedback loop between replayed and original traces.
"""

from repro.et.schema import ETNode, encode_arg, decode_tensor_ref, is_tensor_type, ROOT_NODE_ID
from repro.et.trace import ExecutionTrace
from repro.et.analyzer import ETAnalyzer, CategoryBreakdown, TraceDatabase
from repro.et.builder import ETBuilder
from repro.et.comparator import TraceComparator, SimilarityReport

__all__ = [
    "ETNode",
    "encode_arg",
    "decode_tensor_ref",
    "is_tensor_type",
    "ROOT_NODE_ID",
    "ExecutionTrace",
    "ETAnalyzer",
    "CategoryBreakdown",
    "TraceDatabase",
    "ETBuilder",
    "TraceComparator",
    "SimilarityReport",
]
