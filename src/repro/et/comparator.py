"""Similarity measurement between original and replayed runs.

Figure 3 includes a feedback loop that compares the replayed benchmark
against the original traces to validate (and improve) the methodology.  The
comparator quantifies that similarity along the axes the paper evaluates:

* end-to-end execution time (Table 4),
* system-level metrics — SM utilisation, HBM bandwidth, power (Figure 5),
* per-operator GPU time (the zoomed-in comparison of Figure 4),
* micro-architectural counters (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence


def relative_error(original: float, replay: float) -> float:
    """Absolute relative error, with a zero-original guard."""
    if original == 0:
        return 0.0 if replay == 0 else float("inf")
    return abs(replay - original) / abs(original)


@dataclass
class SimilarityReport:
    """Outcome of one original-vs-replay comparison."""

    execution_time_error: float = 0.0
    metric_errors: Dict[str, float] = field(default_factory=dict)
    per_operator_errors: Dict[str, float] = field(default_factory=dict)

    @property
    def max_metric_error(self) -> float:
        if not self.metric_errors:
            return 0.0
        return max(self.metric_errors.values())

    @property
    def mean_operator_error(self) -> float:
        if not self.per_operator_errors:
            return 0.0
        return sum(self.per_operator_errors.values()) / len(self.per_operator_errors)

    def similarity_score(self) -> float:
        """A single [0, 1] score: 1 means indistinguishable from the original."""
        errors = [self.execution_time_error, *self.metric_errors.values()]
        if not errors:
            return 1.0
        mean_error = sum(min(error, 1.0) for error in errors) / len(errors)
        return max(0.0, 1.0 - mean_error)

    def passes(self, threshold: float = 0.15) -> bool:
        """True when every compared quantity is within ``threshold``."""
        if self.execution_time_error > threshold:
            return False
        return all(error <= threshold for error in self.metric_errors.values())


class TraceComparator:
    """Compares measured results of an original run and its replay."""

    def compare_execution_time(self, original_us: float, replay_us: float) -> SimilarityReport:
        return SimilarityReport(execution_time_error=relative_error(original_us, replay_us))

    def compare_metrics(
        self,
        original: Mapping[str, float],
        replay: Mapping[str, float],
        execution_time_key: Optional[str] = "execution_time_ms",
    ) -> SimilarityReport:
        """Compare two metric dictionaries key by key."""
        report = SimilarityReport()
        for key, original_value in original.items():
            if key not in replay:
                continue
            error = relative_error(original_value, replay[key])
            if key == execution_time_key:
                report.execution_time_error = error
            else:
                report.metric_errors[key] = error
        return report

    def compare_operator_times(
        self,
        original: Mapping[str, float],
        replay: Mapping[str, float],
        top_k: Optional[int] = None,
    ) -> SimilarityReport:
        """Compare per-operator (or per-kernel) GPU time breakdowns.

        ``top_k`` restricts the comparison to the longest-running original
        operators, as in Figure 6's "top 10 kernels by runtime".
        """
        names = sorted(original, key=lambda name: original[name], reverse=True)
        if top_k is not None:
            names = names[:top_k]
        report = SimilarityReport()
        total_original = sum(original.get(name, 0.0) for name in names)
        total_replay = sum(replay.get(name, 0.0) for name in names)
        report.execution_time_error = relative_error(total_original, total_replay)
        for name in names:
            report.per_operator_errors[name] = relative_error(
                original.get(name, 0.0), replay.get(name, 0.0)
            )
        return report
