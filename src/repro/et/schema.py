"""Execution-trace node schema (Table 2 of the paper).

Each node records:

==============  ======================================================
Key             Description
==============  ======================================================
name            Name of node
id              Unique ID of this node (assigned in execution order)
parent          Parent node ID
op_schema       PyTorch-style operator schema string
inputs          Array of input args (tensor refs or actual values)
input_shapes    Array of input shapes (``[]`` for non-tensor args)
input_types     Array of input types (``""`` for non-tensor args)
outputs         Array of output args
output_shapes   Array of output shapes
output_types    Array of output types
==============  ======================================================

Tensor arguments are encoded as the six-element identity tuple
``(tensor_id, storage_id, offset, numel, itemsize, device)``; the execution
order across nodes is not stored explicitly but follows from the node IDs,
which are assigned in increasing execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: ID of the synthetic root node every trace contains.
ROOT_NODE_ID = 1

#: Marker type strings used in ``input_types`` / ``output_types``.
_TENSOR_TYPE_PREFIX = "Tensor("
_GENERIC_LIST_PREFIX = "GenericList["


def is_tensor_type(type_str: str) -> bool:
    """True when a recorded type string denotes a single tensor argument."""
    return type_str.startswith(_TENSOR_TYPE_PREFIX)


def is_tensor_list_type(type_str: str) -> bool:
    """True when a recorded type string denotes a list of tensors."""
    return type_str.startswith(_GENERIC_LIST_PREFIX) and _TENSOR_TYPE_PREFIX in type_str


def encode_arg(value: Any) -> Tuple[Any, Any, str]:
    """Encode one operator argument into ``(value, shape, type)``.

    Tensors become their six-element identity tuple; lists of tensors become
    lists of tuples; everything else is stored verbatim with an empty shape,
    exactly as in the PyTorch execution trace.
    """
    # Duck-typed to avoid importing torchsim (the ET package must be usable
    # on traces alone, with no framework installed).
    if hasattr(value, "id") and hasattr(value, "shape") and hasattr(value, "type_string"):
        return list(value.id), list(value.shape), value.type_string()
    if isinstance(value, (list, tuple)) and value and all(
        hasattr(item, "id") and hasattr(item, "type_string") for item in value
    ):
        ids = [list(item.id) for item in value]
        shapes = [list(item.shape) for item in value]
        inner = ",".join(item.type_string() for item in value)
        return ids, shapes, f"GenericList[{inner}]"
    if isinstance(value, bool):
        return value, [], "Bool"
    if isinstance(value, int):
        return value, [], "Int"
    if isinstance(value, float):
        return value, [], "Double"
    if isinstance(value, str):
        return value, [], "String"
    if value is None:
        return None, [], "None"
    if isinstance(value, dict):
        return dict(value), [], "Dict"
    if isinstance(value, (list, tuple)):
        return list(value), [], "GenericList[Int]" if all(
            isinstance(item, int) for item in value
        ) else "GenericList"
    return str(value), [], "Unknown"


def decode_tensor_ref(value: Any) -> Optional[Tuple[int, int, int, int, int, str]]:
    """Decode an encoded tensor reference back into its identity tuple.

    Returns ``None`` when the value is not a tensor reference.
    """
    if (
        isinstance(value, (list, tuple))
        and len(value) == 6
        and all(isinstance(item, int) for item in value[:5])
        and isinstance(value[5], str)
    ):
        return (int(value[0]), int(value[1]), int(value[2]), int(value[3]), int(value[4]), value[5])
    return None


@dataclass
class ETNode:
    """One node of an execution trace (Table 2 schema)."""

    name: str
    id: int
    parent: int
    op_schema: str = ""
    inputs: List[Any] = field(default_factory=list)
    input_shapes: List[Any] = field(default_factory=list)
    input_types: List[str] = field(default_factory=list)
    outputs: List[Any] = field(default_factory=list)
    output_shapes: List[Any] = field(default_factory=list)
    output_types: List[str] = field(default_factory=list)
    #: Extra metadata that is not part of the Table 2 schema but that the
    #: PyTorch observer also records (thread id, record-function labels...).
    attrs: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def namespace(self) -> str:
        """Operator namespace (``aten``, ``c10d``, ``fbgemm`` ...)."""
        if "::" in self.name:
            return self.name.split("::", 1)[0]
        return ""

    @property
    def is_operator(self) -> bool:
        """True for real operator invocations (they carry a schema).

        Annotation nodes (``record_function`` labels, autograd wrappers,
        the profiler step markers) have no schema and are never replayed
        directly — the replayer descends into their children instead.
        """
        return bool(self.op_schema)

    def input_tensor_refs(self) -> List[Tuple[int, int, int, int, int, str]]:
        """All tensor identity tuples appearing in the inputs."""
        refs = []
        for value, type_str in zip(self.inputs, self.input_types):
            refs.extend(_collect_tensor_refs(value, type_str))
        return refs

    def output_tensor_refs(self) -> List[Tuple[int, int, int, int, int, str]]:
        """All tensor identity tuples appearing in the outputs."""
        refs = []
        for value, type_str in zip(self.outputs, self.output_types):
            refs.extend(_collect_tensor_refs(value, type_str))
        return refs

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "op_schema": self.op_schema,
            "inputs": self.inputs,
            "input_shapes": self.input_shapes,
            "input_types": self.input_types,
            "outputs": self.outputs,
            "output_shapes": self.output_shapes,
            "output_types": self.output_types,
        }
        if self.attrs:
            data["attrs"] = self.attrs
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ETNode":
        return cls(
            name=data["name"],
            id=int(data["id"]),
            parent=int(data["parent"]),
            op_schema=data.get("op_schema", ""),
            inputs=list(data.get("inputs", [])),
            input_shapes=list(data.get("input_shapes", [])),
            input_types=list(data.get("input_types", [])),
            outputs=list(data.get("outputs", [])),
            output_shapes=list(data.get("output_shapes", [])),
            output_types=list(data.get("output_types", [])),
            attrs=dict(data.get("attrs", {})),
        )


def _collect_tensor_refs(value: Any, type_str: str) -> List[Tuple[int, int, int, int, int, str]]:
    refs: List[Tuple[int, int, int, int, int, str]] = []
    if is_tensor_type(type_str):
        ref = decode_tensor_ref(value)
        if ref is not None:
            refs.append(ref)
    elif is_tensor_list_type(type_str) and isinstance(value, (list, tuple)):
        for item in value:
            ref = decode_tensor_ref(item)
            if ref is not None:
                refs.append(ref)
    return refs
