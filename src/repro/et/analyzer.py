"""Execution-trace analysis.

The ET analyzer of Figure 3 sits between trace collection and replay: it
computes statistics over captured traces (operator-category breakdowns such
as Figure 2, per-operator histograms) and selects which traces from a fleet
trace database to turn into benchmarks (population-weight selection,
Section 8.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.et.schema import ETNode
from repro.et.trace import ExecutionTrace
from repro.torchsim.dtypes import DType

#: Category labels used throughout the analysis (Figure 2's legend).
CATEGORY_ATEN = "aten"
CATEGORY_COMMS = "comms"
CATEGORY_FUSED = "fused"
CATEGORY_CUSTOM = "custom"
ALL_CATEGORIES = (CATEGORY_ATEN, CATEGORY_COMMS, CATEGORY_FUSED, CATEGORY_CUSTOM)

#: Namespaces mapped onto the communication category.
_COMM_NAMESPACES = {"c10d", "nccl"}
#: Namespaces mapped onto the fused category.
_FUSED_NAMESPACES = {"fused", "prim"}


def categorize_node(node: ETNode) -> str:
    """Map an operator node onto one of the four categories of Section 3.3."""
    namespace = node.namespace
    if namespace == "aten":
        return CATEGORY_ATEN
    if namespace in _COMM_NAMESPACES:
        return CATEGORY_COMMS
    if namespace in _FUSED_NAMESPACES:
        return CATEGORY_FUSED
    return CATEGORY_CUSTOM


#: Name prefix of the autograd-engine wrapper annotations the PyTorch
#: observer records around every backward step.
AUTOGRAD_WRAPPER_PREFIX = "autograd::engine::evaluate_function"


def backward_node_ids(trace: ExecutionTrace) -> Set[int]:
    """IDs of all nodes executed by the autograd engine (backward pass).

    Backward steps appear as ``autograd::engine::evaluate_function: …``
    wrapper annotations whose descendants are the actual backward
    operators; tensors produced inside that scope are gradients (the
    classification :mod:`repro.memory.lifetimes` builds on).
    """
    ids: Set[int] = set()
    for node in trace.sorted_nodes():
        if node.name.startswith(AUTOGRAD_WRAPPER_PREFIX):
            ids.add(node.id)
            ids.update(child.id for child in trace.descendants(node.id))
    return ids


# ----------------------------------------------------------------------
# Tensor-size accounting
#
# The one place byte arithmetic over recorded tensors lives: identity
# tuples carry (numel, itemsize) directly, and shape/type pairs resolve
# through the dtype table.  The replayer's tensor manager, the
# communication extractor and the memory subsystem all defer here.
# ----------------------------------------------------------------------
def dtype_from_type_string(type_str: str, default: DType = DType.FLOAT32) -> DType:
    """Resolve a recorded type string (``"Tensor(float32)"``) to a dtype,
    falling back to ``default`` for exotic/unknown element types."""
    try:
        return DType.from_name(type_str)
    except ValueError:
        return default


def tensor_ref_bytes(ref: Sequence) -> int:
    """Bytes of one recorded tensor identity tuple (``numel × itemsize``)."""
    return int(ref[3]) * int(ref[4])


def tensor_bytes_from_shape(shape: Optional[Sequence], type_str: str) -> int:
    """Bytes of a tensor described by recorded shape + type string."""
    numel = int(math.prod(int(dim) for dim in shape)) if shape else 1
    return numel * dtype_from_type_string(type_str).itemsize


def node_input_tensor_bytes(node: ETNode) -> int:
    """Total bytes of all tensor inputs of a node."""
    return sum(tensor_ref_bytes(ref) for ref in node.input_tensor_refs())


def node_output_tensor_bytes(node: ETNode) -> int:
    """Total bytes of all tensor outputs of a node."""
    return sum(tensor_ref_bytes(ref) for ref in node.output_tensor_refs())


def iter_top_level_operators(trace: ExecutionTrace) -> List[ETNode]:
    """Operators kept after parent/child deduplication (Section 4.2).

    Traverse nodes in execution order; keep every operator node encountered
    and skip all of its descendants.  Annotation nodes (no schema) are not
    kept themselves but their children are visited.
    """
    selected: List[ETNode] = []
    skip_below: set = set()
    for node in trace.sorted_nodes():
        if node.parent in skip_below or node.id in skip_below:
            skip_below.add(node.id)
            continue
        if node.is_operator:
            selected.append(node)
            skip_below.add(node.id)
    return selected


@dataclass
class CategoryBreakdown:
    """Operator-category breakdown (count / CPU time / exposed GPU time)."""

    counts: Dict[str, int] = field(default_factory=dict)
    cpu_time_us: Dict[str, float] = field(default_factory=dict)
    gpu_exposed_time_us: Dict[str, float] = field(default_factory=dict)

    def _fractions(self, table: Dict[str, float]) -> Dict[str, float]:
        total = sum(table.values())
        if total <= 0:
            return {category: 0.0 for category in ALL_CATEGORIES}
        return {category: table.get(category, 0.0) / total for category in ALL_CATEGORIES}

    def count_fractions(self) -> Dict[str, float]:
        return self._fractions({k: float(v) for k, v in self.counts.items()})

    def cpu_time_fractions(self) -> Dict[str, float]:
        return self._fractions(self.cpu_time_us)

    def gpu_exposed_fractions(self) -> Dict[str, float]:
        return self._fractions(self.gpu_exposed_time_us)


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _interval_length(intervals: Sequence[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


def _subtract(base, cover):
    result = []
    for start, end in base:
        segments = [(start, end)]
        for c_start, c_end in cover:
            next_segments = []
            for s_start, s_end in segments:
                if c_end <= s_start or c_start >= s_end:
                    next_segments.append((s_start, s_end))
                    continue
                if c_start > s_start:
                    next_segments.append((s_start, c_start))
                if c_end < s_end:
                    next_segments.append((c_end, s_end))
            segments = next_segments
            if not segments:
                break
        result.extend(segments)
    return result


class ETAnalyzer:
    """Statistics and selection over execution traces."""

    def __init__(self, trace: ExecutionTrace, profiler_trace=None):
        self.trace = trace
        self.profiler_trace = profiler_trace

    # ------------------------------------------------------------------
    def operator_counts(self) -> Dict[str, int]:
        """Occurrences of each operator name among the selected operators."""
        counts: Dict[str, int] = {}
        for node in iter_top_level_operators(self.trace):
            counts[node.name] = counts.get(node.name, 0) + 1
        return counts

    def category_breakdown(self) -> CategoryBreakdown:
        """The Figure 2 breakdown: count, CPU time, exposed GPU time.

        CPU time and exposed GPU time require the paired profiler trace; if
        it is missing, only counts are populated.
        """
        breakdown = CategoryBreakdown()
        selected = iter_top_level_operators(self.trace)
        selected_ids = {node.id for node in selected}
        for node in selected:
            category = categorize_node(node)
            breakdown.counts[category] = breakdown.counts.get(category, 0) + 1

        if self.profiler_trace is None:
            return breakdown

        # CPU time: durations of the cpu_op spans of the selected operators.
        node_category = {node.id: categorize_node(node) for node in selected}
        for event in self.profiler_trace.cpu_ops():
            if event.op_node_id in selected_ids:
                category = node_category[event.op_node_id]
                breakdown.cpu_time_us[category] = (
                    breakdown.cpu_time_us.get(category, 0.0) + event.dur
                )

        # Exposed GPU time: per category, kernel busy intervals not covered
        # by kernels of any other category.
        descendants_category: Dict[int, str] = dict(node_category)
        for node in selected:
            category = categorize_node(node)
            for child in self.trace.descendants(node.id):
                descendants_category[child.id] = category
        category_intervals: Dict[str, List[Tuple[float, float]]] = {}
        for kernel in self.profiler_trace.kernels():
            category = descendants_category.get(kernel.op_node_id)
            if category is None:
                category = kernel.args.get("category", CATEGORY_ATEN)
            category_intervals.setdefault(category, []).append((kernel.ts, kernel.end))
        for category, intervals in category_intervals.items():
            own = _merge_intervals(intervals)
            others: List[Tuple[float, float]] = []
            for other, other_intervals in category_intervals.items():
                if other != category:
                    others.extend(other_intervals)
            exposed = _subtract(own, _merge_intervals(others))
            breakdown.gpu_exposed_time_us[category] = _interval_length(exposed)
        return breakdown

    # ------------------------------------------------------------------
    def operator_gpu_time(self) -> Dict[str, float]:
        """Total GPU kernel time attributed to each selected operator name."""
        if self.profiler_trace is None:
            return {}
        selected = iter_top_level_operators(self.trace)
        own: Dict[int, str] = {}
        for node in selected:
            own[node.id] = node.name
            for child in self.trace.descendants(node.id):
                own[child.id] = node.name
        totals: Dict[str, float] = {}
        for kernel in self.profiler_trace.kernels():
            name = own.get(kernel.op_node_id)
            if name is None:
                continue
            totals[name] = totals.get(name, 0.0) + kernel.dur
        return totals


@dataclass
class TraceDatabaseEntry:
    """One workload's traces in the fleet trace database."""

    name: str
    trace: ExecutionTrace
    population: float = 1.0
    profiler_trace: object = None


class TraceDatabase:
    """A fleet-level collection of captured traces.

    Mystique's ET analyzer selects "the most commonly-occurring" traces from
    the database using population weights (how many fleet jobs the trace
    represents); more sophisticated weightings (timing cost) are future work
    in the paper and exposed here via the ``key`` parameter.
    """

    def __init__(self) -> None:
        self._entries: List[TraceDatabaseEntry] = []

    def add(self, name: str, trace: ExecutionTrace, population: float = 1.0, profiler_trace=None) -> TraceDatabaseEntry:
        entry = TraceDatabaseEntry(name=name, trace=trace, population=population, profiler_trace=profiler_trace)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[TraceDatabaseEntry]:
        return list(self._entries)

    def select_top(self, count: int, key: str = "population") -> List[TraceDatabaseEntry]:
        """Select the ``count`` most important traces.

        ``key`` may be ``"population"`` (default, fleet population weight)
        or ``"gpu_time"`` (population x captured GPU time, the "timing cost"
        enhancement sketched in Section 8.2).
        """
        def weight(entry: TraceDatabaseEntry) -> float:
            if key == "population":
                return entry.population
            if key == "gpu_time":
                gpu_time = (
                    entry.profiler_trace.total_gpu_time_us()
                    if entry.profiler_trace is not None
                    else 1.0
                )
                return entry.population * gpu_time
            raise ValueError(f"unknown selection key: {key!r}")

        return sorted(self._entries, key=weight, reverse=True)[:count]
