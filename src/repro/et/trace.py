"""The execution-trace container.

An :class:`ExecutionTrace` is an ordered collection of
:class:`~repro.et.schema.ETNode` objects plus trace-level metadata (rank,
world size, workload name, capture platform).  Node IDs are assigned in
execution order, so iterating nodes sorted by ID reproduces the original
execution order — the property Mystique's replayer relies on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.et.schema import ETNode, ROOT_NODE_ID

#: Version string written into serialised traces.
TRACE_SCHEMA_VERSION = "1.0.2-repro"


@dataclass
class ExecutionTrace:
    """A captured execution trace."""

    nodes: List[ETNode] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    def add_node(self, node: ETNode) -> ETNode:
        self.nodes.append(node)
        self._index_dirty = True
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[ETNode]:
        return iter(self.sorted_nodes())

    def sorted_nodes(self) -> List[ETNode]:
        """Nodes in execution order (increasing ID)."""
        return sorted(self.nodes, key=lambda node: node.id)

    def get(self, node_id: int) -> ETNode:
        index = self._node_index()
        if node_id not in index:
            raise KeyError(f"no node with id {node_id}")
        return index[node_id]

    def has(self, node_id: int) -> bool:
        return node_id in self._node_index()

    def children(self, node_id: int) -> List[ETNode]:
        """Direct children of a node, in execution order."""
        return sorted(
            (node for node in self.nodes if node.parent == node_id),
            key=lambda node: node.id,
        )

    def descendants(self, node_id: int) -> List[ETNode]:
        """All transitive children of a node, in execution order."""
        result: List[ETNode] = []
        frontier = [node_id]
        children_map = self._children_index()
        while frontier:
            current = frontier.pop()
            for child in children_map.get(current, []):
                result.append(child)
                frontier.append(child.id)
        return sorted(result, key=lambda node: node.id)

    def root_nodes(self) -> List[ETNode]:
        """Nodes whose parent is the synthetic root (top-level operators)."""
        return self.children(ROOT_NODE_ID)

    def operators(self) -> List[ETNode]:
        """All nodes that are real operator invocations (have a schema)."""
        return [node for node in self.sorted_nodes() if node.is_operator]

    def find_by_name(self, name: str) -> List[ETNode]:
        """All nodes whose name matches exactly, in execution order."""
        return [node for node in self.sorted_nodes() if node.name == name]

    def find_by_label(self, label: str) -> List[ETNode]:
        """All annotation nodes whose name contains ``label``.

        ``record_function`` labels (e.g. ``"## forward ##"``) show up as
        annotation nodes; subtrace replay locates them this way.
        """
        return [node for node in self.sorted_nodes() if label in node.name]

    # ------------------------------------------------------------------
    # Indexing helpers
    # ------------------------------------------------------------------
    _index_dirty: bool = field(default=True, repr=False)
    _id_index: Dict[int, ETNode] = field(default_factory=dict, repr=False)
    _child_index: Dict[int, List[ETNode]] = field(default_factory=dict, repr=False)

    def _rebuild_indexes(self) -> None:
        self._id_index = {node.id: node for node in self.nodes}
        self._child_index = {}
        for node in self.nodes:
            self._child_index.setdefault(node.parent, []).append(node)
        for children in self._child_index.values():
            children.sort(key=lambda node: node.id)
        self._index_dirty = False

    def _node_index(self) -> Dict[int, ETNode]:
        if self._index_dirty:
            self._rebuild_indexes()
        return self._id_index

    def _children_index(self) -> Dict[int, List[ETNode]]:
        if self._index_dirty:
            self._rebuild_indexes()
        return self._child_index

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "metadata": self.metadata,
            "nodes": [node.to_dict() for node in self.sorted_nodes()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutionTrace":
        nodes = [ETNode.from_dict(entry) for entry in data.get("nodes", [])]
        return cls(nodes=nodes, metadata=dict(data.get("metadata", {})))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON form used for content hashing."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"), default=str)

    def digest(self) -> str:
        """Stable content hash of the trace (hex SHA-256).

        Two traces with the same nodes and metadata produce the same digest
        regardless of on-disk formatting; the trace repository and result
        cache of :mod:`repro.service` key on this.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ExecutionTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> Path:
        """Write the trace to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ExecutionTrace":
        return cls.from_json(Path(path).read_text())
