"""Execution-trace building and preprocessing.

The ET builder of Figure 3 prepares raw captured traces for replay:
validation, normalisation (re-parenting orphans, dropping empty annotation
scaffolding), extraction of labelled subtraces, filtering by operator type,
and composition of several traces/subtraces into a single replayable trace
(the aggregation use case sketched in Section 8.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.et.analyzer import categorize_node
from repro.et.schema import ETNode, ROOT_NODE_ID
from repro.et.trace import ExecutionTrace


@dataclass
class ValidationIssue:
    """One problem found while validating a trace."""

    node_id: int
    kind: str
    message: str


class ETBuilder:
    """Preprocessing, validation and composition of execution traces."""

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    @staticmethod
    def validate(trace: ExecutionTrace) -> List[ValidationIssue]:
        """Check structural invariants; returns a list of issues (empty = ok).

        Checked invariants: unique node IDs, parents that exist, a single
        root, and argument arrays of consistent lengths.
        """
        issues: List[ValidationIssue] = []
        seen: set = set()
        ids = {node.id for node in trace.nodes}
        for node in trace.sorted_nodes():
            if node.id in seen:
                issues.append(ValidationIssue(node.id, "duplicate_id", f"node id {node.id} appears twice"))
            seen.add(node.id)
            if node.id != ROOT_NODE_ID and node.parent not in ids:
                issues.append(
                    ValidationIssue(node.id, "missing_parent", f"parent {node.parent} of node {node.id} not in trace")
                )
            if not (len(node.inputs) == len(node.input_shapes) == len(node.input_types)):
                issues.append(
                    ValidationIssue(node.id, "input_arity", "inputs/input_shapes/input_types lengths differ")
                )
            if not (len(node.outputs) == len(node.output_shapes) == len(node.output_types)):
                issues.append(
                    ValidationIssue(node.id, "output_arity", "outputs/output_shapes/output_types lengths differ")
                )
        return issues

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------
    @staticmethod
    def preprocess(trace: ExecutionTrace) -> ExecutionTrace:
        """Return a cleaned copy: sorted, orphans re-parented to the root."""
        ids = {node.id for node in trace.nodes}
        cleaned = ExecutionTrace(metadata=dict(trace.metadata))
        has_root = any(node.id == ROOT_NODE_ID for node in trace.nodes)
        if not has_root:
            cleaned.add_node(ETNode(name="[pytorch|profiler|execution_graph|process]", id=ROOT_NODE_ID, parent=0))
        for node in trace.sorted_nodes():
            copy = ETNode.from_dict(node.to_dict())
            if copy.id != ROOT_NODE_ID and copy.parent not in ids:
                copy.parent = ROOT_NODE_ID
            cleaned.add_node(copy)
        return cleaned

    # ------------------------------------------------------------------
    # Extraction / filtering
    # ------------------------------------------------------------------
    @staticmethod
    def extract_subtrace(trace: ExecutionTrace, label: str) -> ExecutionTrace:
        """Extract the subtree under a ``record_function`` label.

        The label node becomes a child of a fresh root; everything outside
        the labelled range is dropped.  This powers the subtrace replay use
        case of Section 7.1.
        """
        anchors = trace.find_by_label(label)
        if not anchors:
            raise KeyError(f"label {label!r} not found in trace")
        sub = ExecutionTrace(metadata={**trace.metadata, "subtrace_label": label})
        sub.add_node(ETNode(name="[pytorch|profiler|execution_graph|process]", id=ROOT_NODE_ID, parent=0))
        keep_ids = set()
        for anchor in anchors:
            keep_ids.add(anchor.id)
            keep_ids.update(node.id for node in trace.descendants(anchor.id))
        for node in trace.sorted_nodes():
            if node.id not in keep_ids:
                continue
            copy = ETNode.from_dict(node.to_dict())
            if copy.id in {anchor.id for anchor in anchors}:
                copy.parent = ROOT_NODE_ID
            sub.add_node(copy)
        return sub

    @staticmethod
    def filter_by_category(trace: ExecutionTrace, categories: Sequence[str]) -> ExecutionTrace:
        """Keep only operators of the given categories (plus their children).

        Used e.g. to replay only communication operators when diagnosing
        network issues (Section 7.1).
        """
        wanted = set(categories)
        filtered = ExecutionTrace(metadata={**trace.metadata, "category_filter": sorted(wanted)})
        filtered.add_node(ETNode(name="[pytorch|profiler|execution_graph|process]", id=ROOT_NODE_ID, parent=0))
        keep_ids: set = set()
        for node in trace.sorted_nodes():
            if node.is_operator and categorize_node(node) in wanted and node.id not in keep_ids:
                keep_ids.add(node.id)
                keep_ids.update(child.id for child in trace.descendants(node.id))
        for node in trace.sorted_nodes():
            if node.id not in keep_ids:
                continue
            copy = ETNode.from_dict(node.to_dict())
            if copy.parent not in keep_ids:
                copy.parent = ROOT_NODE_ID
            filtered.add_node(copy)
        return filtered

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    @staticmethod
    def compose(traces: Sequence[ExecutionTrace], name: str = "composed") -> ExecutionTrace:
        """Concatenate several traces into one replayable trace.

        Node IDs and tensor IDs are re-numbered so the pieces cannot
        collide; each source trace's top-level nodes keep their relative
        execution order and are appended after the previous trace's nodes.
        This enables combining portions of different ETs into a single
        replay trace for aggregate benchmarks (Section 8.2).
        """
        composed = ExecutionTrace(metadata={"composed_from": [t.metadata.get("workload", "?") for t in traces], "workload": name})
        composed.add_node(ETNode(name="[pytorch|profiler|execution_graph|process]", id=ROOT_NODE_ID, parent=0))
        next_id = itertools.count(ROOT_NODE_ID + 1)
        for trace_index, trace in enumerate(traces):
            id_map: Dict[int, int] = {ROOT_NODE_ID: ROOT_NODE_ID}
            for node in trace.sorted_nodes():
                if node.id == ROOT_NODE_ID:
                    continue
                new_id = next(next_id)
                id_map[node.id] = new_id
            for node in trace.sorted_nodes():
                if node.id == ROOT_NODE_ID:
                    continue
                copy = ETNode.from_dict(node.to_dict())
                copy.id = id_map[node.id]
                copy.parent = id_map.get(node.parent, ROOT_NODE_ID)
                copy.inputs = _remap_tensor_ids(copy.inputs, copy.input_types, trace_index)
                copy.outputs = _remap_tensor_ids(copy.outputs, copy.output_types, trace_index)
                composed.add_node(copy)
        return composed


def _remap_tensor_ids(values: List, types: List[str], trace_index: int) -> List:
    """Shift tensor/storage IDs into a per-source-trace namespace."""
    from repro.et.schema import decode_tensor_ref, is_tensor_type, is_tensor_list_type

    offset = (trace_index + 1) * 10_000_000
    remapped = []
    for value, type_str in zip(values, types):
        if is_tensor_type(type_str):
            ref = decode_tensor_ref(value)
            if ref is not None:
                remapped.append([ref[0] + offset, ref[1] + offset, *ref[2:]])
                continue
        elif is_tensor_list_type(type_str) and isinstance(value, list):
            new_list = []
            for item in value:
                ref = decode_tensor_ref(item)
                if ref is not None:
                    new_list.append([ref[0] + offset, ref[1] + offset, *ref[2:]])
                else:
                    new_list.append(item)
            remapped.append(new_list)
            continue
        remapped.append(value)
    return remapped
