"""repro.insights — structured diagnoses on top of the telemetry layer.

Three analyses over artifacts the repo already produces:

* :func:`analyze_critical_path` / :func:`analyze_replay_result` —
  which rank, op, and collective bound end-to-end time, with straggler
  detection and a comm/compute overlap score per rank;
* :class:`RunProfile` + :func:`diff_runs` — attribute the time delta
  between two runs per stage, per op class, and per rank;
* :class:`TrajectoryStore` + :func:`check_regressions` — a perf
  watchdog over the ``BENCH_replay_throughput.json`` trajectory.

Everything serializes through ``service/serialize.py`` under
:data:`INSIGHTS_SCHEMA_VERSION`, and surfaces via
``ReplaySession/ClusterSession.analyze()``, the ``python -m repro
analyze`` CLI family, and the daemon's ``GET /jobs/<id>/analysis``.
"""

from repro.insights.critical_path import (
    CollectiveAttribution,
    CriticalPathReport,
    OpAttribution,
    RankPath,
    analyze_critical_path,
    analyze_replay_result,
    collective_name,
    format_critical_path,
)
from repro.insights.diff import (
    DEFAULT_DIFF_THRESHOLD_PCT,
    DiffEntry,
    DiffReport,
    RunProfile,
    diff_runs,
    format_diff,
)
from repro.insights.jobs import analyze_job_result
from repro.insights.regression import (
    DEFAULT_DROP_THRESHOLD_PCT,
    HISTORY_FILENAME,
    MetricSpec,
    RegressionCheck,
    RegressionReport,
    TrajectoryStore,
    WATCHED_METRICS,
    check_regressions,
    default_bench_path,
    default_history_path,
    format_regressions,
)
from repro.insights.schema import INSIGHTS_SCHEMA_VERSION

__all__ = [
    "INSIGHTS_SCHEMA_VERSION",
    "CollectiveAttribution",
    "CriticalPathReport",
    "OpAttribution",
    "RankPath",
    "analyze_critical_path",
    "analyze_replay_result",
    "collective_name",
    "format_critical_path",
    "DEFAULT_DIFF_THRESHOLD_PCT",
    "DiffEntry",
    "DiffReport",
    "RunProfile",
    "diff_runs",
    "format_diff",
    "analyze_job_result",
    "DEFAULT_DROP_THRESHOLD_PCT",
    "HISTORY_FILENAME",
    "MetricSpec",
    "RegressionCheck",
    "RegressionReport",
    "TrajectoryStore",
    "WATCHED_METRICS",
    "check_regressions",
    "default_bench_path",
    "default_history_path",
    "format_regressions",
]
