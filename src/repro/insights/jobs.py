"""Analysis of stored daemon job results.

The daemon persists each completed job's result payload (a dict — the
executor's output after a round-trip through the job store), so tenants
can ask for a diagnosis without downloading traces.  This module
dispatches on the result ``kind`` and produces the matching insights
payload: critical-path attribution for cluster jobs, a spread/outlier
summary for sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.insights.critical_path import analyze_critical_path
from repro.insights.schema import INSIGHTS_SCHEMA_VERSION


def analyze_job_result(result: Mapping[str, Any]) -> Dict[str, Any]:
    """Diagnose a completed job's stored result payload.

    Raises :class:`ValueError` for result kinds with nothing to
    analyze — the daemon maps that to HTTP 400.
    """
    kind = result.get("kind")
    if kind == "cluster":
        report = result.get("report")
        if not isinstance(report, Mapping):
            raise ValueError("cluster result carries no report to analyze")
        return analyze_critical_path(report).to_dict()
    if kind == "sweep":
        return _analyze_sweep(result)
    raise ValueError(f"cannot analyze job result of kind {kind!r}")


def _analyze_sweep(result: Mapping[str, Any]) -> Dict[str, Any]:
    """Rank sweep points by mean iteration time and summarize spread."""
    points = result.get("points") or []
    rows: List[Dict[str, Any]] = []
    for point in points:
        summary = point.get("summary") or {}
        rows.append(
            {
                "label": point.get("label"),
                "device": point.get("device"),
                "cached": point.get("cached"),
                "mean_iteration_time_us": summary.get("mean_iteration_time_us"),
            }
        )
    timed = [
        row
        for row in rows
        if isinstance(row["mean_iteration_time_us"], (int, float))
    ]
    timed.sort(key=lambda row: (-row["mean_iteration_time_us"], row["label"]))
    slowest = timed[0] if timed else None
    fastest = timed[-1] if timed else None
    spread_pct = 0.0
    if slowest and fastest and fastest["mean_iteration_time_us"] > 0:
        spread_pct = (
            (
                slowest["mean_iteration_time_us"]
                - fastest["mean_iteration_time_us"]
            )
            / fastest["mean_iteration_time_us"]
            * 100.0
        )
    by_device: Dict[str, List[float]] = {}
    for row in timed:
        by_device.setdefault(str(row["device"]), []).append(
            row["mean_iteration_time_us"]
        )
    return {
        "schema_version": INSIGHTS_SCHEMA_VERSION,
        "kind": "sweep",
        "points": len(rows),
        "cached": result.get("cached"),
        "replayed": result.get("replayed"),
        "slowest_point": slowest["label"] if slowest else None,
        "fastest_point": fastest["label"] if fastest else None,
        "spread_pct": spread_pct,
        "mean_iteration_time_us_by_device": {
            device: sum(values) / len(values)
            for device, values in sorted(by_device.items())
        },
        "rows": rows,
    }
