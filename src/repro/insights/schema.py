"""Schema version shared by every insights payload.

Lives in its own module so :mod:`repro.insights` submodules can import
it without going through the package ``__init__`` (which imports them).
"""

from __future__ import annotations

#: Version stamped on every analysis payload (critical-path, diff,
#: regression).  Adding keys is fine; renaming or removing existing
#: ones is breaking.
INSIGHTS_SCHEMA_VERSION = 1
