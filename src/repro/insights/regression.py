"""Perf-regression watchdog over the BENCH trajectory.

Turns ``BENCH_replay_throughput.json`` from a log into an enforced
contract: an append-only JSON-lines :class:`TrajectoryStore` accumulates
one entry per benchmark run, and :func:`check_regressions` compares the
current payload against (a) absolute floors/ceilings mirroring the
repo's standing perf claims and (b) the median of the recorded history,
flagging drops beyond a noise threshold.  ``python -m repro analyze
regressions`` exits non-zero when anything regresses, which is what
``make bench`` and CI run.

Median (not mean) baselines keep a single bad run in the append-only
history from poisoning the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.insights.schema import INSIGHTS_SCHEMA_VERSION

#: Relative drop (percent vs. the history median) that counts as a
#: regression for throughput-style metrics.  Generous by default: the
#: benchmarks run on whatever shared hardware CI lands on.
DEFAULT_DROP_THRESHOLD_PCT = 30.0

#: Default history file next to the BENCH trajectory file (gitignored —
#: it is per-machine measurement history, not a repo artifact).
HISTORY_FILENAME = "BENCH_history.jsonl"


@dataclass(frozen=True)
class MetricSpec:
    """One watched metric: where it lives and which direction is good."""

    path: str
    direction: str  # "higher" or "lower"
    floor: Optional[float] = None  # higher-better: hard minimum
    ceiling: Optional[float] = None  # lower-better: hard maximum


#: The watched subset of the BENCH payload.  Floors/ceilings mirror the
#: assertions ``benchmarks/test_replay_throughput.py`` already makes, so
#: the watchdog and the benchmark suite cannot disagree about the
#: contract.  Overhead metrics are checked against their absolute
#: ceiling only — they sit at the measurement noise floor, where
#: relative comparisons flag jitter, not regressions.
WATCHED_METRICS: Sequence[MetricSpec] = (
    MetricSpec("workloads.param_linear.vectorized_ops_per_sec", "higher"),
    MetricSpec("workloads.param_linear.speedup", "higher", floor=5.0),
    MetricSpec("workloads.rm.vectorized_ops_per_sec", "higher"),
    MetricSpec("workloads.rm.speedup", "higher", floor=10.0),
    MetricSpec("workloads.ddp_rm.vectorized_ops_per_sec", "higher"),
    MetricSpec("workloads.ddp_rm.speedup", "higher", floor=5.0),
    MetricSpec("profiler.overhead_pct", "lower", ceiling=5.0),
    MetricSpec("telemetry_overhead.overhead_pct", "lower", ceiling=5.0),
    MetricSpec("cluster_scale.rank_ops_per_sec", "higher"),
    MetricSpec("daemon_throughput.jobs_per_sec", "higher"),
)


def _lookup(payload: Mapping[str, Any], path: str) -> Optional[float]:
    node: Any = payload
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class TrajectoryStore:
    """Append-only JSON-lines store of benchmark payloads.

    Each line is ``{"seq": n, "bench": <payload>, "meta": {...}}``.
    Corrupt or truncated tail lines (a killed run mid-append) are
    skipped on read rather than poisoning the whole history.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def entries(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("bench"), dict):
                entries.append(entry)
        return entries

    def append(
        self, bench: Mapping[str, Any], meta: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        from repro.service import serialize

        entry = {
            "seq": len(self.entries()) + 1,
            "bench": dict(bench),
            "meta": dict(meta or {}),
        }
        with self.path.open("a") as handle:
            handle.write(serialize.dumps_compact(entry) + "\n")
        return entry

    def history(self) -> List[Dict[str, Any]]:
        """Just the bench payloads, oldest first."""
        return [entry["bench"] for entry in self.entries()]


@dataclass
class RegressionCheck:
    """Outcome of one watched metric's evaluation."""

    metric: str
    direction: str
    value: Optional[float]
    baseline: Optional[float]
    floor: Optional[float]
    ceiling: Optional[float]
    status: str  # "ok", "regression", or "missing"
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "value": self.value,
            "baseline": self.baseline,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class RegressionReport:
    """All checks for one bench payload against its history."""

    checks: List[RegressionCheck]
    drop_threshold_pct: float
    history_entries: int

    @property
    def regressions(self) -> List[RegressionCheck]:
        return [c for c in self.checks if c.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": INSIGHTS_SCHEMA_VERSION,
            "kind": "regressions",
            "ok": self.ok,
            "drop_threshold_pct": self.drop_threshold_pct,
            "history_entries": self.history_entries,
            "regressions": [c.metric for c in self.regressions],
            "checks": [c.to_dict() for c in self.checks],
        }


def check_regressions(
    bench: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]] = (),
    drop_threshold_pct: float = DEFAULT_DROP_THRESHOLD_PCT,
) -> RegressionReport:
    """Evaluate every watched metric in ``bench``.

    Higher-better metrics fail below their floor or when they drop more
    than ``drop_threshold_pct`` below the history median; lower-better
    (overhead) metrics fail above their ceiling.  Metrics missing from
    the payload are reported ``missing`` but do not fail — BENCH
    sections are written by different benchmarks at different times.
    """
    checks: List[RegressionCheck] = []
    for spec in WATCHED_METRICS:
        value = _lookup(bench, spec.path)
        baseline_values = [
            v
            for v in (_lookup(entry, spec.path) for entry in history)
            if v is not None
        ]
        baseline = _median(baseline_values) if baseline_values else None
        if value is None:
            checks.append(
                RegressionCheck(
                    metric=spec.path,
                    direction=spec.direction,
                    value=None,
                    baseline=baseline,
                    floor=spec.floor,
                    ceiling=spec.ceiling,
                    status="missing",
                    detail="not present in bench payload",
                )
            )
            continue
        status = "ok"
        detail = "within limits"
        if spec.direction == "higher":
            if spec.floor is not None and value < spec.floor:
                status = "regression"
                detail = f"{value:.3f} below hard floor {spec.floor:.3f}"
            elif baseline is not None and baseline > 0:
                drop_pct = (baseline - value) / baseline * 100.0
                if drop_pct > drop_threshold_pct:
                    status = "regression"
                    detail = (
                        f"dropped {drop_pct:.1f}% vs history median "
                        f"{baseline:.3f} (threshold {drop_threshold_pct:.1f}%)"
                    )
                else:
                    detail = f"{-drop_pct:+.1f}% vs history median {baseline:.3f}"
        else:
            if spec.ceiling is not None and value > spec.ceiling:
                status = "regression"
                detail = f"{value:.3f} above hard ceiling {spec.ceiling:.3f}"
        checks.append(
            RegressionCheck(
                metric=spec.path,
                direction=spec.direction,
                value=value,
                baseline=baseline,
                floor=spec.floor,
                ceiling=spec.ceiling,
                status=status,
                detail=detail,
            )
        )
    return RegressionReport(
        checks=checks,
        drop_threshold_pct=drop_threshold_pct,
        history_entries=len(history),
    )


def default_bench_path() -> Path:
    from repro.bench.throughput import BENCH_FILENAME, _repo_root

    return _repo_root() / BENCH_FILENAME


def default_history_path() -> Path:
    from repro.bench.throughput import _repo_root

    return _repo_root() / HISTORY_FILENAME


def format_regressions(report: RegressionReport) -> str:
    """Human-readable rendering for the CLI's non-``--json`` path."""
    from repro.bench.reporting import format_table

    rows = [
        [
            check.status.upper(),
            check.metric,
            "-" if check.value is None else f"{check.value:.3f}",
            "-" if check.baseline is None else f"{check.baseline:.3f}",
            check.detail,
        ]
        for check in report.checks
    ]
    table = format_table(
        ["status", "metric", "value", "baseline", "detail"], rows
    )
    verdict = (
        "OK — no regressions"
        if report.ok
        else f"REGRESSIONS: {', '.join(c.metric for c in report.regressions)}"
    )
    return (
        f"{table}\n\n{verdict} "
        f"(history entries: {report.history_entries}, "
        f"drop threshold: {report.drop_threshold_pct:.1f}%)"
    )
