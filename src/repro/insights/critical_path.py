"""Critical-path attribution for replay runs.

Answers the question the Gantt lanes only let a human eyeball: *which
rank, op, and collective bound end-to-end time?*  The coarse per-rank
decomposition (iteration / comm / exposed-comm / stall) comes from a
:class:`~repro.cluster.engine.ClusterReport`; the fine-grained op and
collective ranking comes from the tracer's virtual-time slices when a
trace is available.  Both inputs are accepted either as live objects or
as their ``to_dict()`` payloads, so the daemon can analyze stored job
results without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.insights.schema import INSIGHTS_SCHEMA_VERSION

#: Virtual-lane categories that make up a rank's Gantt timeline.
GANTT_CATEGORIES = ("compute", "comms", "exposed-comms", "stall")

#: Categories whose slices are attributable ops.  ``exposed-comms`` is a
#: sub-view of ``comms`` and ``stall`` is idle time, so counting either
#: would double-book the kernels.
_OP_CATEGORIES = ("compute", "comms", "aten", "fused", "custom")

#: Ranks slower than the fleet mean by more than this are stragglers.
DEFAULT_STRAGGLER_THRESHOLD_PCT = 5.0


def collective_name(op_name: str) -> str:
    """Normalize an op/stall name to its collective key.

    ``c10d::all_to_all`` and ``stall:all_to_all`` both map to
    ``all_to_all`` — the same normalization the rendezvous uses for
    matching keys.
    """
    name = op_name
    if name.startswith("stall:"):
        name = name[len("stall:"):]
    return name.split("::")[-1].lower()


@dataclass
class OpAttribution:
    """One op's share of a rank's attributable (compute + comm) time."""

    name: str
    category: str
    total_us: float
    count: int
    share_pct: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "total_us": self.total_us,
            "count": self.count,
            "share_pct": self.share_pct,
        }


@dataclass
class CollectiveAttribution:
    """A collective's cost split into overlapped / exposed / stall time."""

    name: str
    total_us: float = 0.0
    exposed_us: float = 0.0
    stall_us: float = 0.0
    count: int = 0

    @property
    def visible_us(self) -> float:
        """Time this collective actually added to the critical path."""
        return self.exposed_us + self.stall_us

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "total_us": self.total_us,
            "exposed_us": self.exposed_us,
            "stall_us": self.stall_us,
            "visible_us": self.visible_us,
            "count": self.count,
        }


@dataclass
class RankPath:
    """One rank's decomposition of the end-to-end time."""

    rank: int
    iteration_us: float
    compute_us: float
    comm_us: float
    exposed_comm_us: float
    stall_us: float
    overlap_score: float
    critical_share_pct: float
    is_straggler: bool
    #: How much longer the *other* ranks stall, on average, than this
    #: one.  In a collective-synchronized fleet iteration times equalize
    #: at every rendezvous, so the rank everyone waits for shows up as
    #: large positive drag (it stalls least), not as a longer iteration.
    drag_us: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "iteration_us": self.iteration_us,
            "compute_us": self.compute_us,
            "comm_us": self.comm_us,
            "exposed_comm_us": self.exposed_comm_us,
            "stall_us": self.stall_us,
            "overlap_score": self.overlap_score,
            "critical_share_pct": self.critical_share_pct,
            "is_straggler": self.is_straggler,
            "drag_us": self.drag_us,
        }


@dataclass
class CriticalPathReport:
    """Structured diagnosis of what bounds a replay's end-to-end time."""

    device: str
    world_size: int
    critical_path_us: float
    mean_iteration_time_us: float
    straggler_rank: Optional[int]
    stragglers: List[int]
    straggler_threshold_pct: float
    ranks: List[RankPath]
    dominant_ops: List[OpAttribution] = field(default_factory=list)
    dominant_collective: Optional[str] = None
    collectives: List[CollectiveAttribution] = field(default_factory=list)
    source: str = "cluster-report"

    @property
    def skew_pct(self) -> float:
        """How much slower the critical rank is than the fleet mean."""
        if self.mean_iteration_time_us <= 0:
            return 0.0
        return (
            (self.critical_path_us - self.mean_iteration_time_us)
            / self.mean_iteration_time_us
            * 100.0
        )

    def rank_path(self, rank: int) -> RankPath:
        for row in self.ranks:
            if row.rank == rank:
                return row
        raise KeyError(f"no rank {rank} in report")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": INSIGHTS_SCHEMA_VERSION,
            "kind": "critical-path",
            "source": self.source,
            "device": self.device,
            "world_size": self.world_size,
            "critical_path_us": self.critical_path_us,
            "mean_iteration_time_us": self.mean_iteration_time_us,
            "skew_pct": self.skew_pct,
            "straggler_rank": self.straggler_rank,
            "stragglers": list(self.stragglers),
            "straggler_threshold_pct": self.straggler_threshold_pct,
            "ranks": [row.to_dict() for row in self.ranks],
            "dominant_ops": [op.to_dict() for op in self.dominant_ops],
            "dominant_collective": self.dominant_collective,
            "collectives": [c.to_dict() for c in self.collectives],
        }


# ----------------------------------------------------------------------
# Trace-payload aggregation
# ----------------------------------------------------------------------
def _trace_payload(trace: Any) -> Optional[Mapping[str, Any]]:
    if trace is None:
        return None
    if hasattr(trace, "to_dict"):
        return trace.to_dict()
    return trace


def _aggregate_slices(
    payload: Mapping[str, Any],
) -> Tuple[
    Dict[int, Dict[Tuple[str, str], List[float]]],
    Dict[int, Dict[str, CollectiveAttribution]],
]:
    """Group virtual Gantt slices by rank into op and collective totals."""
    ops: Dict[int, Dict[Tuple[str, str], List[float]]] = {}
    collectives: Dict[int, Dict[str, CollectiveAttribution]] = {}
    for span in payload.get("spans", ()):
        category = span.get("category")
        if category not in GANTT_CATEGORIES:
            continue
        start = span.get("virtual_start_us")
        end = span.get("virtual_end_us")
        if start is None or end is None:
            continue
        duration = max(0.0, float(end) - float(start))
        correlation = span.get("correlation") or {}
        rank = int(correlation.get("rank", 0))
        name = span.get("name", "")
        if category in _OP_CATEGORIES:
            bucket = ops.setdefault(rank, {}).setdefault((name, category), [0.0, 0])
            bucket[0] += duration
            bucket[1] += 1
        if category in ("comms", "exposed-comms", "stall"):
            agg = collectives.setdefault(rank, {}).setdefault(
                collective_name(name), CollectiveAttribution(collective_name(name))
            )
            if category == "comms":
                agg.total_us += duration
                agg.count += 1
            elif category == "exposed-comms":
                agg.exposed_us += duration
            else:
                agg.stall_us += duration
    return ops, collectives


def _top_ops(
    rank_ops: Mapping[Tuple[str, str], Sequence[float]], top: int
) -> List[OpAttribution]:
    total = sum(entry[0] for entry in rank_ops.values()) or 1.0
    ranked = sorted(
        rank_ops.items(), key=lambda item: (-item[1][0], item[0][0])
    )
    return [
        OpAttribution(
            name=name,
            category=category,
            total_us=entry[0],
            count=int(entry[1]),
            share_pct=entry[0] / total * 100.0,
        )
        for (name, category), entry in ranked[:top]
    ]


def _merge_collectives(
    per_rank: Mapping[int, Mapping[str, CollectiveAttribution]]
) -> List[CollectiveAttribution]:
    merged: Dict[str, CollectiveAttribution] = {}
    for rank_colls in per_rank.values():
        for name, agg in rank_colls.items():
            out = merged.setdefault(name, CollectiveAttribution(name))
            out.total_us += agg.total_us
            out.exposed_us += agg.exposed_us
            out.stall_us += agg.stall_us
            out.count += agg.count
    return sorted(
        merged.values(), key=lambda c: (-c.visible_us, -c.total_us, c.name)
    )


def _dominant_collective(
    collectives: Mapping[str, CollectiveAttribution]
) -> Optional[str]:
    """The collective adding the most visible (exposed + stall) time.

    Ties — including the fully-overlapped case where every collective's
    visible time is zero — fall back to total comm kernel time, then to
    the name, so the answer is deterministic.
    """
    if not collectives:
        return None
    ranked = sorted(
        collectives.values(), key=lambda c: (-c.visible_us, -c.total_us, c.name)
    )
    return ranked[0].name


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_critical_path(
    report: Any,
    trace: Any = None,
    top: int = 5,
    straggler_threshold_pct: float = DEFAULT_STRAGGLER_THRESHOLD_PCT,
) -> CriticalPathReport:
    """Attribute a cluster replay's critical path.

    ``report`` is a :class:`~repro.cluster.engine.ClusterReport` or its
    ``to_dict()`` payload; ``trace`` (optional) is a
    :class:`~repro.telemetry.Tracer` or its ``to_dict()`` payload and
    unlocks per-op and per-collective attribution from the virtual-time
    Gantt slices.
    """
    data = report.to_dict() if hasattr(report, "to_dict") else dict(report)
    critical = float(data.get("critical_path_us") or 0.0)
    rows: List[RankPath] = []
    for entry in data.get("ranks", ()):
        iteration = float(entry.get("mean_iteration_time_us") or 0.0)
        comm = float(entry.get("comm_time_us") or 0.0)
        exposed = float(entry.get("exposed_comm_us") or 0.0)
        stall = float(entry.get("stall_us") or 0.0)
        rows.append(
            RankPath(
                rank=int(entry.get("rank", 0)),
                iteration_us=iteration,
                compute_us=max(0.0, iteration - exposed - stall),
                comm_us=comm,
                exposed_comm_us=exposed,
                stall_us=stall,
                overlap_score=_overlap_score(comm, exposed),
                critical_share_pct=(
                    iteration / critical * 100.0 if critical > 0 else 0.0
                ),
                is_straggler=False,
            )
        )
    rows.sort(key=lambda r: r.rank)
    mean_iteration = float(data.get("mean_iteration_time_us") or 0.0)
    if not mean_iteration and rows:
        mean_iteration = sum(r.iteration_us for r in rows) / len(rows)
    if len(rows) > 1:
        total_stall = sum(r.stall_us for r in rows)
        for row in rows:
            others_mean = (total_stall - row.stall_us) / (len(rows) - 1)
            row.drag_us = others_mean - row.stall_us
    # Two straggler signatures: an outright longer iteration, or — in a
    # collective-synchronized fleet where rendezvous equalize iteration
    # times — making every other rank stall (positive drag).
    cutoff_us = mean_iteration * straggler_threshold_pct / 100.0
    stragglers = [
        r.rank
        for r in rows
        if r.iteration_us > mean_iteration + cutoff_us or r.drag_us > cutoff_us
    ]
    for row in rows:
        row.is_straggler = row.rank in stragglers
    straggler_rank = data.get("straggler_rank")
    if stragglers:
        # Rendezvous equalize iteration times across the fleet, so the
        # report's slowest-iteration pick is an arbitrary tie-break; the
        # rank dragging everyone else is the meaningful answer.
        straggler_rank = max(
            (r for r in rows if r.rank in stragglers),
            key=lambda r: (r.drag_us, r.iteration_us, -r.rank),
        ).rank
    elif straggler_rank is None and rows:
        straggler_rank = max(rows, key=lambda r: r.iteration_us).rank

    result = CriticalPathReport(
        device=str(data.get("device", "")),
        world_size=int(data.get("world_size") or len(rows)),
        critical_path_us=critical,
        mean_iteration_time_us=mean_iteration,
        straggler_rank=straggler_rank,
        stragglers=stragglers,
        straggler_threshold_pct=straggler_threshold_pct,
        ranks=rows,
        source="cluster-report",
    )

    payload = _trace_payload(trace)
    if payload is not None:
        ops, collectives = _aggregate_slices(payload)
        result.source = "cluster-report+trace"
        result.collectives = _merge_collectives(collectives)
        focus = straggler_rank if straggler_rank in ops else None
        if focus is not None:
            result.dominant_ops = _top_ops(ops[focus], top)
        dominant = None
        if straggler_rank in collectives:
            dominant = _dominant_collective(collectives[straggler_rank])
        if dominant is None:
            dominant = _dominant_collective(
                {c.name: c for c in result.collectives}
            )
        result.dominant_collective = dominant
    return result


def analyze_replay_result(
    result: Any,
    rank: int = 0,
    device: str = "",
    top: int = 5,
) -> CriticalPathReport:
    """Attribute a single-rank :class:`ReplayResult`'s time.

    Reads the category/exposed decomposition from ``timeline_stats`` and
    ranks ops directly from the kernel launches, so it works without a
    tracer attached.
    """
    summary = result.summarize()
    iteration = float(summary.mean_iteration_time_us)
    stats = result.timeline_stats
    kernel_by_category = dict(getattr(stats, "category_kernel_time_us", {}) or {})
    exposed_by_category = dict(getattr(stats, "category_exposed_time_us", {}) or {})
    comm = float(kernel_by_category.get("comms", 0.0))
    exposed = float(exposed_by_category.get("comms", 0.0))
    row = RankPath(
        rank=rank,
        iteration_us=iteration,
        compute_us=max(0.0, iteration - exposed),
        comm_us=comm,
        exposed_comm_us=exposed,
        stall_us=0.0,
        overlap_score=_overlap_score(comm, exposed),
        critical_share_pct=100.0,
        is_straggler=False,
    )

    ops: Dict[Tuple[str, str], List[float]] = {}
    collectives: Dict[str, CollectiveAttribution] = {}
    for launch in getattr(result, "kernel_launches", ()):
        category = getattr(launch.category, "value", launch.category)
        duration = max(0.0, float(launch.end) - float(launch.start))
        bucket = ops.setdefault((launch.op_name, str(category)), [0.0, 0])
        bucket[0] += duration
        bucket[1] += 1
        if category == "comms":
            agg = collectives.setdefault(
                collective_name(launch.op_name),
                CollectiveAttribution(collective_name(launch.op_name)),
            )
            agg.total_us += duration
            agg.count += 1
    # Spread the single-rank exposed time across collectives by their
    # share of total comm time — per-op exposure is not tracked here.
    total_comm = sum(c.total_us for c in collectives.values())
    if total_comm > 0:
        for agg in collectives.values():
            agg.exposed_us = exposed * (agg.total_us / total_comm)

    return CriticalPathReport(
        device=device,
        world_size=1,
        critical_path_us=iteration,
        mean_iteration_time_us=iteration,
        straggler_rank=rank,
        stragglers=[],
        straggler_threshold_pct=DEFAULT_STRAGGLER_THRESHOLD_PCT,
        ranks=[row],
        dominant_ops=_top_ops(ops, top),
        dominant_collective=_dominant_collective(collectives),
        collectives=sorted(
            collectives.values(),
            key=lambda c: (-c.visible_us, -c.total_us, c.name),
        ),
        source="replay-result",
    )


def _overlap_score(comm_us: float, exposed_us: float) -> float:
    """Fraction of comm time hidden behind compute (1.0 = fully hidden)."""
    if comm_us <= 0:
        return 1.0
    return max(0.0, min(1.0, 1.0 - exposed_us / comm_us))


def format_critical_path(report: CriticalPathReport, top: int = 5) -> str:
    """Human-readable rendering for the CLI's non-``--json`` path."""
    from repro.bench.reporting import format_table

    lines = [
        f"critical path: {report.critical_path_us:.1f} us "
        f"(mean {report.mean_iteration_time_us:.1f} us, "
        f"skew {report.skew_pct:+.1f}%)",
        f"straggler rank: {report.straggler_rank}"
        + (f"  flagged: {report.stragglers}" if report.stragglers else ""),
    ]
    if report.dominant_collective:
        lines.append(f"dominant collective: {report.dominant_collective}")
    rank_rows = [
        [
            str(r.rank),
            f"{r.iteration_us:.1f}",
            f"{r.compute_us:.1f}",
            f"{r.comm_us:.1f}",
            f"{r.exposed_comm_us:.1f}",
            f"{r.stall_us:.1f}",
            f"{r.overlap_score:.2f}",
            f"{r.critical_share_pct:.1f}",
            "*" if r.is_straggler else "",
        ]
        for r in report.ranks
    ]
    lines.append("")
    lines.append(
        format_table(
            [
                "rank",
                "iter_us",
                "compute_us",
                "comm_us",
                "exposed_us",
                "stall_us",
                "overlap",
                "share%",
                "straggler",
            ],
            rank_rows,
        )
    )
    if report.dominant_ops:
        op_rows = [
            [
                op.name,
                op.category,
                f"{op.total_us:.1f}",
                str(op.count),
                f"{op.share_pct:.1f}",
            ]
            for op in report.dominant_ops[:top]
        ]
        lines.append("")
        lines.append(
            format_table(
                ["op", "category", "total_us", "count", "share%"], op_rows
            )
        )
    if report.collectives:
        coll_rows = [
            [
                c.name,
                f"{c.total_us:.1f}",
                f"{c.exposed_us:.1f}",
                f"{c.stall_us:.1f}",
                f"{c.visible_us:.1f}",
                str(c.count),
            ]
            for c in report.collectives
        ]
        lines.append("")
        lines.append(
            format_table(
                [
                    "collective",
                    "total_us",
                    "exposed_us",
                    "stall_us",
                    "visible_us",
                    "count",
                ],
                coll_rows,
            )
        )
    return "\n".join(lines)
