"""Run-to-run diffing: attribute the time delta between two runs.

A :class:`RunProfile` is a normalized view of where a run spent its
time — per pipeline stage (wall seconds), per Gantt category, per op,
and per rank (virtual microseconds) — extractable from any of the
artifacts the repo already produces: a telemetry trace payload, a
:class:`~repro.cluster.engine.ClusterReport` (or its dict), or a
:class:`ReplayResult`.  :func:`diff_runs` then attributes the
end-to-end delta along each dimension, so "this change made replay 18%
slower" becomes "the all_to_all class absorbed 96% of the slowdown".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.insights.critical_path import GANTT_CATEGORIES, _OP_CATEGORIES
from repro.insights.schema import INSIGHTS_SCHEMA_VERSION

#: End-to-end growth (percent) below which a diff is considered noise.
DEFAULT_DIFF_THRESHOLD_PCT = 2.0


@dataclass
class RunProfile:
    """Where one run spent its time, normalized across artifact kinds."""

    label: str
    source: str
    end_to_end_us: float = 0.0
    by_stage_s: Dict[str, float] = field(default_factory=dict)
    by_category_us: Dict[str, float] = field(default_factory=dict)
    by_op_us: Dict[str, float] = field(default_factory=dict)
    by_rank_us: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "source": self.source,
            "end_to_end_us": self.end_to_end_us,
            "by_stage_s": dict(self.by_stage_s),
            "by_category_us": dict(self.by_category_us),
            "by_op_us": dict(self.by_op_us),
            "by_rank_us": dict(self.by_rank_us),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Any, label: str = "trace") -> "RunProfile":
        """Extract from a :class:`Tracer` or its ``to_dict()`` payload."""
        payload = trace.to_dict() if hasattr(trace, "to_dict") else trace
        profile = cls(label=label, source="trace")
        window_start: Optional[float] = None
        window_end: Optional[float] = None
        for span in payload.get("spans", ()):
            category = span.get("category")
            wall_start = span.get("wall_start_s")
            wall_end = span.get("wall_end_s")
            if (
                category == "pipeline"
                and wall_start is not None
                and wall_end is not None
            ):
                name = span.get("name", "")
                profile.by_stage_s[name] = profile.by_stage_s.get(name, 0.0) + (
                    float(wall_end) - float(wall_start)
                )
            if category not in GANTT_CATEGORIES:
                continue
            start = span.get("virtual_start_us")
            end = span.get("virtual_end_us")
            if start is None or end is None:
                continue
            start, end = float(start), float(end)
            duration = max(0.0, end - start)
            window_start = start if window_start is None else min(window_start, start)
            window_end = end if window_end is None else max(window_end, end)
            profile.by_category_us[category] = (
                profile.by_category_us.get(category, 0.0) + duration
            )
            if category in _OP_CATEGORIES:
                name = span.get("name", "")
                profile.by_op_us[name] = profile.by_op_us.get(name, 0.0) + duration
            if category in ("compute", "exposed-comms", "stall"):
                # The serial occupancy of the rank's lane — overlapped
                # comms would double-count against compute.
                rank = str((span.get("correlation") or {}).get("rank", 0))
                profile.by_rank_us[rank] = (
                    profile.by_rank_us.get(rank, 0.0) + duration
                )
        if window_start is not None and window_end is not None:
            profile.end_to_end_us = window_end - window_start
        return profile

    @classmethod
    def from_cluster_report(cls, report: Any, label: str = "cluster") -> "RunProfile":
        """Extract from a ``ClusterReport`` or its ``to_dict()`` payload."""
        data = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        if data.get("kind") == "cluster" and "report" in data:
            data = data["report"]
        profile = cls(label=label, source="cluster-report")
        profile.end_to_end_us = float(data.get("critical_path_us") or 0.0)
        totals = {"compute": 0.0, "comms": 0.0, "exposed-comms": 0.0, "stall": 0.0}
        for entry in data.get("ranks", ()):
            iteration = float(entry.get("mean_iteration_time_us") or 0.0)
            exposed = float(entry.get("exposed_comm_us") or 0.0)
            stall = float(entry.get("stall_us") or 0.0)
            totals["comms"] += float(entry.get("comm_time_us") or 0.0)
            totals["exposed-comms"] += exposed
            totals["stall"] += stall
            totals["compute"] += max(0.0, iteration - exposed - stall)
            profile.by_rank_us[str(entry.get("rank", 0))] = iteration
        profile.by_category_us = {k: v for k, v in totals.items() if v}
        return profile

    @classmethod
    def from_replay_result(cls, result: Any, label: str = "replay") -> "RunProfile":
        """Extract from a single-rank :class:`ReplayResult`."""
        profile = cls(label=label, source="replay-result")
        summary = result.summarize()
        profile.end_to_end_us = float(summary.mean_iteration_time_us)
        stats = result.timeline_stats
        for category, value in (
            getattr(stats, "category_kernel_time_us", {}) or {}
        ).items():
            profile.by_category_us[str(category)] = float(value)
        exposed = (getattr(stats, "category_exposed_time_us", {}) or {}).get(
            "comms"
        )
        if exposed is not None:
            profile.by_category_us["exposed-comms"] = float(exposed)
        for launch in getattr(result, "kernel_launches", ()):
            duration = max(0.0, float(launch.end) - float(launch.start))
            profile.by_op_us[launch.op_name] = (
                profile.by_op_us.get(launch.op_name, 0.0) + duration
            )
        profile.by_rank_us["0"] = profile.end_to_end_us
        return profile

    @classmethod
    def from_any(cls, obj: Any, label: str = "run") -> "RunProfile":
        """Sniff the artifact kind and dispatch.

        Accepts a tracer/trace payload (has ``spans``), a cluster report
        or its payload (has ``ranks``), a daemon cluster-job result
        (``kind == "cluster"``), or a replay result (has
        ``timeline_stats``).
        """
        if hasattr(obj, "spans") and hasattr(obj, "to_dict"):
            return cls.from_trace(obj, label)
        if hasattr(obj, "timeline_stats"):
            return cls.from_replay_result(obj, label)
        if hasattr(obj, "ranks"):
            return cls.from_cluster_report(obj, label)
        if isinstance(obj, Mapping):
            if "spans" in obj:
                return cls.from_trace(obj, label)
            if obj.get("kind") == "cluster" or "ranks" in obj:
                return cls.from_cluster_report(obj, label)
        raise ValueError(
            "cannot build a RunProfile from this artifact — expected a "
            "telemetry trace payload, a cluster report, or a replay result"
        )


@dataclass
class DiffEntry:
    """One key's contribution to a dimension's delta."""

    key: str
    baseline: float
    current: float
    delta: float
    share_pct: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "share_pct": self.share_pct,
        }


@dataclass
class DiffReport:
    """Attribution of the end-to-end delta between two runs."""

    baseline_label: str
    current_label: str
    baseline_end_to_end_us: float
    current_end_to_end_us: float
    threshold_pct: float
    by_stage: List[DiffEntry] = field(default_factory=list)
    by_category: List[DiffEntry] = field(default_factory=list)
    by_op: List[DiffEntry] = field(default_factory=list)
    by_rank: List[DiffEntry] = field(default_factory=list)

    @property
    def delta_us(self) -> float:
        return self.current_end_to_end_us - self.baseline_end_to_end_us

    @property
    def delta_pct(self) -> float:
        if self.baseline_end_to_end_us <= 0:
            return 0.0
        return self.delta_us / self.baseline_end_to_end_us * 100.0

    @property
    def regressed(self) -> bool:
        return self.delta_pct > self.threshold_pct

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": INSIGHTS_SCHEMA_VERSION,
            "kind": "diff",
            "baseline": self.baseline_label,
            "current": self.current_label,
            "baseline_end_to_end_us": self.baseline_end_to_end_us,
            "current_end_to_end_us": self.current_end_to_end_us,
            "delta_us": self.delta_us,
            "delta_pct": self.delta_pct,
            "threshold_pct": self.threshold_pct,
            "regressed": self.regressed,
            "by_stage": [e.to_dict() for e in self.by_stage],
            "by_category": [e.to_dict() for e in self.by_category],
            "by_op": [e.to_dict() for e in self.by_op],
            "by_rank": [e.to_dict() for e in self.by_rank],
        }


def _diff_dimension(
    baseline: Mapping[str, float], current: Mapping[str, float]
) -> List[DiffEntry]:
    keys = sorted(set(baseline) | set(current))
    deltas = {k: current.get(k, 0.0) - baseline.get(k, 0.0) for k in keys}
    total = sum(deltas.values())
    entries = [
        DiffEntry(
            key=key,
            baseline=baseline.get(key, 0.0),
            current=current.get(key, 0.0),
            delta=deltas[key],
            share_pct=(deltas[key] / total * 100.0) if total else 0.0,
        )
        for key in keys
    ]
    entries.sort(key=lambda e: (-abs(e.delta), e.key))
    return entries


def diff_runs(
    baseline: RunProfile,
    current: RunProfile,
    threshold_pct: float = DEFAULT_DIFF_THRESHOLD_PCT,
) -> DiffReport:
    """Attribute ``current - baseline`` along every shared dimension.

    Each entry's ``share_pct`` is its delta over the dimension's total
    delta (signed — an op that got *faster* while the run got slower
    shows a negative share).
    """
    return DiffReport(
        baseline_label=baseline.label,
        current_label=current.label,
        baseline_end_to_end_us=baseline.end_to_end_us,
        current_end_to_end_us=current.end_to_end_us,
        threshold_pct=threshold_pct,
        by_stage=_diff_dimension(baseline.by_stage_s, current.by_stage_s),
        by_category=_diff_dimension(
            baseline.by_category_us, current.by_category_us
        ),
        by_op=_diff_dimension(baseline.by_op_us, current.by_op_us),
        by_rank=_diff_dimension(baseline.by_rank_us, current.by_rank_us),
    )


def format_diff(report: DiffReport, top: int = 8) -> str:
    """Human-readable rendering for the CLI's non-``--json`` path."""
    from repro.bench.reporting import format_table

    lines = [
        f"{report.baseline_label} -> {report.current_label}: "
        f"{report.baseline_end_to_end_us:.1f} us -> "
        f"{report.current_end_to_end_us:.1f} us "
        f"({report.delta_us:+.1f} us, {report.delta_pct:+.2f}%)",
        f"verdict: {'REGRESSED' if report.regressed else 'within threshold'} "
        f"(threshold {report.threshold_pct:.1f}%)",
    ]
    for title, entries, unit in (
        ("by category", report.by_category, "us"),
        ("by op", report.by_op, "us"),
        ("by rank", report.by_rank, "us"),
        ("by stage", report.by_stage, "s"),
    ):
        shown = [e for e in entries if e.delta][:top]
        if not shown:
            continue
        rows = [
            [
                e.key,
                f"{e.baseline:.3f}",
                f"{e.current:.3f}",
                f"{e.delta:+.3f}",
                f"{e.share_pct:+.1f}",
            ]
            for e in shown
        ]
        lines.append("")
        lines.append(
            format_table(
                ["key", f"baseline_{unit}", f"current_{unit}", "delta", "share%"],
                rows,
                title=title,
            )
        )
    return "\n".join(lines)
