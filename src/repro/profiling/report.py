"""Structured replay-throughput profile reports.

A :class:`ProfileReport` is what a :class:`~repro.profiling.ProfileHook`
aggregates into: per-operator host wall time (hot-first), per-stage wall
time, and the replay's measured throughput in operators per second.  The
schema is versioned so downstream consumers (the ``profile`` CLI
subcommand's ``--json`` output, BENCH trajectory files) can detect shape
changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Bump when the serialized report shape changes incompatibly.
PROFILE_SCHEMA_VERSION = 1


@dataclass
class OpProfile:
    """Aggregated host-side cost of one operator name across a replay."""

    name: str
    count: int
    total_ms: float
    mean_us: float
    min_us: float
    max_us: float
    #: Share of the total per-op wall time, in percent.
    share_pct: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_ms": self.total_ms,
            "mean_us": self.mean_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
            "share_pct": self.share_pct,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OpProfile":
        return cls(
            name=data["name"],
            count=int(data["count"]),
            total_ms=float(data["total_ms"]),
            mean_us=float(data["mean_us"]),
            min_us=float(data["min_us"]),
            max_us=float(data["max_us"]),
            share_pct=float(data["share_pct"]),
        )


@dataclass
class ProfileReport:
    """One replay's host-side wall-time profile.

    ``ops`` is sorted hot-first (largest ``total_ms`` first).  Stage wall
    times cover the whole pipeline (build stages included); ``ops_per_sec``
    covers only the measured iterations of the execute stage, which is the
    throughput number the BENCH trajectory files track.
    """

    trace_name: str = ""
    device: str = ""
    #: Which execute path produced this profile (``ReplayConfig.vectorized``).
    vectorized: bool = True
    #: Per-op replays observed (warm-up and measured iterations alike).
    replayed_ops: int = 0
    #: Per-op replays observed during measured iterations only.
    measured_ops: int = 0
    #: Wall-clock seconds per pipeline stage, by stage name.
    stage_wall_s: Dict[str, float] = field(default_factory=dict)
    #: Replay throughput over the measured window, operators per second.
    ops_per_sec: float = 0.0
    ops: List[OpProfile] = field(default_factory=list)
    schema_version: int = PROFILE_SCHEMA_VERSION

    @property
    def execute_wall_s(self) -> float:
        """Wall time of the execute stage (the replay hot loop)."""
        return self.stage_wall_s.get("execute", 0.0)

    @property
    def total_op_ms(self) -> float:
        return sum(op.total_ms for op in self.ops)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "trace_name": self.trace_name,
            "device": self.device,
            "vectorized": self.vectorized,
            "replayed_ops": self.replayed_ops,
            "measured_ops": self.measured_ops,
            "stage_wall_s": dict(self.stage_wall_s),
            "execute_wall_s": self.execute_wall_s,
            "ops_per_sec": self.ops_per_sec,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProfileReport":
        return cls(
            trace_name=data.get("trace_name", ""),
            device=data.get("device", ""),
            vectorized=bool(data.get("vectorized", True)),
            replayed_ops=int(data.get("replayed_ops", 0)),
            measured_ops=int(data.get("measured_ops", 0)),
            stage_wall_s={
                str(name): float(value)
                for name, value in data.get("stage_wall_s", {}).items()
            },
            ops_per_sec=float(data.get("ops_per_sec", 0.0)),
            ops=[OpProfile.from_dict(entry) for entry in data.get("ops", [])],
            schema_version=int(data.get("schema_version", PROFILE_SCHEMA_VERSION)),
        )

    # ------------------------------------------------------------------
    def format_table(self, top: int = 20) -> str:
        """Human-readable hot-first summary (the atexit/CLI rendering)."""
        header = (
            f"replay profile: {self.trace_name or '<trace>'} on "
            f"{self.device or '<device>'} "
            f"({'vectorized' if self.vectorized else 'scalar'}, "
            f"{self.ops_per_sec:,.0f} ops/sec, "
            f"execute {self.execute_wall_s * 1e3:.1f} ms)"
        )
        lines = [header]
        lines.append(
            f"{'op':<40} {'count':>8} {'total ms':>10} {'mean us':>9} "
            f"{'max us':>9} {'share':>7}"
        )
        for op in self.ops[:top]:
            lines.append(
                f"{op.name:<40} {op.count:>8} {op.total_ms:>10.3f} "
                f"{op.mean_us:>9.2f} {op.max_us:>9.2f} {op.share_pct:>6.1f}%"
            )
        remainder = len(self.ops) - top
        if remainder > 0:
            lines.append(f"... {remainder} more operator names")
        stages = ", ".join(
            f"{name}={seconds * 1e3:.1f}ms"
            for name, seconds in sorted(
                self.stage_wall_s.items(), key=lambda item: -item[1]
            )
        )
        if stages:
            lines.append(f"stages: {stages}")
        return "\n".join(lines)
