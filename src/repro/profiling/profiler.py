"""The per-op replay profiler hook.

:class:`ProfileHook` observes a replay through the standard
:class:`~repro.core.pipeline.ReplayHook` protocol, so it costs *nothing*
when not attached — the execute loop's ``notify = bool(context.hooks)``
fast path skips per-op notification entirely, which is the
zero-overhead-when-disabled guarantee ``tests/test_profiling.py`` asserts.

When attached, the per-op callback is kept to a dict lookup, two float
reads of ``time.perf_counter()`` shared across callbacks (one read per
event, not per aggregate), and four list-cell updates; everything else
(sorting, shares, means) happens at :meth:`ProfileHook.report` time.

Stage timing is recorded as :class:`~repro.telemetry.Span` objects
rather than private float marks: each pipeline stage becomes one
``stage:<name>`` span on the ``profiling`` category.  Pass a shared
:class:`~repro.telemetry.Tracer` (``session.with_telemetry()`` does) and
the spans land on the unified timeline too; without one they stay local
and :meth:`ProfileHook.report` aggregates them into ``stage_wall_s``
exactly as before.

The atexit summary mirrors tinygrad's ``ProfileOp`` idiom: opt-in (pass
``report_at_exit=True`` or set ``REPRO_PROFILE_ATEXIT=1``), written to
stderr once at interpreter shutdown, hot ops first.
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.pipeline import ReplayContext, ReplayHook, ReplayStage
from repro.profiling.report import OpProfile, ProfileReport
from repro.telemetry.tracer import Span, Tracer

#: Environment variable enabling the atexit summary for every hook.
ATEXIT_ENV = "REPRO_PROFILE_ATEXIT"

_atexit_hooks: List["ProfileHook"] = []
_atexit_registered = False


def _print_atexit_reports() -> None:  # pragma: no cover - interpreter exit
    for hook in _atexit_hooks:
        sys.stderr.write(hook.report().format_table() + "\n")


def _register_atexit(hook: "ProfileHook") -> None:
    global _atexit_registered
    _atexit_hooks.append(hook)
    if not _atexit_registered:
        atexit.register(_print_atexit_reports)
        _atexit_registered = True


class ProfileHook(ReplayHook):
    """Aggregates per-operator and per-stage wall time during a replay.

    Attach via ``session.with_profiling()`` (or ``pipeline.add_hook``) and
    read :meth:`report` afterwards.  One hook instance profiles one replay;
    attach a fresh instance per replay (or call :meth:`reset`).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        report_at_exit: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._clock = clock
        #: Shared telemetry tracer; stage spans are published here when
        #: one is attached (and enabled).  Profiling itself never depends
        #: on it — spans are kept locally either way.
        self.tracer = tracer
        #: op name -> [count, total_s, min_s, max_s]
        self._ops: Dict[str, List[float]] = {}
        self._open_spans: Dict[str, Span] = {}
        self._stage_spans: List[Span] = []
        self._last_mark = 0.0
        self._replayed_ops = 0
        self._measured_ops = 0
        self._measured_start: Optional[float] = None
        self._measured_end = 0.0
        #: Metadata for the report, filled by whoever owns the hook.
        self.trace_name = ""
        self.device = ""
        self.vectorized = True
        if report_at_exit or os.environ.get(ATEXIT_ENV, "") not in ("", "0"):
            _register_atexit(self)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget everything observed so far (reuse across replays)."""
        self._ops.clear()
        self._open_spans.clear()
        self._stage_spans.clear()
        self._last_mark = 0.0
        self._replayed_ops = 0
        self._measured_ops = 0
        self._measured_start = None
        self._measured_end = 0.0

    # ------------------------------------------------------------------
    # ReplayHook protocol
    # ------------------------------------------------------------------
    def on_stage_start(self, context: ReplayContext, stage: ReplayStage) -> None:
        now = self._clock()
        self._open_spans[stage.name] = Span(
            name=f"stage:{stage.name}",
            category="profiling",
            wall_start_s=now,
        )
        if stage.name == "execute":
            self._last_mark = now

    def on_stage_end(self, context: ReplayContext, stage: ReplayStage) -> None:
        span = self._open_spans.pop(stage.name, None)
        if span is None:
            return
        span.wall_end_s = self._clock()
        self._stage_spans.append(span)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(
                span.name,
                span.category,
                wall_start_s=span.wall_start_s,
                wall_end_s=span.wall_end_s,
            )

    def on_resume(self, context: ReplayContext) -> None:
        """Re-anchor the per-op mark when a cooperative scheduler resumes
        this replay.  The event-driven cluster engine interleaves many
        ranks on one thread; without re-anchoring, the first op after a
        context switch would be billed for the wall time spent replaying
        *other* ranks (the old one-thread-per-rank assumption)."""
        self._last_mark = self._clock()

    def on_op_replayed(self, context: ReplayContext, entry, output) -> None:
        now = self._clock()
        delta = now - self._last_mark
        self._last_mark = now
        cell = self._ops.get(entry.node.name)
        if cell is None:
            self._ops[entry.node.name] = [1, delta, delta, delta]
        else:
            cell[0] += 1
            cell[1] += delta
            if delta < cell[2]:
                cell[2] = delta
            if delta > cell[3]:
                cell[3] = delta
        self._replayed_ops += 1
        if context.measuring:
            self._measured_ops += 1
            if self._measured_start is None:
                self._measured_start = now - delta
            self._measured_end = now

    # ------------------------------------------------------------------
    @property
    def stage_spans(self) -> List[Span]:
        """Completed ``stage:<name>`` spans, in completion order."""
        return list(self._stage_spans)

    def _stage_wall_seconds(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for span in self._stage_spans:
            duration = span.wall_duration_s
            if duration is None:
                continue
            name = span.name[len("stage:"):]
            totals[name] = totals.get(name, 0.0) + duration
        return totals

    def report(
        self,
        trace_name: Optional[str] = None,
        device: Optional[str] = None,
        vectorized: Optional[bool] = None,
    ) -> ProfileReport:
        """Aggregate everything observed so far into a structured report."""
        total_s = sum(cell[1] for cell in self._ops.values())
        ops = [
            OpProfile(
                name=name,
                count=int(cell[0]),
                total_ms=cell[1] * 1e3,
                mean_us=(cell[1] / cell[0]) * 1e6 if cell[0] else 0.0,
                min_us=cell[2] * 1e6,
                max_us=cell[3] * 1e6,
                share_pct=(cell[1] / total_s) * 100.0 if total_s > 0 else 0.0,
            )
            for name, cell in self._ops.items()
        ]
        ops.sort(key=lambda op: (-op.total_ms, op.name))
        measured_window_s = (
            self._measured_end - self._measured_start
            if self._measured_start is not None
            else 0.0
        )
        return ProfileReport(
            trace_name=self.trace_name if trace_name is None else trace_name,
            device=self.device if device is None else device,
            vectorized=self.vectorized if vectorized is None else vectorized,
            replayed_ops=self._replayed_ops,
            measured_ops=self._measured_ops,
            stage_wall_s=self._stage_wall_seconds(),
            ops_per_sec=(
                self._measured_ops / measured_window_s if measured_window_s > 0 else 0.0
            ),
            ops=ops,
        )
