"""Replay-throughput profiling (the meta layer: profiling the simulator).

Everything else in the package profiles the *simulated workload* on a
virtual clock; this package profiles the *replay engine itself* on the
host's real clock, so regressions in replay throughput are visible and the
vectorized execute path (:mod:`repro.core.vectorize`) has measured
justification.

Two pieces:

* :class:`ProfileHook` — a :class:`~repro.core.pipeline.ReplayHook` that
  aggregates per-operator wall time (``on_op_replayed``) and per-stage wall
  time, hot-first, tinygrad ``ProfileOp``-style, with an opt-in atexit
  summary.
* :class:`ProfileReport` — the structured, versioned result, serialized
  through :mod:`repro.service.serialize` and attached to replay results by
  ``.with_profiling()`` sessions.

All durations are measured with ``time.perf_counter()`` — never the
non-monotonic wall clock, whose NTP slews and steps would corrupt measured
windows (``scripts/check_deprecated_usage.py`` enforces this for the whole
package).
"""

from repro.profiling.profiler import ProfileHook
from repro.profiling.report import PROFILE_SCHEMA_VERSION, OpProfile, ProfileReport

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "OpProfile",
    "ProfileHook",
    "ProfileReport",
]
