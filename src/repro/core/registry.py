"""Replay-support policy and the custom-operator registration interface.

Mystique replays all ATen operators, the c10d communication operators and a
set of common custom libraries (FBGEMM, torchrec) out of the box
(Section 5).  Other custom operators are *unsupported* unless the user
registers an implementation through the interface exposed here
(Section 4.3.3); fused operators are skipped entirely until the execution
trace carries enough metadata to rebuild them (Section 4.3.4).

The coverage rates of Table 3 fall directly out of this policy: the fraction
of a workload's operators (by count and by execution time) that the policy
marks as replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set

from repro.et.analyzer import CATEGORY_COMMS, CATEGORY_FUSED, categorize_node
from repro.et.schema import ETNode
from repro.torchsim.kernel import OpCategory
from repro.torchsim.ops.registry import OperatorDef, OperatorRegistry, global_registry

#: Libraries Mystique supports without any user registration.
DEFAULT_SUPPORTED_LIBRARIES = ("aten", "c10d", "fbgemm", "torchrec")


class ReplaySupport:
    """Decides which execution-trace operators the replayer can reproduce."""

    def __init__(
        self,
        supported_libraries: Iterable[str] = DEFAULT_SUPPORTED_LIBRARIES,
        replay_fused: bool = False,
        registry: Optional[OperatorRegistry] = None,
    ) -> None:
        self.supported_libraries: Set[str] = set(supported_libraries)
        self.replay_fused = replay_fused
        self.registry = registry if registry is not None else global_registry
        self._user_ops: Set[str] = set()

    # ------------------------------------------------------------------
    # The user-facing custom-operator interface (Section 4.3.3)
    # ------------------------------------------------------------------
    def register_custom_op(
        self,
        name: str,
        fn: Optional[Callable] = None,
        schema: Optional[str] = None,
    ) -> None:
        """Register a custom operator implementation for replay.

        If the operator already exists in the framework registry (its
        library is simply not enabled by default), registering its name is
        enough.  Otherwise both an implementation and a schema must be
        provided, and the operator is added to the registry.
        """
        if not self.registry.has(name):
            if fn is None or schema is None:
                raise ValueError(
                    f"operator {name!r} is not in the framework registry; "
                    "provide both an implementation and a schema to register it"
                )
            self.registry.register(
                OperatorDef(name=name, schema_str=schema, category=OpCategory.CUSTOM, fn=fn)
            )
        self._user_ops.add(name)

    def register_library(self, library: str) -> None:
        """Enable every operator of a library (e.g. ``"fairseq"``) for replay."""
        self.supported_libraries.add(library)

    @property
    def user_registered_ops(self) -> Set[str]:
        return set(self._user_ops)

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def is_supported(self, node: ETNode) -> bool:
        """True when the replayer can reproduce this operator node."""
        if not node.is_operator:
            return False
        category = categorize_node(node)
        if category == CATEGORY_FUSED and not self.replay_fused:
            return False
        if not self.registry.has(node.name):
            return False
        if node.name in self._user_ops:
            return True
        return node.namespace in self.supported_libraries

    def unsupported_reason(self, node: ETNode) -> Optional[str]:
        """Human-readable reason a node is not replayable (``None`` if it is)."""
        if not node.is_operator:
            return "annotation node (no operator schema)"
        if self.is_supported(node):
            return None
        category = categorize_node(node)
        if category == CATEGORY_FUSED and not self.replay_fused:
            return "fused operator (no reconstruction metadata in the ET yet)"
        if not self.registry.has(node.name):
            return "no implementation registered for this operator"
        return f"custom library {node.namespace!r} not registered for replay"
