"""Operator selection (Section 4.2).

Given an execution trace, decide which operators to replay:

* **Parent/child deduplication** — composite operators (``aten::linear``)
  already execute their children (``aten::t``, ``aten::addmm``); replaying
  both would double the work.  Since a parent always executes before its
  children, traversing nodes in execution order and skipping the descendants
  of every kept operator removes the redundancy.
* **Annotation descent** — annotation nodes (``record_function`` labels,
  autograd ``evaluate_function`` wrappers) are never replayed themselves;
  their children are visited instead.
* **Subtrace restriction** — when a ``record_function`` label is given, only
  the operators under that label are considered (Section 7.1).
* **Category filtering** — optionally keep only some operator categories,
  e.g. communication operators only, for network debugging (Section 7.1).
* **Support marking** — each selected operator is marked supported or
  unsupported according to the :class:`~repro.core.registry.ReplaySupport`
  policy; the ratio of supported to selected operators is the coverage rate
  of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.registry import ReplaySupport
from repro.et.analyzer import ALL_CATEGORIES, categorize_node
from repro.et.schema import ETNode
from repro.et.trace import ExecutionTrace
from repro.torchsim.profiler import ProfilerTrace


@dataclass
class ReplayPlanEntry:
    """One selected operator and whether the replayer supports it."""

    node: ETNode
    supported: bool
    category: str
    reason: Optional[str] = None
    #: Total GPU kernel time the operator (and its children) launched in the
    #: original run, from the profiler trace; used for time-based coverage.
    original_gpu_time_us: float = 0.0


@dataclass
class CoverageReport:
    """Operator coverage of a workload (the two columns of Table 3)."""

    total_count: int
    supported_count: int
    total_gpu_time_us: float
    supported_gpu_time_us: float

    @property
    def count_coverage(self) -> float:
        if self.total_count == 0:
            return 1.0
        return self.supported_count / self.total_count

    @property
    def time_coverage(self) -> float:
        if self.total_gpu_time_us <= 0:
            return 1.0
        return self.supported_gpu_time_us / self.total_gpu_time_us


@dataclass
class SelectionResult:
    """Outcome of operator selection over one trace."""

    entries: List[ReplayPlanEntry] = field(default_factory=list)

    def supported_entries(self) -> List[ReplayPlanEntry]:
        return [entry for entry in self.entries if entry.supported]

    def unsupported_entries(self) -> List[ReplayPlanEntry]:
        return [entry for entry in self.entries if not entry.supported]

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.category] = counts.get(entry.category, 0) + 1
        return counts

    def coverage(self) -> CoverageReport:
        return CoverageReport(
            total_count=len(self.entries),
            supported_count=len(self.supported_entries()),
            total_gpu_time_us=sum(entry.original_gpu_time_us for entry in self.entries),
            supported_gpu_time_us=sum(
                entry.original_gpu_time_us for entry in self.supported_entries()
            ),
        )

    def __len__(self) -> int:
        return len(self.entries)


class OperatorSelector:
    """Selects the operators to replay from an execution trace."""

    def __init__(self, support: Optional[ReplaySupport] = None):
        self.support = support if support is not None else ReplaySupport()

    # ------------------------------------------------------------------
    def select(
        self,
        trace: ExecutionTrace,
        profiler_trace: Optional[ProfilerTrace] = None,
        subtrace_label: Optional[str] = None,
        categories: Optional[Sequence[str]] = None,
    ) -> SelectionResult:
        """Build the replay plan for a trace.

        Parameters
        ----------
        trace:
            The execution trace to replay.
        profiler_trace:
            Optional paired profiler trace; when given, each plan entry is
            annotated with the GPU time its original launched, enabling the
            execution-time coverage of Table 3.
        subtrace_label:
            Restrict selection to the operators under this
            ``record_function`` label.
        categories:
            Restrict selection to these operator categories
            (subset of ``{"aten", "comms", "fused", "custom"}``).
        """
        allowed_categories = self._validate_categories(categories)
        allowed_ids = self._subtrace_scope(trace, subtrace_label)

        op_gpu_time = self._gpu_time_per_operator(trace, profiler_trace)

        entries: List[ReplayPlanEntry] = []
        skip_below: Set[int] = set()
        for node in trace.sorted_nodes():
            if node.parent in skip_below or node.id in skip_below:
                skip_below.add(node.id)
                continue
            if allowed_ids is not None and node.id not in allowed_ids:
                continue
            if not node.is_operator:
                continue
            # Keep the operator, skip its children (Section 4.2).
            skip_below.add(node.id)
            category = categorize_node(node)
            if allowed_categories is not None and category not in allowed_categories:
                continue
            supported = self.support.is_supported(node)
            entries.append(
                ReplayPlanEntry(
                    node=node,
                    supported=supported,
                    category=category,
                    reason=None if supported else self.support.unsupported_reason(node),
                    original_gpu_time_us=op_gpu_time.get(node.id, 0.0),
                )
            )
        return SelectionResult(entries=entries)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_categories(categories: Optional[Sequence[str]]) -> Optional[Set[str]]:
        if categories is None:
            return None
        allowed = set(categories)
        unknown = allowed.difference(ALL_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown operator categories: {sorted(unknown)}")
        return allowed

    @staticmethod
    def _subtrace_scope(trace: ExecutionTrace, label: Optional[str]) -> Optional[Set[int]]:
        if label is None:
            return None
        anchors = trace.find_by_label(label)
        if not anchors:
            raise KeyError(f"record_function label {label!r} not found in the trace")
        scope: Set[int] = set()
        for anchor in anchors:
            scope.update(node.id for node in trace.descendants(anchor.id))
        return scope

    @staticmethod
    def _gpu_time_per_operator(
        trace: ExecutionTrace, profiler_trace: Optional[ProfilerTrace]
    ) -> Dict[int, float]:
        """GPU kernel time per trace node, rolled up to each node itself.

        Kernels are recorded against the node that launched them, which may
        be a child of the selected operator; roll child time up to every
        ancestor so selected parents see the full cost.
        """
        if profiler_trace is None:
            return {}
        per_node = profiler_trace.op_gpu_time_map()
        rolled: Dict[int, float] = dict(per_node)
        parent_of = {node.id: node.parent for node in trace.nodes}
        for node_id, gpu_time in per_node.items():
            parent = parent_of.get(node_id, 0)
            seen: Set[int] = set()
            while parent and parent in parent_of and parent not in seen:
                seen.add(parent)
                rolled[parent] = rolled.get(parent, 0.0) + gpu_time
                parent = parent_of.get(parent, 0)
        return rolled
