"""Parallel stream assignment (Section 4.5).

A model's CUDA-stream usage (compute on the default stream, collectives and
host/device copies on side streams) has a significant performance impact
because kernels on different streams overlap.  The execution trace does not
record stream information, so Mystique extracts the operator → stream
mapping from the paired profiler trace and dispatches each replayed operator
to its original stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.et.trace import ExecutionTrace
from repro.torchsim.profiler import ProfilerTrace
from repro.torchsim.stream import DEFAULT_COMPUTE_STREAM


@dataclass
class StreamAssignment:
    """Operator node id → stream the replayer should dispatch it to."""

    op_streams: Dict[int, int] = field(default_factory=dict)
    default_stream: int = DEFAULT_COMPUTE_STREAM

    def stream_for(self, node_id: int) -> int:
        return self.op_streams.get(node_id, self.default_stream)

    def streams_used(self) -> List[int]:
        return sorted(set(self.op_streams.values()) | {self.default_stream})


class StreamAssigner:
    """Builds the stream assignment from a profiler trace."""

    def __init__(self, default_stream: int = DEFAULT_COMPUTE_STREAM):
        self.default_stream = default_stream

    def assign(
        self,
        trace: ExecutionTrace,
        profiler_trace: Optional[ProfilerTrace],
    ) -> StreamAssignment:
        """Derive the operator→stream mapping.

        Kernels are recorded against the (possibly nested) node that
        launched them; the stream of a selected operator is the stream most
        of its own/descendant kernel time ran on.  Without a profiler trace
        everything falls back to the default stream — the replay still runs,
        it just loses compute/communication overlap, which is exactly the
        degradation the paper motivates the profiler-trace pairing with.
        """
        assignment = StreamAssignment(default_stream=self.default_stream)
        if profiler_trace is None:
            return assignment

        # Stream time per launching node.
        per_node_stream_time: Dict[int, Dict[int, float]] = {}
        for kernel in profiler_trace.kernels():
            if kernel.stream is None:
                continue
            per_node_stream_time.setdefault(kernel.op_node_id, {}).setdefault(kernel.stream, 0.0)
            per_node_stream_time[kernel.op_node_id][kernel.stream] += kernel.dur

        # Roll descendant kernels up to every ancestor node.
        parent_of = {node.id: node.parent for node in trace.nodes}
        rolled: Dict[int, Dict[int, float]] = {}
        for node_id, stream_time in per_node_stream_time.items():
            current = node_id
            seen = set()
            while current and current not in seen:
                seen.add(current)
                bucket = rolled.setdefault(current, {})
                for stream, duration in stream_time.items():
                    bucket[stream] = bucket.get(stream, 0.0) + duration
                current = parent_of.get(current, 0)

        for node_id, stream_time in rolled.items():
            dominant = max(stream_time.items(), key=lambda item: item[1])[0]
            assignment.op_streams[node_id] = dominant
        return assignment
