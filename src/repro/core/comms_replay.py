"""Communication-operator replay (Section 4.3.2).

Replaying a communication operator needs more than its schema: the process
group it ran on, the message size and dtype, and whether the call was
blocking.  All of that is recorded in the execution trace; this module

* extracts the communication operators and their recorded process groups,
* creates replay-side process groups and maps the recorded groups onto them
  (optionally remapping ranks, e.g. when replaying a 64-rank trace on a
  2-rank test setup), and
* summarises the communication pattern (per-collective byte counts), which
  the scale-down emulator and the network-debugging use case build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.et.analyzer import CATEGORY_COMMS, categorize_node, node_input_tensor_bytes
from repro.et.schema import ETNode
from repro.et.trace import ExecutionTrace
from repro.torchsim.distributed import DistributedContext, ProcessGroup


@dataclass
class CommOpRecord:
    """One communication operator extracted from a trace."""

    node_id: int
    name: str
    bytes_per_rank: float
    recorded_group: Dict[str, object]
    async_op: bool


@dataclass
class CommSummary:
    """Aggregate communication pattern of a trace."""

    total_bytes: float = 0.0
    per_collective_bytes: Dict[str, float] = field(default_factory=dict)
    per_collective_count: Dict[str, int] = field(default_factory=dict)
    world_sizes: List[int] = field(default_factory=list)


class CommReplayManager:
    """Maps recorded process groups onto replay-side groups."""

    def __init__(self, dist: Optional[DistributedContext] = None, remap_to_world_size: Optional[int] = None):
        self.dist = dist
        self.remap_to_world_size = remap_to_world_size
        self._group_cache: Dict[str, ProcessGroup] = {}

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    @staticmethod
    def extract(trace: ExecutionTrace) -> List[CommOpRecord]:
        """All communication operators of a trace with their metadata."""
        records: List[CommOpRecord] = []
        for node in trace.operators():
            if categorize_node(node) != CATEGORY_COMMS:
                continue
            records.append(
                CommOpRecord(
                    node_id=node.id,
                    name=node.name,
                    bytes_per_rank=_tensor_bytes(node),
                    recorded_group=_recorded_group(node),
                    async_op=_async_flag(node),
                )
            )
        return records

    @staticmethod
    def summarize(trace: ExecutionTrace) -> CommSummary:
        summary = CommSummary()
        for record in CommReplayManager.extract(trace):
            summary.total_bytes += record.bytes_per_rank
            summary.per_collective_bytes[record.name] = (
                summary.per_collective_bytes.get(record.name, 0.0) + record.bytes_per_rank
            )
            summary.per_collective_count[record.name] = (
                summary.per_collective_count.get(record.name, 0) + 1
            )
            ranks = record.recorded_group.get("ranks")
            if isinstance(ranks, (list, tuple)) and ranks:
                summary.world_sizes.append(len(ranks))
        return summary

    # ------------------------------------------------------------------
    # Group mapping
    # ------------------------------------------------------------------
    def map_group(self, recorded_group: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Return the process-group description the replayed op should use.

        With ``remap_to_world_size`` set, the recorded ranks are folded onto
        the smaller replay world (rank ``r`` → ``r % world_size``), which is
        how a large-scale trace is replayed on a small test setup while
        keeping a valid group structure.  Without it the recorded group is
        used verbatim, so the collective cost model still prices the
        original group size — the basis of the scale-down emulation.

        Folding can collapse a recorded group onto a **single** rank (any
        group replayed with ``remap_to_world_size=1``, or a sub-world
        group whose ranks are congruent modulo the replay world).  Such a
        singleton "collective" has nothing to exchange; the collective
        operators price it as a free local no-op (no alpha-beta cost)
        instead of consulting the interconnect model.
        """
        if not recorded_group:
            return None
        if self.remap_to_world_size is None:
            return dict(recorded_group)
        ranks = recorded_group.get("ranks", [])
        remapped = sorted({int(rank) % self.remap_to_world_size for rank in ranks})
        return {
            "pg_id": recorded_group.get("pg_id", 0),
            "ranks": remapped,
            "backend": recorded_group.get("backend", "nccl"),
        }

    def ensure_groups(self, records: Sequence[CommOpRecord]) -> List[ProcessGroup]:
        """Pre-create every process group the replay will need.

        Creating groups during initialisation (rather than lazily inside the
        measured region) mirrors the paper's implementation and avoids
        perturbing the replayed timing.
        """
        if self.dist is None:
            return []
        groups: List[ProcessGroup] = []
        for record in records:
            description = self.map_group(record.recorded_group)
            if description is None:
                continue
            key = repr(sorted(description.items()))
            if key in self._group_cache:
                continue
            group = self.dist.group_for_description(description)
            self._group_cache[key] = group
            groups.append(group)
        return groups


# ----------------------------------------------------------------------
def _tensor_bytes(node: ETNode) -> float:
    return float(node_input_tensor_bytes(node))


def _recorded_group(node: ETNode) -> Dict[str, object]:
    for value, type_str in zip(node.inputs, node.input_types):
        if type_str == "Dict" and isinstance(value, dict) and "ranks" in value:
            return dict(value)
    return {}


def _async_flag(node: ETNode) -> bool:
    for value, type_str in zip(reversed(node.inputs), reversed(node.input_types)):
        if type_str == "Bool":
            return bool(value)
    return False
