"""The replay stage pipeline.

One replay (Section 4 of the paper) is a sequence of well-defined steps:
select the operators to replay, reconstruct a callable per operator,
materialise the tensors they need, re-create the recorded stream placement,
initialise the (possibly distributed) runtime, execute the operators in the
recorded order, and measure the run.  Historically those steps were fused
inside :meth:`repro.core.replayer.Replayer.run`; this module breaks them
into first-class stage objects with a common protocol, composed by a
:class:`ReplayPipeline` that threads a typed :class:`ReplayContext` between
them.

The pipeline is the single replay implementation in the package — the
legacy :class:`~repro.core.replayer.Replayer` is a thin deprecated shim
over it, and the public entry point is the :mod:`repro.api` facade.

Why stages?  Every consumer can now

* *observe* a replay (register :class:`ReplayHook` objects for stage
  lifecycle events and per-operator callbacks — progress bars, tracing,
  metric taps),
* *customise* a replay (insert, replace or skip stages without touching
  core internals), and
* *reuse* the build phase (run only the build stages to get a plan, then
  execute it many times).

Determinism note: the stages reproduce the legacy ``Replayer`` execution
order operation-for-operation, so results (and therefore the service
layer's cached result digests) are byte-identical to the pre-pipeline
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.comms_replay import CommReplayManager
from repro.core.reconstruction import OperatorReconstructor, ReconstructionError, ReconstructedOp
from repro.core.registry import ReplaySupport
from repro.core.selection import OperatorSelector, SelectionResult
from repro.core.streams import StreamAssigner, StreamAssignment
from repro.core.tensors import TensorManager
from repro.core.vectorize import replay_entries_vectorized
from repro.hardware.counters import compute_system_metrics
from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.profiler import Profiler
from repro.torchsim.runtime import Runtime
from repro.et.trace import ExecutionTrace


class ReplayPipelineError(RuntimeError):
    """A stage was run against a context missing its prerequisites, or the
    pipeline finished without producing a result."""


class CheckpointError(RuntimeError):
    """A resume was attempted against a checkpoint that does not match the
    replay (different trace/config, or the re-executed prefix diverged from
    the recorded clock fingerprint — the code or inputs changed)."""


#: Bumped whenever the serialized checkpoint shape changes; a version
#: mismatch fails the resume instead of silently misreading the token.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass
class ReplayCheckpoint:
    """Progress token of a paused replay, captured at an iteration boundary.

    Replay is a pure function of (trace, config): the virtual runtime is
    deterministic, so a paused replay *resumes by re-execution* — the build
    stages re-run (cheap), the completed warm-up/measured iterations replay
    again, and the checkpoint's :attr:`clock_fingerprint` (the runtime's
    :meth:`~repro.torchsim.runtime.Runtime.clock_state` at the pause point)
    is verified before execution continues.  That discipline is what makes
    the resumed result **byte-identical** to an uninterrupted run: nothing
    is approximated or spliced, and any drift (a changed trace, config or
    cost model) is caught as a :class:`CheckpointError` instead of
    producing silently different numbers.

    The token is JSON-serialisable (``to_dict``/``from_dict``) so the
    daemon can snapshot it to disk and resume across process restarts.
    """

    trace_digest: str
    config_digest: str
    completed_warmup: int
    completed_iterations: int
    #: ``Runtime.clock_state()`` at the pause boundary, normalised to JSON
    #: primitives: ``[clocks dict, next node id, next correlation id,
    #: current thread]``.
    clock_fingerprint: List[Any] = field(default_factory=list)
    iteration_times_us: List[float] = field(default_factory=list)
    replayed_ops: int = 0
    skipped_ops: int = 0
    measure_start_us: float = 0.0
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "trace_digest": self.trace_digest,
            "config_digest": self.config_digest,
            "completed_warmup": self.completed_warmup,
            "completed_iterations": self.completed_iterations,
            "clock_fingerprint": list(self.clock_fingerprint),
            "iteration_times_us": list(self.iteration_times_us),
            "replayed_ops": self.replayed_ops,
            "skipped_ops": self.skipped_ops,
            "measure_start_us": self.measure_start_us,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayCheckpoint":
        version = int(data.get("schema_version", 0))
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema version {version} does not match this build's "
                f"{CHECKPOINT_SCHEMA_VERSION}; the job must be re-run from scratch"
            )
        return cls(
            trace_digest=str(data["trace_digest"]),
            config_digest=str(data["config_digest"]),
            completed_warmup=int(data["completed_warmup"]),
            completed_iterations=int(data["completed_iterations"]),
            clock_fingerprint=list(data.get("clock_fingerprint", [])),
            iteration_times_us=[float(t) for t in data.get("iteration_times_us", [])],
            replayed_ops=int(data.get("replayed_ops", 0)),
            skipped_ops=int(data.get("skipped_ops", 0)),
            measure_start_us=float(data.get("measure_start_us", 0.0)),
        )


def _clock_fingerprint(runtime: Runtime) -> List[Any]:
    """``Runtime.clock_state()`` normalised to JSON primitives so the
    fingerprint survives a ``json.dumps``/``loads`` round-trip intact."""
    clocks, next_node_id, next_correlation_id, current_thread = runtime.clock_state()
    return [
        {str(k): float(v) for k, v in clocks.items()},
        int(next_node_id),
        int(next_correlation_id),
        str(current_thread),
    ]


class ReplayPaused(BaseException):
    """Control-flow signal: the replay honoured a pause request at an
    iteration boundary and captured a :class:`ReplayCheckpoint`.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so generic
    job-error handling — e.g. the batch layer's per-job ``except
    Exception`` — cannot mistake a cooperative pause for a failure.
    """

    def __init__(self, checkpoint: ReplayCheckpoint) -> None:
        super().__init__(
            f"replay paused after {checkpoint.completed_warmup} warm-up and "
            f"{checkpoint.completed_iterations} measured iteration(s)"
        )
        self.checkpoint = checkpoint


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
@dataclass
class ReplayContext:
    """Everything one replay reads and produces, threaded between stages.

    The build stages fill the middle block (selection, reconstructed ops,
    tensors, streams); the execution stages fill the measurement block and
    finally :attr:`result`.  ``extras`` is a scratch dict for user stages
    and hooks — core stages never touch it.
    """

    trace: ExecutionTrace
    config: "ReplayConfig" = None  # type: ignore[assignment]
    profiler_trace: Optional[Any] = None
    support: Optional[ReplaySupport] = None
    runtime: Optional[Runtime] = None
    hooks: List["ReplayHook"] = field(default_factory=list)

    # Build products.
    selection: Optional[SelectionResult] = None
    reconstructed: Dict[int, ReconstructedOp] = field(default_factory=dict)
    reconstruction_failures: Dict[int, str] = field(default_factory=dict)
    tensor_manager: Optional[TensorManager] = None
    stream_assignment: Optional[StreamAssignment] = None

    # Execution products.
    profiler: Optional[Profiler] = None
    iteration_times_us: List[float] = field(default_factory=list)
    replayed_ops: int = 0
    skipped_ops: int = 0
    measure_start_us: float = 0.0
    measure_end_us: float = 0.0
    #: True while a *measured* iteration is replaying (False during warm-up),
    #: so per-op hooks can tell the two apart.
    measuring: bool = False

    # Final product.
    result: Optional["ReplayResult"] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.core.replayer import ReplayConfig

        if self.config is None:
            self.config = ReplayConfig()
        if self.support is None:
            self.support = ReplaySupport()

    # ------------------------------------------------------------------
    def require(self, attribute: str, stage: "ReplayStage") -> Any:
        """Fetch a context attribute a stage depends on, or fail clearly."""
        value = getattr(self, attribute)
        if value is None:
            raise ReplayPipelineError(
                f"stage {stage.name!r} requires context.{attribute}, which no earlier "
                f"stage produced — check the pipeline's stage order"
            )
        return value

    def emit_op_replayed(self, entry, output) -> None:
        """Notify every registered hook that one operator was replayed."""
        for hook in self.hooks:
            hook.on_op_replayed(self, entry, output)


# ----------------------------------------------------------------------
# Hooks
# ----------------------------------------------------------------------
class ReplayHook:
    """Observer of a replay's lifecycle.

    Subclass and override any subset; every method is a no-op by default.
    Hooks must not mutate the context's build/measurement products — use
    ``context.extras`` for hook-owned state.
    """

    def on_stage_start(self, context: ReplayContext, stage: "ReplayStage") -> None:
        """Called immediately before ``stage.run(context)``."""

    def on_stage_end(self, context: ReplayContext, stage: "ReplayStage") -> None:
        """Called after ``stage.run(context)`` returned normally."""

    def on_op_replayed(self, context: ReplayContext, entry, output) -> None:
        """Called after each replayed operator (warm-up and measured
        iterations alike; check ``context.measuring`` to tell them apart)."""

    def on_error(self, context: ReplayContext, stage: "ReplayStage", error: BaseException) -> None:
        """Called when ``stage.run(context)`` raised; the error re-raises."""

    def on_resume(self, context: ReplayContext) -> None:
        """Called when a cooperative scheduler hands control back to this
        replay after running other work (the event-driven cluster engine
        interleaves many ranks on one thread).  Wall-clock observers should
        re-anchor their marks here so time spent replaying *other* ranks is
        not attributed to this replay's next operator.  Never called in
        single-replay (non-interleaved) runs."""


# ----------------------------------------------------------------------
# Stage protocol and the seven core stages
# ----------------------------------------------------------------------
class ReplayStage:
    """One step of a replay: reads and mutates the :class:`ReplayContext`.

    Stages are identified by :attr:`name` for pipeline composition
    (insert/replace/skip).  A stage must be reusable across contexts — keep
    per-replay state on the context, not on the stage.
    """

    name: str = "stage"

    def run(self, context: ReplayContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SelectStage(ReplayStage):
    """Choose which trace nodes to replay (subtrace labels, categories,
    parent/child deduplication) — Section 4.2."""

    name = "select"

    def run(self, context: ReplayContext) -> None:
        selector = OperatorSelector(context.support)
        context.selection = selector.select(
            context.trace,
            profiler_trace=context.profiler_trace,
            subtrace_label=context.config.subtrace_label,
            categories=context.config.categories,
        )


class ReconstructStage(ReplayStage):
    """Turn each selected ET node back into a callable — Section 4.3.

    Communication nodes optionally have their recorded process group
    remapped onto a smaller replay world first."""

    name = "reconstruct"

    def run(self, context: ReplayContext) -> None:
        selection = context.require("selection", self)
        reconstructor = OperatorReconstructor(context.support.registry)
        group_mapper = CommReplayManager(None, context.config.remap_world_size)
        context.reconstructed = {}
        context.reconstruction_failures = {}
        for entry in selection.supported_entries():
            node = entry.node
            if context.config.remap_world_size is not None and entry.category == "comms":
                node = _with_remapped_group(node, group_mapper)
            try:
                context.reconstructed[entry.node.id] = reconstructor.reconstruct(node)
            except ReconstructionError as error:
                entry.supported = False
                entry.reason = str(error)
                context.reconstruction_failures[entry.node.id] = str(error)


class MaterializeTensorsStage(ReplayStage):
    """Classify recorded tensors as intermediate vs external and prepare
    their materialisation — Section 4.4."""

    name = "materialize-tensors"

    def run(self, context: ReplayContext) -> None:
        selection = context.require("selection", self)
        context.tensor_manager = TensorManager(embedding_config=context.config.embedding_config)
        context.tensor_manager.classify(selection.entries)


class AssignStreamsStage(ReplayStage):
    """Re-create the recorded operator-to-stream placement — Section 4.5."""

    name = "assign-streams"

    def run(self, context: ReplayContext) -> None:
        profiler_trace = context.profiler_trace if context.config.use_streams else None
        context.stream_assignment = StreamAssigner().assign(context.trace, profiler_trace)


class InitCommsStage(ReplayStage):
    """Create the runtime (and distributed context) the replay runs on and
    re-create the recorded process groups — Section 4.6.

    A runtime already present on the context (injected by the caller) is
    kept; only the communication groups are ensured on it."""

    name = "init-comms"

    def run(self, context: ReplayContext) -> None:
        if context.runtime is None:
            context.runtime = make_replay_runtime(context.trace, context.config)
        if context.runtime.dist is not None:
            comm_manager = CommReplayManager(context.runtime.dist, context.config.remap_world_size)
            comm_manager.ensure_groups(CommReplayManager.extract(context.trace))


class ExecuteStage(ReplayStage):
    """Replay the selected operators in the recorded order: warm-up
    iterations first (unmeasured, unprofiled), then the measured ones.

    The stage is the pipeline's checkpoint boundary.  ``pause_check`` (a
    zero-argument callable) is polled at every iteration boundary — the
    point where all of the iteration's op programs have completed — and a
    truthy return raises :class:`ReplayPaused` carrying a
    :class:`ReplayCheckpoint`.  ``resume_from`` replays a previously
    captured checkpoint: the completed iterations re-execute
    deterministically and the runtime's clock state is verified against the
    checkpoint's fingerprint at the recorded boundary (see
    :class:`ReplayCheckpoint` for why this yields byte-identical results).
    Both default to ``None``, leaving the stage's behaviour unchanged.
    """

    name = "execute"

    def __init__(
        self,
        pause_check: Optional[Any] = None,
        resume_from: Optional[ReplayCheckpoint] = None,
    ) -> None:
        self.pause_check = pause_check
        self.resume_from = resume_from

    def run(self, context: ReplayContext) -> None:
        runtime = context.require("runtime", self)
        context.require("selection", self)
        context.require("tensor_manager", self)
        context.require("stream_assignment", self)

        if self.resume_from is not None:
            self._check_resume_inputs(context, self.resume_from)

        profiler: Optional[Profiler] = None
        if context.config.profile:
            profiler = runtime.attach_profiler(Profiler())
        context.profiler = profiler

        warmup_total = context.config.warmup_iterations
        measured_total = max(1, context.config.iterations)

        context.measuring = False
        for index in range(warmup_total):
            self._replay_once(context, runtime)
            self._boundary(context, runtime, index + 1, 0, warmup_total, measured_total)

        if profiler is not None:
            profiler.start()
        context.measure_start_us = runtime.synchronize()
        context.iteration_times_us = []
        context.replayed_ops = 0
        context.skipped_ops = 0
        context.measuring = True
        for index in range(measured_total):
            start = runtime.synchronize()
            replayed, skipped = self._replay_once(context, runtime)
            end = runtime.synchronize()
            context.iteration_times_us.append(end - start)
            context.replayed_ops += replayed
            context.skipped_ops += skipped
            self._boundary(
                context, runtime, warmup_total, index + 1, warmup_total, measured_total
            )
        context.measuring = False
        context.measure_end_us = runtime.synchronize()
        if profiler is not None:
            profiler.stop()

    # ------------------------------------------------------------------
    # Checkpoint boundaries
    # ------------------------------------------------------------------
    def _boundary(
        self,
        context: ReplayContext,
        runtime: Runtime,
        warmup_done: int,
        measured_done: int,
        warmup_total: int,
        measured_total: int,
    ) -> None:
        """One iteration boundary: verify a resume fingerprint when this is
        the resumed checkpoint's position, then honour a pending pause
        request (never after the final iteration — the replay is done)."""
        resume = self.resume_from
        if (
            resume is not None
            and warmup_done == resume.completed_warmup
            and measured_done == resume.completed_iterations
        ):
            self._verify_fingerprint(context, runtime, resume)
        if self.pause_check is None or not self.pause_check():
            return
        if warmup_done >= warmup_total and measured_done >= measured_total:
            return  # all work done; finishing beats pausing
        raise ReplayPaused(self._capture(context, runtime, warmup_done, measured_done))

    def _capture(
        self,
        context: ReplayContext,
        runtime: Runtime,
        warmup_done: int,
        measured_done: int,
    ) -> ReplayCheckpoint:
        return ReplayCheckpoint(
            trace_digest=context.trace.digest(),
            config_digest=context.config.digest(),
            completed_warmup=warmup_done,
            completed_iterations=measured_done,
            clock_fingerprint=_clock_fingerprint(runtime),
            iteration_times_us=list(context.iteration_times_us),
            replayed_ops=context.replayed_ops,
            skipped_ops=context.skipped_ops,
            measure_start_us=context.measure_start_us,
        )

    @staticmethod
    def _check_resume_inputs(context: ReplayContext, resume: ReplayCheckpoint) -> None:
        trace_digest = context.trace.digest()
        if resume.trace_digest and trace_digest != resume.trace_digest:
            raise CheckpointError(
                f"checkpoint was captured for trace digest {resume.trace_digest[:12]}…, "
                f"but the replay is running trace digest {trace_digest[:12]}…"
            )
        config_digest = context.config.digest()
        if resume.config_digest and config_digest != resume.config_digest:
            raise CheckpointError(
                "checkpoint was captured under a different ReplayConfig "
                f"({resume.config_digest[:12]}… vs {config_digest[:12]}…)"
            )

    @staticmethod
    def _verify_fingerprint(
        context: ReplayContext, runtime: Runtime, resume: ReplayCheckpoint
    ) -> None:
        current = _clock_fingerprint(runtime)
        if resume.clock_fingerprint and current != resume.clock_fingerprint:
            raise CheckpointError(
                "re-executed replay prefix diverged from the checkpoint's clock "
                "fingerprint — the trace, config or cost model changed since the "
                f"pause (checkpoint at warmup={resume.completed_warmup}, "
                f"iteration={resume.completed_iterations})"
            )

    # ------------------------------------------------------------------
    def _replay_once(self, context: ReplayContext, runtime: Runtime) -> tuple:
        """Replay every selected operator once, in execution order.

        Dispatches to the vectorized executor (:mod:`repro.core.vectorize`)
        unless ``config.vectorized=False`` or an execution-graph observer is
        recording (the fast path reproduces clocks, kernels and profiler
        events, but not observer callbacks).  Both paths produce
        byte-identical replay results.
        """
        if getattr(context.config, "vectorized", True) and (
            runtime.observer is None or not runtime.observer.enabled
        ):
            return replay_entries_vectorized(context, runtime)
        return self._replay_once_scalar(context, runtime)

    def _replay_once_scalar(self, context: ReplayContext, runtime: Runtime) -> tuple:
        """The reference one-op-at-a-time loop (``vectorized=False``)."""
        replayed = 0
        skipped = 0
        notify = bool(context.hooks)
        context.tensor_manager.reset_intermediates()
        for entry in context.selection.entries:
            if not entry.supported:
                skipped += 1
                continue
            reconstructed = context.reconstructed.get(entry.node.id)
            if reconstructed is None:
                skipped += 1
                continue
            tensors = context.tensor_manager.gather_inputs(entry.node)
            stream = (
                context.stream_assignment.stream_for(entry.node.id)
                if context.config.use_streams
                else context.stream_assignment.default_stream
            )
            result = reconstructed.function(runtime, *tensors, stream=stream)
            context.tensor_manager.register_outputs(entry.node, result)
            replayed += 1
            if notify:
                context.emit_op_replayed(entry, result)
        return replayed, skipped


class TrackMemoryStage(ReplayStage):
    """Simulate the replay's device-memory footprint (off by default).

    A purely observational stage: it runs the static caching-allocator
    simulation of :mod:`repro.memory` over the selected operators and
    stores the :class:`~repro.memory.report.MemoryReport` in
    ``context.extras["memory_report"]`` (the measure stage copies it onto
    the final result).  It never touches the runtime, the tensor manager
    or the measurement window, so enabling it leaves replay results and
    cache digests byte-identical — the equivalence contract
    ``tests/test_memory_subsystem.py`` asserts.

    ``budget`` bounds the simulated pool (bytes or ``"16GB"``-style
    string; default: the config device's capacity).  ``on_oom`` decides
    what a simulated OOM does: ``"record"`` (default) keeps it as data on
    the report, ``"raise"`` aborts the replay with
    :class:`~repro.memory.report.SimulatedOOMError` naming the failing
    operator.
    """

    name = "track-memory"

    #: Key under which the report is published on ``context.extras``.
    EXTRAS_KEY = "memory_report"

    def __init__(
        self,
        budget: Optional[Any] = None,
        on_oom: str = "record",
        keep_timeline: bool = True,
    ) -> None:
        if on_oom not in ("record", "raise"):
            raise ValueError(f"on_oom must be 'record' or 'raise', got {on_oom!r}")
        self.budget = budget
        self.on_oom = on_oom
        self.keep_timeline = keep_timeline

    def run(self, context: ReplayContext) -> None:
        from repro.memory.report import simulate_memory

        selection = context.require("selection", self)
        stream_for = None
        if context.stream_assignment is not None and context.config.use_streams:
            assignment = context.stream_assignment
            stream_for = lambda node_id: assignment.stream_for(node_id)  # noqa: E731
        report = simulate_memory(
            context.trace,
            device=context.config.device,
            budget=self.budget,
            entries=selection.entries,
            trace_name=str(context.trace.metadata.get("workload", "")),
            stream_for=stream_for,
            keep_timeline=self.keep_timeline,
        )
        context.extras[self.EXTRAS_KEY] = report
        if self.on_oom == "raise":
            report.raise_if_oom()


class MeasureStage(ReplayStage):
    """Resolve the measurement window into timeline stats, system metrics
    and the final :class:`~repro.core.replayer.ReplayResult`."""

    name = "measure"

    def run(self, context: ReplayContext) -> None:
        from repro.core.replayer import ReplayResult

        runtime = context.require("runtime", self)
        selection = context.require("selection", self)
        stats = runtime.timeline_stats(
            window_start=context.measure_start_us, window_end=context.measure_end_us
        )
        metrics = compute_system_metrics(stats, runtime.spec, context.config.power_limit_w)
        launches = [
            launch for launch in runtime.gpu.launches
            if launch.start is not None and launch.start >= context.measure_start_us
        ]
        context.result = ReplayResult(
            iteration_times_us=list(context.iteration_times_us),
            coverage=selection.coverage(),
            replayed_ops=context.replayed_ops,
            skipped_ops=context.skipped_ops,
            timeline_stats=stats,
            system_metrics=metrics,
            profiler_trace=context.profiler.trace if context.profiler is not None else None,
            kernel_launches=launches,
            memory_report=context.extras.get(TrackMemoryStage.EXTRAS_KEY),
        )


#: Names of the stages that make up the initialisation (build) phase.
BUILD_STAGE_NAMES = ("select", "reconstruct", "materialize-tensors", "assign-streams")


def make_collective_cost_model(config: "ReplayConfig") -> CollectiveCostModel:
    """The collective pricing model ``config`` describes: interconnect
    spec, comm-delay knobs and the optional hierarchical topology preset.
    Shared by the single-rank runtime and the cluster engine so a
    one-replica cluster replay prices collectives identically to the
    single-rank pipeline."""
    from repro.hardware.network import topology_from_name

    spec = config.interconnect or InterconnectSpec()
    return CollectiveCostModel(
        spec=spec,
        delay_scale=config.comm_delay_scale,
        extra_delay_us=config.comm_extra_delay_us,
        topology=topology_from_name(getattr(config, "topology", None), spec),
    )


def make_replay_runtime(trace: ExecutionTrace, config: "ReplayConfig") -> Runtime:
    """The runtime (and distributed context) a replay of ``trace`` under
    ``config`` runs on.  World size defaults to the trace metadata's."""
    world_size = config.world_size
    if world_size is None:
        world_size = int(trace.metadata.get("world_size", 1))
    dist: Optional[DistributedContext] = None
    if world_size > 1:
        collective_model = make_collective_cost_model(config)
        dist = DistributedContext(
            rank=min(config.rank, world_size - 1),
            world_size=world_size,
            collective_model=collective_model,
        )
    return Runtime(
        device=config.device,
        power_limit_w=config.power_limit_w,
        cost_model_mode=config.cost_model_mode,
        rank=config.rank,
        dist=dist,
    )


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
class ReplayPipeline:
    """An ordered list of stages threading one :class:`ReplayContext`.

    Composition methods mutate in place and return ``self`` so they chain::

        pipeline = (
            ReplayPipeline.default()
            .insert_after("execute", MyTapStage())
            .skip("measure")
            .add_hook(ProgressHook())
        )

    Hooks registered on the pipeline are merged (order-preserving, deduped)
    into ``context.hooks`` at :meth:`run` time, so per-op events reach them
    too.
    """

    def __init__(
        self,
        stages: Optional[Sequence[ReplayStage]] = None,
        hooks: Optional[Sequence[ReplayHook]] = None,
    ) -> None:
        self.stages: List[ReplayStage] = (
            list(stages) if stages is not None else self.default_stages()
        )
        self.hooks: List[ReplayHook] = list(hooks or [])

    @staticmethod
    def default_stages() -> List[ReplayStage]:
        """The seven canonical stages, in Section 4 order."""
        return [
            SelectStage(),
            ReconstructStage(),
            MaterializeTensorsStage(),
            AssignStreamsStage(),
            InitCommsStage(),
            ExecuteStage(),
            MeasureStage(),
        ]

    @classmethod
    def default(cls, hooks: Optional[Sequence[ReplayHook]] = None) -> "ReplayPipeline":
        return cls(hooks=hooks)

    @classmethod
    def build_only(cls) -> "ReplayPipeline":
        """Just the initialisation phase (select → … → assign-streams)."""
        pipeline = cls()
        pipeline.stages = [s for s in pipeline.stages if s.name in BUILD_STAGE_NAMES]
        return pipeline

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def _index_of(self, name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage.name == name:
                return index
        raise KeyError(f"no stage named {name!r}; stages are {self.stage_names()}")

    def insert_before(self, name: str, stage: ReplayStage) -> "ReplayPipeline":
        self.stages.insert(self._index_of(name), stage)
        return self

    def insert_after(self, name: str, stage: ReplayStage) -> "ReplayPipeline":
        self.stages.insert(self._index_of(name) + 1, stage)
        return self

    def replace(self, name: str, stage: ReplayStage) -> "ReplayPipeline":
        self.stages[self._index_of(name)] = stage
        return self

    def skip(self, *names: str) -> "ReplayPipeline":
        for name in names:
            del self.stages[self._index_of(name)]
        return self

    def add_hook(self, hook: ReplayHook) -> "ReplayPipeline":
        self.hooks.append(hook)
        return self

    def clone(self) -> "ReplayPipeline":
        """Independent copy (shared stage/hook objects, separate lists)."""
        return ReplayPipeline(stages=list(self.stages), hooks=list(self.hooks))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_context(self, context: ReplayContext) -> ReplayContext:
        """Thread ``context`` through every stage and return it.

        Emits ``on_stage_start``/``on_stage_end`` around each stage and
        ``on_error`` (then re-raises) when a stage fails.  Unlike
        :meth:`run`, no final result is demanded — use this for partial
        pipelines (dry builds, measure-less taps).
        """
        for hook in self.hooks:
            if hook not in context.hooks:
                context.hooks.append(hook)
        for stage in list(self.stages):
            self._dispatch("on_stage_start", context, stage)
            try:
                stage.run(context)
            except Exception as error:
                for hook in context.hooks:
                    # A buggy observer must not mask the real stage error
                    # or starve the remaining hooks of the notification.
                    try:
                        hook.on_error(context, stage, error)
                    except Exception:  # noqa: BLE001
                        pass
                raise
            self._dispatch("on_stage_end", context, stage)
        return context

    def run(self, context: ReplayContext) -> "ReplayResult":
        """Thread ``context`` through every stage and return its result."""
        self.run_context(context)
        if context.result is None:
            raise ReplayPipelineError(
                "pipeline finished without producing a result — it has no "
                f"result-producing stage (stages ran: {self.stage_names()}); "
                "use run_context() for partial pipelines"
            )
        return context.result

    @staticmethod
    def _dispatch(event: str, context: ReplayContext, stage: ReplayStage) -> None:
        for hook in context.hooks:
            getattr(hook, event)(context, stage)


def run_replay(
    trace: ExecutionTrace,
    config: Optional["ReplayConfig"] = None,
    profiler_trace: Optional[Any] = None,
    support: Optional[ReplaySupport] = None,
    hooks: Optional[Sequence[ReplayHook]] = None,
    pipeline: Optional[ReplayPipeline] = None,
    runtime: Optional[Runtime] = None,
    pause_check: Optional[Any] = None,
    resume_from: Optional[ReplayCheckpoint] = None,
) -> "ReplayResult":
    """One-shot replay of ``trace`` through the (default) stage pipeline.

    The convenience wrapper internal consumers share; the fluent public
    entry point is :func:`repro.api.replay`.

    ``pause_check``/``resume_from`` make the replay checkpointable (see
    :class:`ExecuteStage`): a truthy ``pause_check()`` at an iteration
    boundary raises :class:`ReplayPaused` with a :class:`ReplayCheckpoint`,
    and ``resume_from`` continues a previously captured checkpoint by
    deterministic re-execution.  They configure the execute stage, so they
    cannot be combined with an explicit ``pipeline``.
    """
    if (pause_check is not None or resume_from is not None) and pipeline is not None:
        raise ValueError(
            "pause_check/resume_from configure the default execute stage and "
            "cannot be combined with an explicit pipeline; construct the "
            "pipeline with ExecuteStage(pause_check=..., resume_from=...) instead"
        )
    context = ReplayContext(
        trace=trace,
        config=config,
        profiler_trace=profiler_trace,
        support=support,
        runtime=runtime,
        hooks=list(hooks or []),
    )
    if pause_check is not None or resume_from is not None:
        active = ReplayPipeline.default().replace(
            "execute", ExecuteStage(pause_check=pause_check, resume_from=resume_from)
        )
    else:
        active = pipeline if pipeline is not None else ReplayPipeline.default()
    return active.run(context)


def _with_remapped_group(node, group_mapper: CommReplayManager):
    """Copy of a communication node with its process group remapped."""
    from repro.et.schema import ETNode

    copy = ETNode.from_dict(node.to_dict())
    copy.inputs = [
        group_mapper.map_group(value)
        if type_str == "Dict" and isinstance(value, dict) and "ranks" in value
        else value
        for value, type_str in zip(copy.inputs, copy.input_types)
    ]
    return copy
