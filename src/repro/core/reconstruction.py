"""Operator reconstruction (Section 4.3).

For every selected operator the replayer needs a callable that reproduces
the original invocation.  Following the paper:

1. the operator schema captured in the trace is parsed with a string-based
   parser to recover the operator name and argument types,
2. a TorchScript-style IR string is built from the parsed information plus
   the recorded non-tensor argument values,
3. the IR is compiled into a callable function, which during replay invokes
   the operator through the runtime — i.e. through exactly the same dispatch
   path as the original workload.

Reconstruction happens once, during the initialisation phase of the replay,
so it adds no per-iteration overhead (Section 4.3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.et.schema import ETNode, is_tensor_type
from repro.torchsim.jit import CompilationUnit, CompiledFunction, build_ir, parse_ir
from repro.torchsim.ops.registry import OperatorRegistry, global_registry
from repro.torchsim.ops.schema import OperatorSchema, parse_schema


class ReconstructionError(RuntimeError):
    """Raised when an operator node cannot be turned into a callable."""


@dataclass
class ReconstructedOp:
    """The callable for one trace node plus bookkeeping metadata."""

    node_id: int
    op_name: str
    function: CompiledFunction
    tensor_arg_positions: List[int]
    ir_text: str


class OperatorReconstructor:
    """Builds callables for trace operators via schema → IR → compile."""

    def __init__(self, registry: Optional[OperatorRegistry] = None):
        self.registry = registry if registry is not None else global_registry
        self.compilation_unit = CompilationUnit()
        self._cache: Dict[int, ReconstructedOp] = {}

    # ------------------------------------------------------------------
    def reconstruct(self, node: ETNode) -> ReconstructedOp:
        """Reconstruct the callable for one operator node.

        Raises :class:`ReconstructionError` when the node has no parseable
        schema or the operator is unknown to the registry.
        """
        if node.id in self._cache:
            return self._cache[node.id]
        if not node.op_schema:
            raise ReconstructionError(f"node {node.id} ({node.name}) has no operator schema")
        try:
            schema = parse_schema(node.op_schema)
        except ValueError as error:
            raise ReconstructionError(str(error)) from error
        if not self.registry.has(schema.qualified_name):
            raise ReconstructionError(f"operator {schema.qualified_name} is not registered")

        arg_specs, tensor_positions = self._argument_specs(node, schema)
        return_type = schema.returns[0] if schema.returns else "Tensor"
        ir_text = build_ir(schema.qualified_name, arg_specs, return_type=return_type)
        graph = parse_ir(ir_text)
        function = self.compilation_unit.create_function(f"{schema.name}_{node.id}", graph)
        reconstructed = ReconstructedOp(
            node_id=node.id,
            op_name=schema.qualified_name,
            function=function,
            tensor_arg_positions=tensor_positions,
            ir_text=ir_text,
        )
        self._cache[node.id] = reconstructed
        return reconstructed

    # ------------------------------------------------------------------
    def _argument_specs(
        self, node: ETNode, schema: OperatorSchema
    ) -> Tuple[List[Tuple[str, str, Any]], List[int]]:
        """Build ``(name, type, value)`` triples for :func:`build_ir`.

        The recorded inputs are authoritative (the schema may declare more
        trailing arguments than the call site provided); schema argument
        names are used where available, purely for IR readability.
        """
        specs: List[Tuple[str, str, Any]] = []
        tensor_positions: List[int] = []
        for index, (value, type_str) in enumerate(zip(node.inputs, node.input_types)):
            if index < len(schema.args) and schema.args[index].name:
                arg_name = schema.args[index].name
            else:
                arg_name = f"arg{index}"
            is_tensor_like = is_tensor_type(type_str) or type_str.startswith("GenericList[Tensor")
            if is_tensor_like:
                tensor_positions.append(index)
                specs.append((arg_name, type_str, None))
            else:
                specs.append((arg_name, _constant_type(type_str), value))
        return specs, tensor_positions

    def __len__(self) -> int:
        return len(self._cache)


def _constant_type(type_str: str) -> str:
    """Map a recorded argument type string onto a TorchScript constant type."""
    mapping = {
        "Int": "int",
        "Double": "float",
        "Bool": "bool",
        "String": "str",
        "None": "NoneType",
        "Dict": "Dict[str, int]",
        "GenericList[Int]": "int[]",
        "GenericList": "int[]",
        "Unknown": "NoneType",
    }
    return mapping.get(type_str, type_str or "NoneType")
