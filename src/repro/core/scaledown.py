"""Scaled-down performance emulation (Section 7.3).

Training jobs that need hundreds of GPUs are expensive to benchmark at full
scale.  For data-parallel training the local computation per worker does not
change with the worker count — only the communication cost does — so a
large-scale run can be emulated on a small test setup by replaying a
captured rank's trace and adding a *dummy delay* to the communication path
that accounts for the difference between the small test scale and the large
deployment scale.  The delay is derived from the network cost model.

Two modes are provided:

* **as-recorded** — replay the trace with the recorded process groups, so
  collectives are priced at the scale the trace was captured at (this is
  the paper's experiment: reproduce the 64-GPU RM iteration time on a
  2-GPU setup), and
* **emulated-scale** — price collectives as if the job ran at a different
  world size than the captured one, by scaling the communication delay with
  the cost-model ratio between the two scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.comms_replay import CommReplayManager
from repro.core.pipeline import run_replay
from repro.core.replayer import ReplayConfig, ReplayResult
from repro.core.registry import ReplaySupport
from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.et.trace import ExecutionTrace
from repro.torchsim.profiler import ProfilerTrace


@dataclass
class ScaleDownConfig:
    """Configuration of a scaled-down emulation run."""

    #: World size of the deployment whose performance we want to estimate.
    emulated_world_size: int
    #: Number of ranks actually used for the emulation (the test setup).
    replay_ranks: int = 2
    device: str = "A100"
    interconnect: InterconnectSpec = InterconnectSpec()
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.replay_ranks < 1:
            raise ValueError("replay_ranks must be at least 1")
        if self.emulated_world_size < self.replay_ranks:
            raise ValueError("emulated_world_size must be >= replay_ranks")


class ScaleDownEmulator:
    """Estimates large-scale iteration time from a small-scale replay."""

    def __init__(self, config: ScaleDownConfig, support: Optional[ReplaySupport] = None):
        self.config = config
        self.support = support

    # ------------------------------------------------------------------
    def communication_delay_scale(self, trace: ExecutionTrace, captured_world_size: int) -> float:
        """Extra delay factor for collectives when the emulated scale differs
        from the captured scale.

        The factor is the cost-model ratio of the average collective at the
        emulated scale vs. at the captured scale, so replaying a trace that
        was captured at ``captured_world_size`` emulates a deployment of
        ``emulated_world_size`` ranks.
        """
        if captured_world_size == self.config.emulated_world_size:
            return 1.0
        model = CollectiveCostModel(self.config.interconnect)
        records = CommReplayManager.extract(trace)
        if not records:
            return 1.0
        captured_total = 0.0
        emulated_total = 0.0
        for record in records:
            op = record.name.split("::")[-1]
            captured_total += model.collective_us(op, record.bytes_per_rank, captured_world_size)
            emulated_total += model.collective_us(op, record.bytes_per_rank, self.config.emulated_world_size)
        if captured_total <= 0:
            return 1.0
        return emulated_total / captured_total

    # ------------------------------------------------------------------
    def validate_memory(self, trace: ExecutionTrace, budget=None):
        """Check that one captured rank's trace fits the emulation device.

        The whole point of scale-down is replaying a big job on a small
        test setup — which fails in practice when the *test* GPU cannot
        hold the rank's tensors.  This validates that statically (via the
        :mod:`repro.memory` caching-allocator simulation) before any
        replay: returns the :class:`~repro.memory.report.MemoryReport`
        when the trace fits, raises
        :class:`~repro.memory.report.SimulatedOOMError` naming the
        failing operator when it does not.  ``budget`` optionally checks
        against a pool smaller than the device's capacity.
        """
        from repro.memory.report import check_device_fit

        return check_device_fit(
            trace,
            device=self.config.device,
            budget=budget,
            trace_name=str(trace.metadata.get("workload", "")),
        )

    # ------------------------------------------------------------------
    def emulate_rank(
        self,
        trace: ExecutionTrace,
        profiler_trace: Optional[ProfilerTrace] = None,
        rank: int = 0,
    ) -> ReplayResult:
        """Replay one captured rank on the small test setup.

        The recorded process groups are kept, so collectives are priced at
        the captured deployment's scale; if the emulated scale differs from
        the captured one, the communication delay is additionally scaled by
        the cost-model ratio.
        """
        captured_world_size = int(trace.metadata.get("world_size", self.config.emulated_world_size))
        delay_scale = self.communication_delay_scale(trace, captured_world_size)
        config = ReplayConfig(
            device=self.config.device,
            iterations=self.config.iterations,
            world_size=max(2, self.config.replay_ranks),
            rank=min(rank, self.config.replay_ranks - 1),
            interconnect=self.config.interconnect,
            comm_delay_scale=delay_scale,
        )
        return run_replay(trace, config=config, profiler_trace=profiler_trace, support=self.support)

    def emulate(
        self,
        traces: List[ExecutionTrace],
        profiler_traces: Optional[List[ProfilerTrace]] = None,
        validate_memory: bool = False,
    ) -> Dict[str, object]:
        """Replay ``replay_ranks`` captured ranks and aggregate the estimate.

        Returns a dictionary with per-rank results and the estimated
        large-scale iteration time (the mean across the replayed ranks —
        data-parallel ranks are symmetric, so a couple of ranks suffice).

        With ``validate_memory=True``, every selected rank's trace is
        first checked to fit the emulation device's memory
        (:meth:`validate_memory`); the per-rank reports are returned under
        ``"memory_reports"`` and an over-capacity trace aborts with
        :class:`~repro.memory.report.SimulatedOOMError` *before* any
        replay time is spent.
        """
        selected = traces[: self.config.replay_ranks]
        memory_reports = (
            [self.validate_memory(trace) for trace in selected] if validate_memory else None
        )
        results: List[ReplayResult] = []
        for rank, trace in enumerate(selected):
            profiler_trace = None
            if profiler_traces is not None and rank < len(profiler_traces):
                profiler_trace = profiler_traces[rank]
            results.append(self.emulate_rank(trace, profiler_trace, rank=rank))
        mean_time_us = (
            sum(result.mean_iteration_time_us for result in results) / len(results)
            if results
            else 0.0
        )
        outcome: Dict[str, object] = {
            "per_rank_results": results,
            "estimated_iteration_time_us": mean_time_us,
            "estimated_iteration_time_ms": mean_time_us / 1e3,
            "replay_ranks": len(results),
            "emulated_world_size": self.config.emulated_world_size,
        }
        if memory_reports is not None:
            outcome["memory_reports"] = memory_reports
        return outcome
