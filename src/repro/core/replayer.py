"""The ET replayer (Section 4.6).

Putting the pipeline together: select the operators to replay, reconstruct a
callable for each, prepare the necessary tensors, initialise the distributed
environment if the trace came from a multi-rank job, and then replay the
operators with the original execution order, input arguments (but not tensor
values), data dependencies and stream placement, to reproduce the original
performance characteristics.

The replayer is also the configuration point for the use cases of Section 7:
subtrace replay, operator-type filtering, and scaled-down performance
emulation (through the communication-delay knobs).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.comms_replay import CommReplayManager
from repro.core.reconstruction import OperatorReconstructor, ReconstructionError, ReconstructedOp
from repro.core.registry import ReplaySupport
from repro.core.selection import CoverageReport, OperatorSelector, ReplayPlanEntry, SelectionResult
from repro.core.streams import StreamAssigner, StreamAssignment
from repro.core.tensors import EmbeddingValueConfig, TensorManager
from repro.hardware.counters import SystemMetrics, compute_system_metrics
from repro.hardware.gpu import TimelineStats
from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.torchsim.distributed import DistributedContext
from repro.torchsim.kernel import KernelLaunch
from repro.torchsim.profiler import Profiler, ProfilerTrace
from repro.torchsim.runtime import Runtime
from repro.et.trace import ExecutionTrace


@dataclass
class ReplayConfig:
    """Everything that controls how a trace is turned into a benchmark run."""

    device: str = "A100"
    power_limit_w: Optional[float] = None
    cost_model_mode: str = "roofline"
    iterations: int = 1
    warmup_iterations: int = 0
    skip_unsupported: bool = True
    subtrace_label: Optional[str] = None
    categories: Optional[Sequence[str]] = None
    #: Default values for embedding-lookup index tensors.  The paper sets
    #: these "empirically, derived by the operators in our production
    #: environment"; a Zipf-distributed default plays that role here, and
    #: users can refine it (or disable it by passing ``None`` explicitly).
    embedding_config: Optional[EmbeddingValueConfig] = field(default_factory=EmbeddingValueConfig)
    use_streams: bool = True
    #: World size of the replay's distributed context.  Defaults to the
    #: world size recorded in the trace metadata (1 for single-GPU traces).
    world_size: Optional[int] = None
    rank: int = 0
    interconnect: Optional[InterconnectSpec] = None
    #: Remap recorded process groups onto a smaller replay world; leave at
    #: ``None`` to keep the recorded groups (the scale-down emulation keeps
    #: them so collectives are priced at the original scale).
    remap_world_size: Optional[int] = None
    comm_delay_scale: float = 1.0
    comm_extra_delay_us: float = 0.0
    profile: bool = True

    # ------------------------------------------------------------------
    # Serialisation / identity
    #
    # The batch-orchestration layer (``repro.service``) keys its result
    # cache on the pair (trace digest, config digest) and ships configs
    # across process boundaries, so the config must round-trip through a
    # canonical dict form and hash stably across interpreter runs.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form of this config.

        Derived from the dataclass fields (``asdict`` recurses into the
        nested embedding/interconnect dataclasses), so a field added later
        is automatically part of the serialised form and the digest.
        """
        data = asdict(self)
        if data.get("categories") is not None:
            data["categories"] = list(data["categories"])
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored; *absent* keys keep their dataclass
        defaults (so a partial dict never silently disables, say, the
        embedding-value default).
        """
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in data.items() if key in known}
        if isinstance(kwargs.get("embedding_config"), dict):
            kwargs["embedding_config"] = EmbeddingValueConfig(**kwargs["embedding_config"])
        if isinstance(kwargs.get("interconnect"), dict):
            kwargs["interconnect"] = InterconnectSpec(**kwargs["interconnect"])
        if kwargs.get("categories") is not None:
            kwargs["categories"] = tuple(kwargs["categories"])
        return cls(**kwargs)

    def digest(self) -> str:
        """Stable content hash of this config (hex SHA-256)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return hash(self.digest())


@dataclass
class ReplayPlan:
    """The built (initialisation-phase) state of a replay."""

    selection: SelectionResult
    reconstructed: Dict[int, ReconstructedOp]
    stream_assignment: StreamAssignment
    tensor_manager: TensorManager
    reconstruction_failures: Dict[int, str] = field(default_factory=dict)


@dataclass
class ReplayResult:
    """Measurements of one replay run."""

    iteration_times_us: List[float]
    coverage: CoverageReport
    replayed_ops: int
    skipped_ops: int
    timeline_stats: TimelineStats
    system_metrics: SystemMetrics
    profiler_trace: Optional[ProfilerTrace] = None
    kernel_launches: List[KernelLaunch] = field(default_factory=list)

    @property
    def mean_iteration_time_us(self) -> float:
        if not self.iteration_times_us:
            return 0.0
        return sum(self.iteration_times_us) / len(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self) -> float:
        return self.mean_iteration_time_us / 1e3

    def summarize(self) -> "ReplayResultSummary":
        """Compact, JSON/pickle-friendly view of this result.

        The full :class:`ReplayResult` keeps the profiler trace and every
        kernel launch; the summary carries only the scalar measurements the
        batch layer caches and aggregates.
        """
        return ReplayResultSummary(
            iteration_times_us=list(self.iteration_times_us),
            replayed_ops=self.replayed_ops,
            skipped_ops=self.skipped_ops,
            count_coverage=self.coverage.count_coverage,
            time_coverage=self.coverage.time_coverage,
            execution_time_ms=self.system_metrics.execution_time_ms,
            sm_utilization_pct=self.system_metrics.sm_utilization_pct,
            hbm_bandwidth_gbps=self.system_metrics.hbm_bandwidth_gbps,
            gpu_power_w=self.system_metrics.gpu_power_w,
            kernel_count=self.timeline_stats.kernel_count,
        )


@dataclass
class ReplayResultSummary:
    """Scalar measurements of one replay, as cached/aggregated by the
    batch-orchestration layer (:mod:`repro.service`)."""

    iteration_times_us: List[float] = field(default_factory=list)
    replayed_ops: int = 0
    skipped_ops: int = 0
    count_coverage: float = 0.0
    time_coverage: float = 0.0
    execution_time_ms: float = 0.0
    sm_utilization_pct: float = 0.0
    hbm_bandwidth_gbps: float = 0.0
    gpu_power_w: float = 0.0
    kernel_count: int = 0

    @property
    def mean_iteration_time_us(self) -> float:
        if not self.iteration_times_us:
            return 0.0
        return sum(self.iteration_times_us) / len(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self) -> float:
        return self.mean_iteration_time_us / 1e3

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        # Derived, but included for human-readable cache entries / CLI JSON;
        # from_dict ignores it (not a field), so it can never diverge.
        data["mean_iteration_time_us"] = self.mean_iteration_time_us
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayResultSummary":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{key: value for key, value in data.items() if key in known})


class Replayer:
    """Replays an execution trace as a benchmark."""

    def __init__(
        self,
        trace: ExecutionTrace,
        profiler_trace: Optional[ProfilerTrace] = None,
        config: Optional[ReplayConfig] = None,
        support: Optional[ReplaySupport] = None,
    ) -> None:
        self.trace = trace
        self.profiler_trace = profiler_trace
        self.config = config if config is not None else ReplayConfig()
        self.support = support if support is not None else ReplaySupport()
        self.plan: Optional[ReplayPlan] = None

    # ------------------------------------------------------------------
    # Initialisation phase
    # ------------------------------------------------------------------
    def build(self) -> ReplayPlan:
        """Select, reconstruct and prepare everything needed to replay."""
        selector = OperatorSelector(self.support)
        selection = selector.select(
            self.trace,
            profiler_trace=self.profiler_trace,
            subtrace_label=self.config.subtrace_label,
            categories=self.config.categories,
        )

        reconstructor = OperatorReconstructor(self.support.registry)
        group_mapper = CommReplayManager(None, self.config.remap_world_size)
        reconstructed: Dict[int, ReconstructedOp] = {}
        failures: Dict[int, str] = {}
        for entry in selection.supported_entries():
            node = entry.node
            if self.config.remap_world_size is not None and entry.category == "comms":
                node = _with_remapped_group(node, group_mapper)
            try:
                reconstructed[entry.node.id] = reconstructor.reconstruct(node)
            except ReconstructionError as error:
                entry.supported = False
                entry.reason = str(error)
                failures[entry.node.id] = str(error)

        assigner = StreamAssigner()
        stream_assignment = assigner.assign(self.trace, self.profiler_trace if self.config.use_streams else None)

        tensor_manager = TensorManager(embedding_config=self.config.embedding_config)
        tensor_manager.classify(selection.entries)

        self.plan = ReplayPlan(
            selection=selection,
            reconstructed=reconstructed,
            stream_assignment=stream_assignment,
            tensor_manager=tensor_manager,
            reconstruction_failures=failures,
        )
        return self.plan

    def make_runtime(self) -> Runtime:
        """Create the runtime (and distributed context) the replay runs on."""
        world_size = self.config.world_size
        if world_size is None:
            world_size = int(self.trace.metadata.get("world_size", 1))
        dist: Optional[DistributedContext] = None
        if world_size > 1:
            collective_model = CollectiveCostModel(
                spec=self.config.interconnect or InterconnectSpec(),
                delay_scale=self.config.comm_delay_scale,
                extra_delay_us=self.config.comm_extra_delay_us,
            )
            dist = DistributedContext(
                rank=min(self.config.rank, world_size - 1),
                world_size=world_size,
                collective_model=collective_model,
            )
        return Runtime(
            device=self.config.device,
            power_limit_w=self.config.power_limit_w,
            cost_model_mode=self.config.cost_model_mode,
            rank=self.config.rank,
            dist=dist,
        )

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------
    def run(self, runtime: Optional[Runtime] = None) -> ReplayResult:
        """Execute the replay and measure the generated benchmark."""
        if self.plan is None:
            self.build()
        plan = self.plan
        assert plan is not None

        runtime = runtime if runtime is not None else self.make_runtime()
        if runtime.dist is not None:
            comm_manager = CommReplayManager(runtime.dist, self.config.remap_world_size)
            comm_manager.ensure_groups(CommReplayManager.extract(self.trace))

        profiler: Optional[Profiler] = None
        if self.config.profile:
            profiler = runtime.attach_profiler(Profiler())

        # Warm-up iterations are not measured and not profiled.
        for _ in range(self.config.warmup_iterations):
            self._replay_once(runtime, plan)

        if profiler is not None:
            profiler.start()
        measure_start = runtime.synchronize()
        iteration_times: List[float] = []
        replayed = 0
        skipped = 0
        for _ in range(max(1, self.config.iterations)):
            start = runtime.synchronize()
            iteration_replayed, iteration_skipped = self._replay_once(runtime, plan)
            end = runtime.synchronize()
            iteration_times.append(end - start)
            replayed += iteration_replayed
            skipped += iteration_skipped
        measure_end = runtime.synchronize()
        if profiler is not None:
            profiler.stop()

        stats = runtime.timeline_stats(window_start=measure_start, window_end=measure_end)
        metrics = compute_system_metrics(stats, runtime.spec, self.config.power_limit_w)
        launches = [
            launch for launch in runtime.gpu.launches
            if launch.start is not None and launch.start >= measure_start
        ]
        return ReplayResult(
            iteration_times_us=iteration_times,
            coverage=plan.selection.coverage(),
            replayed_ops=replayed,
            skipped_ops=skipped,
            timeline_stats=stats,
            system_metrics=metrics,
            profiler_trace=profiler.trace if profiler is not None else None,
            kernel_launches=launches,
        )

    # ------------------------------------------------------------------
    def _replay_once(self, runtime: Runtime, plan: ReplayPlan) -> tuple:
        """Replay every selected operator once, in execution order."""
        replayed = 0
        skipped = 0
        plan.tensor_manager.reset_intermediates()
        for entry in plan.selection.entries:
            if not entry.supported:
                skipped += 1
                continue
            reconstructed = plan.reconstructed.get(entry.node.id)
            if reconstructed is None:
                skipped += 1
                continue
            tensors = plan.tensor_manager.gather_inputs(entry.node)
            stream = (
                plan.stream_assignment.stream_for(entry.node.id)
                if self.config.use_streams
                else plan.stream_assignment.default_stream
            )
            result = reconstructed.function(runtime, *tensors, stream=stream)
            plan.tensor_manager.register_outputs(entry.node, result)
            replayed += 1
        return replayed, skipped


def _with_remapped_group(node, group_mapper: CommReplayManager):
    """Copy of a communication node with its process group remapped."""
    from repro.et.schema import ETNode

    copy = ETNode.from_dict(node.to_dict())
    copy.inputs = [
        group_mapper.map_group(value)
        if type_str == "Dict" and isinstance(value, dict) and "ranks" in value
        else value
        for value, type_str in zip(copy.inputs, copy.input_types)
    ]
    return copy
