"""The ET replayer configuration, results, and the legacy ``Replayer`` shim.

The replay implementation itself lives in :mod:`repro.core.pipeline` as a
sequence of first-class stage objects (select → reconstruct → materialise
tensors → assign streams → init comms → execute → measure); the public
entry point is the :mod:`repro.api` facade.  This module keeps:

* :class:`ReplayConfig` — everything that controls how a trace becomes a
  benchmark run (also the configuration point for the Section 7 use cases:
  subtrace replay, operator-type filtering, scaled-down emulation),
* :class:`ReplayResult` / :class:`ReplayResultSummary` — the measurements,
* :class:`Replayer` — a thin **deprecated** shim over the stage pipeline,
  kept so existing callers and cached result digests are unchanged.
"""

from __future__ import annotations

import hashlib
import json
import logging
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.reconstruction import ReconstructedOp
from repro.core.registry import ReplaySupport
from repro.core.selection import CoverageReport, SelectionResult
from repro.core.streams import StreamAssignment
from repro.core.tensors import EmbeddingValueConfig, TensorManager
from repro.hardware.counters import SystemMetrics
from repro.hardware.gpu import TimelineStats
from repro.hardware.network import InterconnectSpec
from repro.torchsim.kernel import KernelLaunch
from repro.torchsim.profiler import ProfilerTrace
from repro.torchsim.runtime import Runtime
from repro.et.trace import ExecutionTrace

logger = logging.getLogger(__name__)


@dataclass
class ReplayConfig:
    """Everything that controls how a trace is turned into a benchmark run."""

    device: str = "A100"
    power_limit_w: Optional[float] = None
    cost_model_mode: str = "roofline"
    iterations: int = 1
    warmup_iterations: int = 0
    skip_unsupported: bool = True
    subtrace_label: Optional[str] = None
    categories: Optional[Sequence[str]] = None
    #: Default values for embedding-lookup index tensors.  The paper sets
    #: these "empirically, derived by the operators in our production
    #: environment"; a Zipf-distributed default plays that role here, and
    #: users can refine it (or disable it by passing ``None`` explicitly).
    embedding_config: Optional[EmbeddingValueConfig] = field(default_factory=EmbeddingValueConfig)
    use_streams: bool = True
    #: World size of the replay's distributed context.  Defaults to the
    #: world size recorded in the trace metadata (1 for single-GPU traces).
    world_size: Optional[int] = None
    rank: int = 0
    interconnect: Optional[InterconnectSpec] = None
    #: Remap recorded process groups onto a smaller replay world; leave at
    #: ``None`` to keep the recorded groups (the scale-down emulation keeps
    #: them so collectives are priced at the original scale).
    remap_world_size: Optional[int] = None
    comm_delay_scale: float = 1.0
    comm_extra_delay_us: float = 0.0
    #: Hierarchical-fabric preset pricing the collectives (a key of
    #: :data:`repro.hardware.network.TOPOLOGY_PRESETS`, e.g.
    #: ``"nvlink-island"`` or ``"rail-spine"``).  ``None``/``"flat"`` keep
    #: the flat two-level model.  Changes collective durations, so it is
    #: part of the canonical form and the digest.
    topology: Optional[str] = None
    profile: bool = True
    #: Execution *strategy*, not replay semantics: group repeated operator
    #: invocations by (op, shape signature, dtype, stream) and replay each
    #: group from a captured program priced through the batched cost-model
    #: entry point, instead of one Python dispatch per op.  Results and
    #: cache digests are byte-identical either way (asserted by
    #: ``tests/test_vectorized_equivalence.py``), which is why this field
    #: is excluded from :meth:`to_dict` and :meth:`digest` — the two modes
    #: must share cache entries.  ``False`` forces the scalar reference
    #: path.
    vectorized: bool = True

    # ------------------------------------------------------------------
    # Serialisation / identity
    #
    # The batch-orchestration layer (``repro.service``) keys its result
    # cache on the pair (trace digest, config digest) and ships configs
    # across process boundaries, so the config must round-trip through a
    # canonical dict form and hash stably across interpreter runs.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form of this config.

        Derived from the dataclass fields (``asdict`` recurses into the
        nested embedding/interconnect dataclasses), so a field added later
        is automatically part of the serialised form and the digest.

        ``vectorized`` is deliberately *not* part of the canonical form:
        it selects an execution strategy with byte-identical results, and
        including it would split the service layer's result cache into two
        keys for one measurement.  :meth:`from_dict` still accepts it.
        """
        data = asdict(self)
        data.pop("vectorized", None)
        if data.get("categories") is not None:
            data["categories"] = list(data["categories"])
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any], strict: bool = False) -> "ReplayConfig":
        """Rebuild a config from :meth:`to_dict` output.

        *Absent* keys keep their dataclass defaults (so a partial dict never
        silently disables, say, the embedding-value default).  Unknown keys
        — typically typos in sweep axis names or provenance dicts from a
        newer version — are reported: with ``strict=True`` they raise
        ``ValueError``; otherwise they are ignored but logged as a warning
        naming every dropped key.
        """
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = sorted(key for key in data if key not in known)
        if unknown:
            if strict:
                raise ValueError(
                    f"unknown ReplayConfig keys: {unknown}; known fields are {sorted(known)}"
                )
            logger.warning(
                "ReplayConfig.from_dict: ignoring unknown keys %s (pass strict=True to raise)",
                unknown,
            )
        kwargs = {key: value for key, value in data.items() if key in known}
        if isinstance(kwargs.get("embedding_config"), dict):
            kwargs["embedding_config"] = EmbeddingValueConfig(**kwargs["embedding_config"])
        if isinstance(kwargs.get("interconnect"), dict):
            kwargs["interconnect"] = InterconnectSpec(**kwargs["interconnect"])
        if kwargs.get("categories") is not None:
            kwargs["categories"] = tuple(kwargs["categories"])
        return cls(**kwargs)

    def digest(self) -> str:
        """Stable content hash of this config (hex SHA-256).

        Nested dataclasses are encoded explicitly by :meth:`to_dict`
        (``asdict`` recurses into them), and any field value that does not
        canonicalise to JSON raises ``TypeError`` — a stringified ``repr``
        fallback could let two semantically different configs collide on
        one digest, which would poison the service layer's result cache.
        """
        try:
            canonical = json.dumps(self.to_dict(), sort_keys=True)
        except (TypeError, ValueError) as error:
            raise TypeError(
                "ReplayConfig.digest(): config holds a non-JSON-serialisable value "
                f"({error}); fields must be JSON scalars, sequences, mappings or "
                "dataclasses thereof"
            ) from None
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return hash(self.digest())


@dataclass
class ReplayPlan:
    """The built (initialisation-phase) state of a replay."""

    selection: SelectionResult
    reconstructed: Dict[int, ReconstructedOp]
    stream_assignment: StreamAssignment
    tensor_manager: TensorManager
    reconstruction_failures: Dict[int, str] = field(default_factory=dict)


@dataclass
class ReplayResult:
    """Measurements of one replay run."""

    iteration_times_us: List[float]
    coverage: CoverageReport
    replayed_ops: int
    skipped_ops: int
    timeline_stats: TimelineStats
    system_metrics: SystemMetrics
    profiler_trace: Optional[ProfilerTrace] = None
    kernel_launches: List[KernelLaunch] = field(default_factory=list)
    #: Simulated device-memory report (``repro.memory``), populated only
    #: when a ``track-memory`` stage ran; ``None`` otherwise.  Not part of
    #: :meth:`summarize`, so cached result digests are unaffected.
    memory_report: Optional[Any] = None
    #: Wall-clock profile of the replay itself (``repro.profiling``),
    #: populated only when the session ran ``.with_profiling()``; ``None``
    #: otherwise.  Not part of :meth:`summarize` either — profiling a
    #: replay never changes what it measures.
    profile_report: Optional[Any] = None

    @property
    def mean_iteration_time_us(self) -> float:
        if not self.iteration_times_us:
            return 0.0
        return sum(self.iteration_times_us) / len(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self) -> float:
        return self.mean_iteration_time_us / 1e3

    def summarize(self) -> "ReplayResultSummary":
        """Compact, JSON/pickle-friendly view of this result.

        The full :class:`ReplayResult` keeps the profiler trace and every
        kernel launch; the summary carries only the scalar measurements the
        batch layer caches and aggregates.
        """
        return ReplayResultSummary(
            iteration_times_us=list(self.iteration_times_us),
            replayed_ops=self.replayed_ops,
            skipped_ops=self.skipped_ops,
            count_coverage=self.coverage.count_coverage,
            time_coverage=self.coverage.time_coverage,
            execution_time_ms=self.system_metrics.execution_time_ms,
            sm_utilization_pct=self.system_metrics.sm_utilization_pct,
            hbm_bandwidth_gbps=self.system_metrics.hbm_bandwidth_gbps,
            gpu_power_w=self.system_metrics.gpu_power_w,
            kernel_count=self.timeline_stats.kernel_count,
        )


@dataclass
class ReplayResultSummary:
    """Scalar measurements of one replay, as cached/aggregated by the
    batch-orchestration layer (:mod:`repro.service`)."""

    iteration_times_us: List[float] = field(default_factory=list)
    replayed_ops: int = 0
    skipped_ops: int = 0
    count_coverage: float = 0.0
    time_coverage: float = 0.0
    execution_time_ms: float = 0.0
    sm_utilization_pct: float = 0.0
    hbm_bandwidth_gbps: float = 0.0
    gpu_power_w: float = 0.0
    kernel_count: int = 0

    @property
    def mean_iteration_time_us(self) -> float:
        if not self.iteration_times_us:
            return 0.0
        return sum(self.iteration_times_us) / len(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self) -> float:
        return self.mean_iteration_time_us / 1e3

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        # Derived, but included for human-readable cache entries / CLI JSON;
        # from_dict ignores it (not a field), so it can never diverge.
        data["mean_iteration_time_us"] = self.mean_iteration_time_us
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReplayResultSummary":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{key: value for key, value in data.items() if key in known})


class Replayer:
    """**Deprecated** shim over the stage pipeline.

    Replays an execution trace as a benchmark, exactly as before, but every
    step now runs through :class:`repro.core.pipeline.ReplayPipeline`.  New
    code should use the :mod:`repro.api` facade (or the pipeline directly);
    :meth:`run` emits a :class:`DeprecationWarning`, and CI rejects direct
    use inside ``src/`` outside this module.
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        profiler_trace: Optional[ProfilerTrace] = None,
        config: Optional[ReplayConfig] = None,
        support: Optional[ReplaySupport] = None,
    ) -> None:
        self.trace = trace
        self.profiler_trace = profiler_trace
        self.config = config if config is not None else ReplayConfig()
        self.support = support if support is not None else ReplaySupport()
        self.plan: Optional[ReplayPlan] = None

    # ------------------------------------------------------------------
    def _context(self, runtime: Optional[Runtime] = None):
        from repro.core.pipeline import ReplayContext

        return ReplayContext(
            trace=self.trace,
            profiler_trace=self.profiler_trace,
            config=self.config,
            support=self.support,
            runtime=runtime,
        )

    # ------------------------------------------------------------------
    # Initialisation phase
    # ------------------------------------------------------------------
    def build(self) -> ReplayPlan:
        """Select, reconstruct and prepare everything needed to replay."""
        from repro.core.pipeline import ReplayPipeline

        context = self._context()
        for stage in ReplayPipeline.build_only().stages:
            stage.run(context)
        self.plan = ReplayPlan(
            selection=context.selection,
            reconstructed=context.reconstructed,
            stream_assignment=context.stream_assignment,
            tensor_manager=context.tensor_manager,
            reconstruction_failures=context.reconstruction_failures,
        )
        return self.plan

    def make_runtime(self) -> Runtime:
        """Create the runtime (and distributed context) the replay runs on."""
        from repro.core.pipeline import make_replay_runtime

        return make_replay_runtime(self.trace, self.config)

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------
    def run(self, runtime: Optional[Runtime] = None) -> ReplayResult:
        """Execute the replay and measure the generated benchmark.

        Deprecated: use ``repro.api.replay(trace)...run()`` instead.
        """
        from repro.core.pipeline import BUILD_STAGE_NAMES, ReplayPipeline

        warnings.warn(
            "Replayer.run() is deprecated; use the repro.api facade "
            "(repro.api.replay(trace)...run()) or repro.core.pipeline.ReplayPipeline",
            DeprecationWarning,
            stacklevel=2,
        )
        context = self._context(runtime=runtime)
        pipeline = ReplayPipeline.default()
        if self.plan is not None:
            # A caller built (and possibly customised) the plan already —
            # reuse it instead of re-running the build stages.
            context.selection = self.plan.selection
            context.reconstructed = self.plan.reconstructed
            context.stream_assignment = self.plan.stream_assignment
            context.tensor_manager = self.plan.tensor_manager
            context.reconstruction_failures = self.plan.reconstruction_failures
            pipeline.skip(*BUILD_STAGE_NAMES)
        result = pipeline.run(context)
        if self.plan is None:
            self.plan = ReplayPlan(
                selection=context.selection,
                reconstructed=context.reconstructed,
                stream_assignment=context.stream_assignment,
                tensor_manager=context.tensor_manager,
                reconstruction_failures=context.reconstruction_failures,
            )
        return result
