"""Mystique core: benchmark generation by execution-trace replay.

The pipeline follows Figure 3 of the paper:

1. :mod:`~repro.core.selection` — choose which trace nodes to replay
   (parent/child deduplication, subtrace labels, category filters).
2. :mod:`~repro.core.registry` — the replay-support policy and the
   user-facing custom-operator registration interface.
3. :mod:`~repro.core.reconstruction` — schema parsing, IR building and
   compilation of a callable per operator.
4. :mod:`~repro.core.tensors` — intermediate vs. external tensor
   classification and instantiation.
5. :mod:`~repro.core.comms_replay` — process-group mapping and
   communication-operator replay helpers.
6. :mod:`~repro.core.streams` — operator-to-stream assignment extracted
   from the profiler trace.
7. :mod:`~repro.core.pipeline` — the stage pipeline (``SelectStage`` …
   ``MeasureStage``) composed by a :class:`~repro.core.pipeline.ReplayPipeline`
   that threads a :class:`~repro.core.pipeline.ReplayContext` between stages
   and emits lifecycle events to registered hooks.
8. :mod:`~repro.core.replayer` — the replay configuration and results, plus
   the deprecated ``Replayer`` shim over the pipeline.
9. :mod:`~repro.core.generator` — emission of a standalone benchmark
   program.
10. :mod:`~repro.core.scaledown` — scaled-down performance emulation
    (Section 7.3).

The public, composable entry point is the :mod:`repro.api` facade.
"""

from repro.core.registry import ReplaySupport
from repro.core.selection import OperatorSelector, SelectionResult, ReplayPlanEntry, CoverageReport
from repro.core.reconstruction import OperatorReconstructor, ReconstructionError
from repro.core.tensors import TensorManager, EmbeddingValueConfig
from repro.core.comms_replay import CommReplayManager
from repro.core.streams import StreamAssigner
from repro.core.replayer import Replayer, ReplayConfig, ReplayResult, ReplayResultSummary
from repro.core.pipeline import (
    AssignStreamsStage,
    ExecuteStage,
    InitCommsStage,
    MaterializeTensorsStage,
    MeasureStage,
    ReconstructStage,
    ReplayContext,
    ReplayHook,
    ReplayPipeline,
    ReplayPipelineError,
    ReplayStage,
    SelectStage,
    run_replay,
)
from repro.core.generator import BenchmarkGenerator
from repro.core.scaledown import ScaleDownConfig, ScaleDownEmulator

__all__ = [
    "ReplaySupport",
    "ReplayContext",
    "ReplayHook",
    "ReplayPipeline",
    "ReplayPipelineError",
    "ReplayStage",
    "run_replay",
    "SelectStage",
    "ReconstructStage",
    "MaterializeTensorsStage",
    "AssignStreamsStage",
    "InitCommsStage",
    "ExecuteStage",
    "MeasureStage",
    "ReplayResultSummary",
    "OperatorSelector",
    "SelectionResult",
    "ReplayPlanEntry",
    "CoverageReport",
    "OperatorReconstructor",
    "ReconstructionError",
    "TensorManager",
    "EmbeddingValueConfig",
    "CommReplayManager",
    "StreamAssigner",
    "Replayer",
    "ReplayConfig",
    "ReplayResult",
    "BenchmarkGenerator",
    "ScaleDownConfig",
    "ScaleDownEmulator",
]
