"""Vectorized operator replay — the :class:`ExecuteStage` fast path.

The scalar execute loop interprets one operator at a time: schema-compiled
callable → runtime dispatch → per-kernel cost-model pricing, all in pure
Python.  Profiling (``repro.profiling``) shows that for a converged replay
every iteration repeats *exactly* the same operator programs — same inputs,
same kernels, same durations — so re-interpreting them is wasted work.

This module groups operators Chakra-style by an *operator signature*
``(reconstructed IR, stream, input tensor fingerprints)`` and captures, on
the first occurrence of each signature, the operator's complete effect on
the runtime as an :class:`OpProgram`:

* how far it advances the issuing CPU thread's clock,
* how many execution-trace node IDs it consumes,
* the kernels it launches (descriptor, launch-time offset, stream,
  duration) and the profiler events it records.

The second occurrence is replayed scalar again and compared field-for-field
against the stored program; only on an exact match is the program
*verified* and its kernel group priced through the batched cost-model entry
point (:meth:`~repro.hardware.costmodel.KernelCostModel.batch_duration_us`,
bit-identical to scalar pricing).  From then on the signature replays
through :meth:`VectorizedExecutor._fast_replay`, which reproduces the
captured effect — same node IDs, same correlation IDs, same launch
timestamps, same profiler events — without touching the operator registry
or the per-op cost model at all.  Anything that fails capture or
verification (value-dependent ops, comms, clock-reading internals) is bound
to the scalar path forever, so correctness never depends on the fast path
applying.

Equivalence contract: with ``ReplayConfig.vectorized=True`` (the default)
every replay product — iteration times, timeline stats, kernel launches,
profiler traces, cached result digests — is byte-identical to
``vectorized=False``.  ``tests/test_vectorized_equivalence.py`` asserts
this property over randomized workloads.

Operators that are *not* eligible, and why:

* ``comms`` category — collectives use ``start_not_before`` (cross-stream
  data dependencies), ``blocking=True`` launches and explicit durations
  from the interconnect model, all of which read global timeline state, so
  their effect is not a pure function of the operator's start time.
* operators whose outputs include async :class:`~repro.torchsim.distributed.Work`
  handles (same reason).
* operators that switch CPU threads mid-call or whose second occurrence
  diverges from the first in any captured field.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.torchsim.distributed import Work
from repro.torchsim.kernel import KernelDesc, KernelLaunch, OpCategory
from repro.torchsim.profiler import Profiler, TraceEvent
from repro.torchsim.runtime import Runtime
from repro.torchsim.tensor import Tensor

#: Key under which the per-replay executor lives in ``context.extras``.
EXTRAS_KEY = "vectorized_executor"

#: Sentinel distinguishing "node never seen" from "node bound to scalar".
_UNSEEN = object()

#: Program lifecycle states.
_UNVERIFIED = "unverified"
_VERIFIED = "verified"
_DEAD = "dead"


class _DataFingerprintCache:
    """Content fingerprints for tensor payloads, cached by array identity.

    Embedding-lookup cost depends on index *values* (Section 4.4), so a
    tensor's payload must be part of its signature.  Hashing the payload on
    every occurrence would dominate the fast path; instead the digest is
    cached under ``id(array)`` with the array object pinned in the cache so
    the id cannot be recycled while the entry lives.
    """

    def __init__(self) -> None:
        self._by_id: Dict[int, Tuple[np.ndarray, str]] = {}

    def token(self, array: np.ndarray) -> str:
        key = id(array)
        hit = self._by_id.get(key)
        if hit is not None and hit[0] is array:
            return hit[1]
        digest = hashlib.sha1(np.ascontiguousarray(array).tobytes()).hexdigest()
        self._by_id[key] = (array, digest)
        return digest


@dataclass
class _KernelTemplate:
    """One captured kernel launch.

    ``ts_index`` points into the operator's reconstructed clock-value trace
    (see :class:`OpProgram`): the kernel's CPU-side launch timestamp is the
    clock value at that index, which reproduces the scalar path's exact
    floating-point value (a ``start + offset`` shortcut would not — IEEE
    addition is not associative).
    """

    desc: KernelDesc
    ts_index: int
    duration: float
    stream_id: int
    node_offset: int
    op_name: str
    category: OpCategory

    def as_tuple(self) -> tuple:
        return (
            self.desc,
            self.ts_index,
            self.duration,
            self.stream_id,
            self.node_offset,
            self.op_name,
            self.category,
        )


@dataclass
class OpProgram:
    """The captured runtime effect of one operator signature.

    ``increments`` is the exact sequence of ``advance_cpu`` deltas the
    operator applied to its thread's clock.  Replaying them one addition at
    a time regenerates the operator's *clock-value trace* ``values[i]``
    (``values[0]`` = the op's start time, ``values[i]`` = the clock after
    the i-th advance) with every intermediate float bit-identical to the
    scalar path.  Kernel launch timestamps and profiler-event spans are
    stored as indices into that trace, never as offsets — floating-point
    addition is not associative, so offsets would drift in the last bits.

    ``events`` stores the profiler events the scalar path would record, in
    recording order: ``("k", kernel_index)`` entries reference a kernel
    template (replayed with live timestamps/correlations), ``("c", name,
    cat, ts_index, end_index, tid, node_offset)`` entries are CPU-side
    spans whose start/end are clock-trace values.
    """

    signature: Any
    op_name: str
    thread: str
    node_count: int
    increments: List[float]
    kernels: List[_KernelTemplate]
    events: List[tuple]
    outputs: Any
    state: str = _UNVERIFIED
    #: How many of the group's kernels the batched cost-model evaluation
    #: confirmed (the rest carried explicit durations).
    batch_priced: int = 0

    def matches(self, other: "OpProgram") -> bool:
        """Field-for-field equality of two captures of the same signature."""
        return (
            self.node_count == other.node_count
            and self.increments == other.increments
            and self.thread == other.thread
            and len(self.kernels) == len(other.kernels)
            and all(
                a.as_tuple() == b.as_tuple() for a, b in zip(self.kernels, other.kernels)
            )
            and self.events == other.events
        )


class _FastBinding:
    """A node bound to a verified program, plus its precomputed output
    registrations — everything the hot loop needs without re-decoding."""

    __slots__ = ("program", "pairs")

    def __init__(self, program: OpProgram, pairs: List[tuple]) -> None:
        self.program = program
        self.pairs = pairs


class VectorizedExecutor:
    """Per-replay state of the vectorized execute loop.

    Owned by one :class:`~repro.core.pipeline.ReplayContext` (stored in
    ``context.extras``) so programs learned during warm-up iterations are
    reused across every later iteration of the same replay.
    """

    def __init__(self) -> None:
        #: signature → learned program (any state).
        self._programs: Dict[Any, OpProgram] = {}
        #: node id → :class:`_FastBinding` (verified), an unverified
        #: :class:`OpProgram`, or ``None`` for scalar-forever.
        self._bindings: Dict[int, Any] = {}
        self._fingerprints = _DataFingerprintCache()
        #: Counters for tests and the profiling report: how many per-op
        #: replays took which path across all iterations so far.
        self.stats: Dict[str, int] = {
            "fast_ops": 0,
            "scalar_ops": 0,
            "programs_captured": 0,
            "programs_verified": 0,
            "programs_dead": 0,
            "kernels_batch_priced": 0,
        }

    # ------------------------------------------------------------------
    # The replacement for ExecuteStage's scalar loop
    # ------------------------------------------------------------------
    def replay_entries(self, context, runtime: Runtime) -> Tuple[int, int]:
        """Replay every selected operator once; mirrors the scalar loop."""
        replayed = 0
        skipped = 0
        notify = bool(context.hooks)
        tensor_manager = context.tensor_manager
        stream_assignment = context.stream_assignment
        use_streams = context.config.use_streams
        default_stream = stream_assignment.default_stream
        reconstructed_map = context.reconstructed
        bindings = self._bindings
        stats = self.stats

        fast_ops = 0
        scalar_ops = 0
        tensor_manager.reset_intermediates()
        for entry in context.selection.entries:
            if not entry.supported:
                skipped += 1
                continue
            node_id = entry.node.id
            binding = bindings.get(node_id, _UNSEEN)

            # Hot path: node bound to a verified program.
            if binding.__class__ is _FastBinding:
                result = self._fast_replay(runtime, binding.program)
                tensor_manager.register_pairs(binding.pairs)
                replayed += 1
                fast_ops += 1
                if notify:
                    context.emit_op_replayed(entry, result)
                continue
            if binding is not None and binding is not _UNSEEN:
                if binding.state == _DEAD:
                    bindings[node_id] = None
                    binding = None
                # _UNVERIFIED falls through to the learning path below.

            reconstructed = reconstructed_map.get(node_id)
            if reconstructed is None:
                skipped += 1
                continue
            tensors = tensor_manager.gather_inputs(entry.node)
            stream = (
                stream_assignment.stream_for(node_id) if use_streams else default_stream
            )

            if binding is None or entry.category == "comms":
                if binding is not None:  # first comms occurrence: bind scalar
                    bindings[node_id] = None
                result = reconstructed.function(runtime, *tensors, stream=stream)
                scalar_ops += 1
            else:
                result = self._learn(
                    runtime, tensor_manager, entry, reconstructed, tensors, stream
                )
            tensor_manager.register_outputs(entry.node, result)
            replayed += 1
            if notify:
                context.emit_op_replayed(entry, result)
        stats["fast_ops"] += fast_ops
        stats["scalar_ops"] += scalar_ops
        return replayed, skipped

    # ------------------------------------------------------------------
    # Learning: signature → capture → verify
    # ------------------------------------------------------------------
    def _learn(
        self,
        runtime: Runtime,
        tensor_manager,
        entry,
        reconstructed,
        tensors: Sequence[Any],
        stream: int,
    ) -> Any:
        """Scalar-replay one occurrence while advancing its program's state."""
        node = entry.node
        node_id = node.id
        signature = self._signature(reconstructed, stream, tensors)
        if signature is None:
            # Inputs we cannot fingerprint — never vectorize this node.
            self._bindings[node_id] = None
            self.stats["scalar_ops"] += 1
            return reconstructed.function(runtime, *tensors, stream=stream)

        program = self._programs.get(signature)
        if program is not None and program.state == _VERIFIED:
            self._bind_fast(tensor_manager, node, program)
            self.stats["fast_ops"] += 1
            return self._fast_replay(runtime, program)
        if program is not None and program.state == _DEAD:
            self._bindings[node_id] = None
            self.stats["scalar_ops"] += 1
            return reconstructed.function(runtime, *tensors, stream=stream)

        capture, result = self._capture(runtime, signature, reconstructed, tensors, stream)
        self.stats["scalar_ops"] += 1
        if capture is None:
            # Not capturable (thread switch, Work outputs, inconsistent IDs).
            dead = OpProgram(
                signature=signature,
                op_name=reconstructed.op_name,
                thread="",
                node_count=0,
                increments=[],
                kernels=[],
                events=[],
                outputs=None,
                state=_DEAD,
            )
            self._programs[signature] = dead
            self._bindings[node_id] = None
            self.stats["programs_dead"] += 1
            return result

        if program is None:
            # First occurrence: remember the capture, await verification.
            self._programs[signature] = capture
            self._bindings[node_id] = capture
            self.stats["programs_captured"] += 1
            return result

        # Second occurrence: verify the stored program against a fresh
        # capture, then price the kernel group through the batched entry
        # point.  Any divergence kills the signature for the whole replay.
        if program.matches(capture):
            self._batch_price(runtime, program)
            program.state = _VERIFIED
            self._bind_fast(tensor_manager, node, program)
            self.stats["programs_verified"] += 1
        else:
            program.state = _DEAD
            self._bindings[node_id] = None
            self.stats["programs_dead"] += 1
        return result

    def _bind_fast(self, tensor_manager, node, program: OpProgram) -> None:
        """Bind a node to a verified program for all later iterations."""
        self._bindings[node.id] = _FastBinding(
            program, tensor_manager.output_pairs(node, program.outputs)
        )

    def _capture(
        self,
        runtime: Runtime,
        signature: Any,
        reconstructed,
        tensors: Sequence[Any],
        stream: int,
    ) -> Tuple[Optional[OpProgram], Any]:
        """Run one scalar occurrence, recording its effect on the runtime.

        Returns ``(program, result)``; ``program`` is ``None`` when the
        operator's effect cannot be replayed from a template.  The
        operator's side effects (clock, kernels, profiler events) are real
        — capture observes, it never replays.
        """
        thread = runtime.current_thread
        clocks_before = runtime.cpu_clocks()
        start = runtime.now(thread)
        node_base = runtime.node_cursor
        correlation_base = runtime.correlation_cursor
        launch_base = runtime.gpu.launch_count

        # Record the exact clock arithmetic: every advance_cpu delta on the
        # issuing thread, in order.  block_until (and any advance on another
        # thread) makes the clock depend on global state, which a template
        # cannot reproduce — either invalidates the capture.
        increments: List[float] = []
        tainted = [False]

        def recording_advance(microseconds, thread_name=None, _rt=runtime):
            name = thread_name or _rt.current_thread
            if name == thread:
                increments.append(microseconds)
            else:
                tainted[0] = True
            return Runtime.advance_cpu(_rt, microseconds, thread_name)

        def recording_block_until(timestamp, thread_name=None, _rt=runtime):
            tainted[0] = True
            return Runtime.block_until(_rt, timestamp, thread_name)

        # Swap in an always-on capture profiler so event templates exist
        # even during warm-up (when the real profiler is stopped).  Captured
        # events are re-emitted to the real profiler afterwards, preserving
        # exactly what the scalar path would have recorded.
        real_profiler = runtime.profiler
        capture_profiler = Profiler()
        capture_profiler.start()
        runtime.profiler = capture_profiler
        runtime.advance_cpu = recording_advance  # type: ignore[method-assign]
        runtime.block_until = recording_block_until  # type: ignore[method-assign]
        try:
            result = reconstructed.function(runtime, *tensors, stream=stream)
        finally:
            del runtime.advance_cpu
            del runtime.block_until
            runtime.profiler = real_profiler
        if real_profiler is not None and real_profiler.enabled:
            for event in capture_profiler.trace.events:
                if event.cat == "kernel":
                    real_profiler.record_kernel(event)
                else:
                    real_profiler.record_cpu_op(event)

        launches = runtime.gpu.launches_since(launch_base)
        node_count = runtime.node_cursor - node_base
        correlation_count = runtime.correlation_cursor - correlation_base

        # Reconstruct the clock-value trace the recorded increments imply
        # and check it accounts for the thread's final clock exactly.
        values = [start]
        value = start
        for increment in increments:
            value = value + increment
            values.append(value)

        if tainted[0] or not self._capture_is_replayable(
            runtime, thread, clocks_before, result, launches,
            node_base, node_count, correlation_count, values, increments,
        ):
            return None, result

        kernels: List[_KernelTemplate] = []
        for launch in launches:
            ts_index = _value_index(values, launch.launch_ts)
            if ts_index < 0:
                return None, result
            kernels.append(
                _KernelTemplate(
                    desc=launch.desc,
                    ts_index=ts_index,
                    duration=launch.duration,
                    stream_id=launch.stream_id,
                    node_offset=launch.op_node_id - node_base,
                    op_name=launch.op_name,
                    category=launch.category,
                )
            )

        events: List[tuple] = []
        for event in capture_profiler.trace.events:
            if event.cat == "kernel":
                index = event.correlation - correlation_base
                if not 0 <= index < len(launches):
                    return None, result
                events.append(("k", index))
            else:
                ts_index = _value_index(values, event.ts)
                end_index = _span_end_index(values, ts_index, event.dur)
                if ts_index < 0 or end_index < 0:
                    return None, result
                events.append(
                    (
                        "c",
                        event.name,
                        event.cat,
                        ts_index,
                        end_index,
                        event.tid,
                        event.op_node_id - node_base,
                    )
                )

        program = OpProgram(
            signature=signature,
            op_name=reconstructed.op_name,
            thread=thread,
            node_count=node_count,
            increments=increments,
            kernels=kernels,
            events=events,
            outputs=result,
        )
        return program, result

    @staticmethod
    def _capture_is_replayable(
        runtime: Runtime,
        thread: str,
        clocks_before: Dict[str, float],
        result: Any,
        launches: Sequence[KernelLaunch],
        node_base: int,
        node_count: int,
        correlation_count: int,
        values: Sequence[float],
        increments: Sequence[float],
    ) -> bool:
        """Whether a captured occurrence is a pure function of its start time."""
        if node_count < 1:
            return False
        if correlation_count != len(launches):
            return False
        if runtime.current_thread != thread:
            return False
        # The recorded increments must fully explain the clock movement
        # (monotonically, so trace-value matching is unambiguous).
        if runtime.now(thread) != values[-1]:
            return False
        if any(increment < 0 for increment in increments):
            return False
        # The operator must not have touched any other CPU thread's clock
        # (a runtime.thread() switch would); new threads count as touched.
        clocks_after = runtime.cpu_clocks()
        for name, clock in clocks_after.items():
            if name == thread:
                continue
            if clocks_before.get(name) != clock:
                return False
        # Async work handles tie the result to the live timeline.
        outputs = result if isinstance(result, (list, tuple)) else [result]
        if any(isinstance(item, Work) for item in outputs):
            return False
        for launch in launches:
            if not launch.resolved:
                return False
            if not node_base <= launch.op_node_id < node_base + node_count:
                return False
        return True

    def _batch_price(self, runtime: Runtime, program: OpProgram) -> None:
        """Price the program's kernel group in one vectorized evaluation.

        ``batch_duration_us`` is bit-identical to per-kernel scalar pricing,
        so for cost-model-priced kernels the batched value replaces the
        captured one without changing a single bit.  A mismatch means the
        operator passed an explicit ``duration_us`` (comms-style); those
        keep their captured duration.
        """
        if not program.kernels:
            return
        priced = runtime.cost_model.batch_duration_us(
            [template.desc for template in program.kernels]
        )
        for template, duration in zip(program.kernels, priced):
            if duration == template.duration:
                template.duration = float(duration)
                program.batch_priced += 1
        self.stats["kernels_batch_priced"] += program.batch_priced

    # ------------------------------------------------------------------
    # The fast path
    # ------------------------------------------------------------------
    def _fast_replay(self, runtime: Runtime, program: OpProgram) -> Any:
        """Reproduce a verified program's effect without dispatching it."""
        thread = runtime.current_thread
        start = runtime.now(thread)
        # Regenerate the clock-value trace with the captured increments —
        # the same additions in the same order the scalar dispatch would
        # perform, so every timestamp below is bit-identical to it.
        values = [start]
        value = start
        for increment in program.increments:
            value = value + increment
            values.append(value)
        node_base = runtime.reserve_node_ids(program.node_count)
        gpu = runtime.gpu
        rank = runtime.rank
        launches: List[KernelLaunch] = []
        for template in program.kernels:
            launch = KernelLaunch(
                desc=template.desc,
                stream_id=template.stream_id,
                launch_ts=values[template.ts_index],
                duration=template.duration,
                op_node_id=node_base + template.node_offset,
                op_name=template.op_name,
                category=template.category,
                device_index=rank,
                correlation_id=runtime.take_correlation_id(),
            )
            gpu.add_launch(launch)
            launches.append(launch)
        runtime.block_until(values[-1], thread)

        profiler = runtime.profiler
        if profiler is not None and profiler.enabled:
            for event in program.events:
                if event[0] == "k":
                    launch = launches[event[1]]
                    desc = launch.desc
                    profiler.record_kernel(
                        TraceEvent(
                            name=desc.name,
                            cat="kernel",
                            ts=launch.start,
                            dur=launch.duration,
                            tid="gpu",
                            pid=rank,
                            stream=launch.stream_id,
                            op_node_id=launch.op_node_id,
                            correlation=launch.correlation_id,
                            args={
                                "kind": desc.kind.value,
                                "category": launch.category.value,
                            },
                        )
                    )
                else:
                    _, name, cat, ts_index, end_index, tid, node_offset = event
                    ts = values[ts_index]
                    profiler.record_cpu_op(
                        TraceEvent(
                            name=name,
                            cat=cat,
                            ts=ts,
                            dur=values[end_index] - ts,
                            tid=tid,
                            pid=rank,
                            op_node_id=node_base + node_offset,
                        )
                    )
        return program.outputs

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------
    def _signature(
        self, reconstructed, stream: int, tensors: Sequence[Any]
    ) -> Optional[Any]:
        """Grouping key for one occurrence, or ``None`` if unfingerprintable.

        The reconstructed IR text already encodes the operator name and
        every recorded non-tensor constant, so together with the dispatch
        stream and the input tensor fingerprints (shape, dtype, device,
        payload content) it pins down everything the operator's simulated
        cost can depend on.
        """
        fingerprints: List[Any] = []
        for value in tensors:
            if isinstance(value, Tensor):
                fingerprints.append(self._tensor_fingerprint(value))
            elif isinstance(value, list) and all(
                isinstance(item, Tensor) for item in value
            ):
                fingerprints.append(
                    ("L", tuple(self._tensor_fingerprint(item) for item in value))
                )
            else:
                return None
        return (reconstructed.ir_text, stream, tuple(fingerprints))

    def _tensor_fingerprint(self, tensor: Tensor) -> tuple:
        token = (
            self._fingerprints.token(tensor.data) if tensor.data is not None else None
        )
        return (
            "T",
            tensor.shape,
            tensor.dtype,
            str(tensor.device),
            tensor.requires_grad,
            token,
        )


# ----------------------------------------------------------------------
def _value_index(values: Sequence[float], value: float) -> int:
    """Index of ``value`` in a clock-value trace, or -1.

    Traces are non-decreasing (validated), so when equal values repeat the
    increments between them are exactly 0.0 and any matching index replays
    to the same float; the first match is canonical.
    """
    for index, candidate in enumerate(values):
        if candidate == value:
            return index
    return -1


def _span_end_index(values: Sequence[float], ts_index: int, dur: float) -> int:
    """Index whose trace value ends a span of ``dur`` starting at ``ts_index``.

    Matches the scalar path's own arithmetic (``dur = end - start`` over two
    clock reads), so the replayed duration is recomputed from trace values
    rather than trusted as a stored float.
    """
    if ts_index < 0:
        return -1
    start = values[ts_index]
    for index in range(ts_index, len(values)):
        if values[index] - start == dur:
            return index
    return -1


def replay_entries_vectorized(context, runtime: Runtime) -> Tuple[int, int]:
    """One vectorized pass over the selection (ExecuteStage's fast branch).

    The executor persists on ``context.extras`` so programs learned during
    warm-up iterations pay off across every measured iteration.
    """
    executor = context.extras.get(EXTRAS_KEY)
    if executor is None:
        executor = VectorizedExecutor()
        context.extras[EXTRAS_KEY] = executor
    return executor.replay_entries(context, runtime)
