"""Argument and tensor management (Section 4.4).

Operators take two kinds of tensor inputs:

* **intermediate tensors** — produced as the output of an earlier replayed
  operator; the replayer keeps them and passes them downstream according to
  the recorded data dependencies,
* **external tensors** — tensors whose producer was not captured (model
  parameters, the input batch); the replayer instantiates them up front
  with the recorded shape and dtype but *random values*, since operator
  performance does not depend on values for almost all operators.

The one notable exception the paper calls out is the embedding-table lookup,
whose indices values determine the access pattern.  The
:class:`EmbeddingValueConfig` lets users refine how those index tensors are
synthesised (table size, index distribution, pooling factor), mirroring the
interface Mystique exposes for this case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.selection import ReplayPlanEntry
from repro.et.analyzer import dtype_from_type_string
from repro.et.schema import ETNode, decode_tensor_ref, is_tensor_list_type, is_tensor_type
from repro.torchsim.device import Device
from repro.torchsim.dtypes import DType
from repro.torchsim.tensor import Tensor

#: A tensor's identity within the replay: (tensor_id, storage_id).
TensorKey = Tuple[int, int]


@dataclass
class EmbeddingValueConfig:
    """Value specification for embedding-lookup index tensors.

    When provided, external int64 index tensors are materialised with values
    drawn from the configured distribution so the replayed lookup reproduces
    the original access pattern; without it the default empirical values are
    used (uniform random over the table).
    """

    table_size: int = 1_000_000
    distribution: str = "zipf"      # "zipf" | "uniform"
    zipf_alpha: float = 1.05
    pooling_factor: int = 32
    seed: int = 0

    def generate(self, count: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.distribution == "uniform":
            return rng.integers(0, self.table_size, size=count, dtype=np.int64)
        if self.distribution == "zipf":
            raw = rng.zipf(self.zipf_alpha, size=count).astype(np.int64)
            return np.clip(raw - 1, 0, self.table_size - 1)
        raise ValueError(f"unknown index distribution: {self.distribution!r}")


@dataclass
class TensorClassification:
    """Which recorded tensors are intermediate vs. external."""

    intermediate: List[TensorKey] = field(default_factory=list)
    external: List[TensorKey] = field(default_factory=list)


class TensorManager:
    """Creates and tracks the tensors used during replay."""

    def __init__(
        self,
        embedding_config: Optional[EmbeddingValueConfig] = None,
        device: Optional[Device] = None,
        materialize_values: bool = False,
    ) -> None:
        self.embedding_config = embedding_config
        self.device = device if device is not None else Device.cuda()
        self.materialize_values = materialize_values
        self._registry: Dict[TensorKey, Tensor] = {}
        self._classification = TensorClassification()

    # ------------------------------------------------------------------
    # Classification (Section 4.4)
    # ------------------------------------------------------------------
    def classify(self, entries: Sequence[ReplayPlanEntry]) -> TensorClassification:
        """Classify every input tensor of the replay plan.

        A tensor is *intermediate* when an earlier plan entry lists it among
        its outputs; otherwise it is *external* and must be instantiated
        before execution.
        """
        produced: set = set()
        intermediate: List[TensorKey] = []
        external: List[TensorKey] = []
        seen: set = set()
        for entry in entries:
            for ref in entry.node.input_tensor_refs():
                key = (ref[0], ref[1])
                if key in seen:
                    continue
                seen.add(key)
                if key in produced:
                    intermediate.append(key)
                else:
                    external.append(key)
            for ref in entry.node.output_tensor_refs():
                produced.add((ref[0], ref[1]))
        self._classification = TensorClassification(intermediate=intermediate, external=external)
        return self._classification

    @property
    def classification(self) -> TensorClassification:
        return self._classification

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def _materialize(self, ref, shape, type_str: str) -> Tensor:
        dtype = dtype_from_type_string(type_str)
        shape = tuple(int(dim) for dim in (shape or []))
        tensor = Tensor(shape=shape, dtype=dtype, device=self.device)
        numel = tensor.numel
        if dtype == DType.INT64 and self.embedding_config is not None and numel > 0:
            # Index tensors: honour the user-provided value specification.
            tensor.data = self.embedding_config.generate(numel).reshape(shape or (numel,))
        elif self.materialize_values and numel > 0 and numel < 1_000_000:
            tensor.data = np.random.default_rng(ref[0] if ref else 0).standard_normal(shape).astype(np.float32)
        return tensor

    def get_input(self, value: Any, shape: Any, type_str: str) -> Any:
        """Resolve one recorded input argument into a replay tensor (or list)."""
        if is_tensor_type(type_str):
            ref = decode_tensor_ref(value)
            key = (ref[0], ref[1]) if ref else None
            if key is not None and key in self._registry:
                return self._registry[key]
            tensor = self._materialize(ref, shape, type_str)
            if key is not None:
                self._registry[key] = tensor
            return tensor
        if is_tensor_list_type(type_str) and isinstance(value, (list, tuple)):
            inner_types = _split_generic_list(type_str)
            tensors = []
            for index, item in enumerate(value):
                item_type = inner_types[index] if index < len(inner_types) else "Tensor(float32)"
                item_shape = shape[index] if isinstance(shape, (list, tuple)) and index < len(shape) else []
                tensors.append(self.get_input(item, item_shape, item_type))
            return tensors
        return value

    def gather_inputs(self, node: ETNode) -> List[Any]:
        """Tensor-typed inputs of a node, in recorded order (for the callable)."""
        tensors: List[Any] = []
        for value, shape, type_str in zip(node.inputs, node.input_shapes, node.input_types):
            if is_tensor_type(type_str) or is_tensor_list_type(type_str):
                tensors.append(self.get_input(value, shape, type_str))
        return tensors

    # ------------------------------------------------------------------
    # Output registration (data dependencies)
    # ------------------------------------------------------------------
    def register_outputs(self, node: ETNode, result: Any) -> None:
        """Associate the replayed outputs with the recorded output tensors."""
        outputs = _normalize_result(result)
        output_refs = node.output_tensor_refs()
        for ref, tensor in zip(output_refs, outputs):
            if isinstance(tensor, Tensor):
                self._registry[(ref[0], ref[1])] = tensor

    def output_pairs(self, node: ETNode, result: Any) -> List[Tuple[TensorKey, Tensor]]:
        """Precompute the registrations :meth:`register_outputs` would do.

        The vectorized replay path replays the same node with the same
        output objects every iteration; decoding the node's output refs
        once and replaying the ``(key, tensor)`` pairs via
        :meth:`register_pairs` skips that per-iteration decoding.
        """
        outputs = _normalize_result(result)
        return [
            ((ref[0], ref[1]), tensor)
            for ref, tensor in zip(node.output_tensor_refs(), outputs)
            if isinstance(tensor, Tensor)
        ]

    def register_pairs(self, pairs: Sequence[Tuple[TensorKey, Tensor]]) -> None:
        """Apply precomputed output registrations (see :meth:`output_pairs`)."""
        registry = self._registry
        for key, tensor in pairs:
            registry[key] = tensor

    def lookup(self, key: TensorKey) -> Optional[Tensor]:
        return self._registry.get(key)

    def registered_count(self) -> int:
        return len(self._registry)

    def reset_intermediates(self) -> None:
        """Drop intermediates between iterations, keep external tensors."""
        external = set(self._classification.external)
        self._registry = {key: value for key, value in self._registry.items() if key in external}


# ----------------------------------------------------------------------
def _split_generic_list(type_str: str) -> List[str]:
    inner = type_str[len("GenericList["):-1] if type_str.endswith("]") else ""
    return [part for part in inner.split(",") if part]


def _normalize_result(result: Any) -> List[Any]:
    if result is None:
        return []
    if isinstance(result, (list, tuple)):
        return list(result)
    return [result]
