"""A miniature TorchScript-style IR and compiler.

Mystique reconstructs each ATen operator by parsing its schema, emitting a
TorchScript IR string, and compiling that IR into a callable function
(Section 4.3.1):

.. code-block:: text

    graph(%x.1 : Tensor,
          %y.1 : Tensor):
      %4 : int = prim::Constant[value=1]()
      %5 : Tensor = aten::add(%x.1, %y.1, %4)
      return (%5)

This module provides the same three pieces: :func:`build_ir` (schema +
recorded argument values → IR text), :func:`parse_ir` (IR text → graph) and
:class:`CompilationUnit` (graph → callable).  The compiled callable invokes
the operator through a runtime, so replayed operators go through exactly the
same dispatch path as the original ones.
"""

from __future__ import annotations

import ast
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class IRValue:
    """A named value in the IR graph (``%x.1 : Tensor``)."""

    name: str
    type: str


@dataclass(frozen=True)
class IRConstant:
    """A ``prim::Constant`` node carrying a recorded non-tensor argument."""

    name: str
    type: str
    value: Any


@dataclass(frozen=True)
class IRCall:
    """The operator-invocation node of the graph."""

    op_name: str
    output: str
    output_type: str
    operands: Tuple[str, ...]


@dataclass
class IRGraph:
    """A single-operator TorchScript-style graph."""

    inputs: List[IRValue] = field(default_factory=list)
    constants: List[IRConstant] = field(default_factory=list)
    call: Optional[IRCall] = None
    returns: List[str] = field(default_factory=list)

    def operand_plan(self) -> List[Tuple[str, Any]]:
        """How to build the operator's argument list at call time.

        Returns a list of ``("input", position)`` / ``("const", value)``
        entries, one per operand, in operator-argument order.
        """
        if self.call is None:
            raise ValueError("IR graph has no operator call")
        input_positions = {value.name: index for index, value in enumerate(self.inputs)}
        constant_values = {const.name: const.value for const in self.constants}
        plan: List[Tuple[str, Any]] = []
        for operand in self.call.operands:
            if operand in input_positions:
                plan.append(("input", input_positions[operand]))
            elif operand in constant_values:
                plan.append(("const", constant_values[operand]))
            else:
                raise ValueError(f"operand {operand} is neither an input nor a constant")
        return plan


# ----------------------------------------------------------------------
# IR building
# ----------------------------------------------------------------------
def _format_constant(value: Any) -> str:
    """Serialise a constant so that :func:`parse_ir` can read it back."""
    return repr(value)


def build_ir(
    op_name: str,
    arg_specs: Sequence[Tuple[str, str, Any]],
    return_type: str = "Tensor",
) -> str:
    """Build the textual IR for one operator invocation.

    Parameters
    ----------
    op_name:
        Qualified operator name (``aten::add``).
    arg_specs:
        One ``(arg_name, type, value)`` triple per operator argument, in
        schema order.  Tensor-typed arguments become graph inputs; all other
        arguments become ``prim::Constant`` nodes holding the recorded
        value.
    return_type:
        Type annotation of the single return value.
    """
    input_lines: List[str] = []
    body_lines: List[str] = []
    operands: List[str] = []
    next_id = 1

    for arg_name, arg_type, value in arg_specs:
        is_tensor_like = arg_type.startswith("Tensor") or arg_type.startswith("GenericList[Tensor")
        if is_tensor_like:
            # The IR does not need the dtype refinement recorded in the
            # trace ("Tensor(float32)"); normalise to plain TorchScript
            # types so the text stays parseable.
            ir_type = "Tensor[]" if arg_type.startswith("GenericList") else "Tensor"
            symbol = f"%{arg_name or 'arg'}.{next_id}"
            input_lines.append(f"{symbol} : {ir_type}")
            operands.append(symbol)
        else:
            symbol = f"%{next_id + len(input_lines) + 10}"
            body_lines.append(
                f"  {symbol} : {arg_type or 'NoneType'} = prim::Constant[value={_format_constant(value)}]()"
            )
            operands.append(symbol)
        next_id += 1

    output_symbol = "%out"
    call_line = f"  {output_symbol} : {return_type} = {op_name}({', '.join(operands)})"
    header = "graph(" + ",\n      ".join(input_lines) + "):" if input_lines else "graph():"
    return "\n".join([header, *body_lines, call_line, f"  return ({output_symbol})"])


# ----------------------------------------------------------------------
# IR parsing
# ----------------------------------------------------------------------
#: CPython's C ``_ast`` node constructor tracks its recursion depth in
#: interpreter-wide state (gh-105238 lineage; fixed in newer 3.12+), so
#: concurrent ``ast.literal_eval`` calls from replay worker threads can
#: raise a spurious ``SystemError: AST constructor recursion depth
#: mismatch``.  The parse is GIL-bound anyway, so serialising it costs
#: nothing and makes threaded batch replays deterministic.
_LITERAL_EVAL_LOCK = threading.Lock()


def _literal_eval(raw_value: str):
    with _LITERAL_EVAL_LOCK:
        return ast.literal_eval(raw_value)


_INPUT_RE = re.compile(r"(%[\w.]+)\s*:\s*([^,)]+)")
_CONST_RE = re.compile(r"^\s*(%[\w.]+)\s*:\s*(.+?)\s*=\s*prim::Constant\[value=(.*)\]\(\)\s*$")
_CALL_RE = re.compile(r"^\s*(%[\w.]+)\s*:\s*(.+?)\s*=\s*([\w]+::[\w]+)\((.*)\)\s*$")
_RETURN_RE = re.compile(r"^\s*return\s*\((.*)\)\s*$")


def parse_ir(text: str) -> IRGraph:
    """Parse the textual IR produced by :func:`build_ir`."""
    graph = IRGraph()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].lstrip().startswith("graph("):
        raise ValueError("IR text must start with a graph(...) header")

    # The header may span multiple lines; consume until the closing "):".
    header_lines = [lines[0]]
    index = 1
    while not header_lines[-1].rstrip().endswith("):") and index < len(lines):
        header_lines.append(lines[index])
        index += 1
    header = " ".join(header_lines)
    header_body = header[header.index("(") + 1: header.rindex(")")]
    for match in _INPUT_RE.finditer(header_body):
        graph.inputs.append(IRValue(name=match.group(1), type=match.group(2).strip()))

    for line in lines[index:]:
        const_match = _CONST_RE.match(line)
        if const_match:
            raw_value = const_match.group(3)
            try:
                value = _literal_eval(raw_value)
            except (ValueError, SyntaxError):
                value = raw_value
            graph.constants.append(
                IRConstant(name=const_match.group(1), type=const_match.group(2), value=value)
            )
            continue
        call_match = _CALL_RE.match(line)
        if call_match and "prim::Constant" not in line:
            operands = tuple(
                operand.strip()
                for operand in call_match.group(4).split(",")
                if operand.strip()
            )
            graph.call = IRCall(
                op_name=call_match.group(3),
                output=call_match.group(1),
                output_type=call_match.group(2),
                operands=operands,
            )
            continue
        return_match = _RETURN_RE.match(line)
        if return_match:
            graph.returns = [part.strip() for part in return_match.group(1).split(",") if part.strip()]
    if graph.call is None:
        raise ValueError("IR text contains no operator call")
    return graph


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class CompiledFunction:
    """A callable built from an IR graph.

    Calling it with a runtime and the tensor inputs dispatches the operator
    through the runtime's registry, exactly like the original invocation.
    """

    def __init__(self, name: str, graph: IRGraph):
        self.name = name
        self.graph = graph
        self._plan = graph.operand_plan()
        self.op_name = graph.call.op_name if graph.call else name

    @property
    def num_inputs(self) -> int:
        return len(self.graph.inputs)

    def __call__(self, runtime, *inputs, stream: Optional[int] = None):
        if len(inputs) != self.num_inputs:
            raise TypeError(
                f"{self.name} expects {self.num_inputs} tensor inputs, got {len(inputs)}"
            )
        args: List[Any] = []
        for kind, payload in self._plan:
            if kind == "input":
                args.append(inputs[payload])
            else:
                args.append(payload)
        return runtime.call(self.op_name, *args, stream=stream)


class CompilationUnit:
    """Holds compiled functions, mirroring ``torch._C.CompilationUnit``."""

    def __init__(self) -> None:
        self._functions: Dict[str, CompiledFunction] = {}

    def create_function(self, name: str, graph: IRGraph) -> CompiledFunction:
        function = CompiledFunction(name, graph)
        self._functions[name] = function
        return function

    def find_function(self, name: str) -> Optional[CompiledFunction]:
        return self._functions.get(name)

    def __len__(self) -> int:
        return len(self._functions)
