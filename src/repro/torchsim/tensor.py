"""Tensors.

A ``torchsim`` tensor carries *metadata first*: shape, dtype and device.  Its
identity is the six-element tuple used by the PyTorch execution trace
(``tensor_id, storage_id, offset, numel, itemsize, device``), which Mystique
uses to track data dependencies between operators and to tell tensors apart
(Section 4.4 of the paper).

Values are optional.  Most operators' performance does not depend on input
values, so the simulated kernels never touch them; the one important
exception called out in the paper is the embedding-table lookup, whose access
pattern is determined by the lookup *indices*.  For that case a tensor may
carry a (numpy) payload in :attr:`Tensor.data`, and the cost model inspects
it when present.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.torchsim.device import Device
from repro.torchsim.dtypes import DType, DEFAULT_DTYPE

#: The six-element tensor identity used in execution traces:
#: (tensor_id, storage_id, offset, numel, itemsize, device).
TensorId = Tuple[int, int, int, int, int, str]

_tensor_counter = itertools.count(1)
_storage_counter = itertools.count(1)


def reset_tensor_ids() -> None:
    """Reset the global tensor/storage ID counters.

    Intended for tests and for making independently generated traces
    reproducible; production code never needs to call it.
    """
    global _tensor_counter, _storage_counter
    _tensor_counter = itertools.count(1)
    _storage_counter = itertools.count(1)


def _next_tensor_id() -> int:
    return next(_tensor_counter)


def _next_storage_id() -> int:
    return next(_storage_counter)


@dataclass
class Tensor:
    """A simulated tensor.

    Parameters
    ----------
    shape:
        Tensor dimensions.  Scalars are represented by an empty tuple.
    dtype:
        Element type; defaults to float32.
    device:
        Logical device the tensor lives on.
    data:
        Optional numpy payload.  Only used when operator cost genuinely
        depends on values (e.g. embedding lookup indices).
    requires_grad:
        Marks parameters so optimizers and DDP know what to update/reduce.
    """

    shape: Tuple[int, ...]
    dtype: DType = DEFAULT_DTYPE
    device: Device = field(default_factory=Device.cuda)
    data: Optional[np.ndarray] = None
    requires_grad: bool = False
    tensor_id: int = field(default_factory=_next_tensor_id)
    storage_id: int = field(default_factory=_next_storage_id)
    storage_offset: int = 0
    #: Gradient tensor populated by the backward pass (parameters only).
    grad: Optional["Tensor"] = None

    def __post_init__(self) -> None:
        self.shape = tuple(int(dim) for dim in self.shape)
        if any(dim < 0 for dim in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def id(self) -> TensorId:
        """The six-element identity tuple used by the execution trace."""
        return (
            self.tensor_id,
            self.storage_id,
            self.storage_offset,
            self.numel,
            self.dtype.itemsize,
            str(self.device),
        )

    # ------------------------------------------------------------------
    # Shape / size helpers
    # ------------------------------------------------------------------
    @property
    def numel(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.numel * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def size(self, dim: Optional[int] = None):
        if dim is None:
            return self.shape
        return self.shape[dim]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        shape: Sequence[int],
        dtype: DType = DEFAULT_DTYPE,
        device: Optional[Device] = None,
        requires_grad: bool = False,
    ) -> "Tensor":
        """Create a metadata-only tensor (no payload)."""
        return cls(
            shape=tuple(shape),
            dtype=dtype,
            device=device if device is not None else Device.cuda(),
            requires_grad=requires_grad,
        )

    @classmethod
    def randn(
        cls,
        shape: Sequence[int],
        dtype: DType = DEFAULT_DTYPE,
        device: Optional[Device] = None,
        requires_grad: bool = False,
        rng: Optional[np.random.Generator] = None,
        materialize: bool = False,
    ) -> "Tensor":
        """Create a tensor that semantically holds random values.

        Values are only materialised when ``materialize=True`` (or when a
        small payload is cheap); for large activations and weights the
        payload is irrelevant to the cost model, so it is skipped.
        """
        tensor = cls.empty(shape, dtype=dtype, device=device, requires_grad=requires_grad)
        if materialize:
            generator = rng if rng is not None else np.random.default_rng(0)
            tensor.data = generator.standard_normal(tensor.shape).astype(np.float32)
        return tensor

    @classmethod
    def from_indices(
        cls,
        values: Iterable[int],
        device: Optional[Device] = None,
        dtype: DType = DType.INT64,
    ) -> "Tensor":
        """Create an index tensor with a materialised payload.

        Index tensors are the value-sensitive case described in Section 4.4:
        the lookup pattern (and therefore cost) of ``embedding_bag`` depends
        on the actual indices.
        """
        array = np.asarray(list(values), dtype=np.int64)
        tensor = cls(
            shape=tuple(array.shape),
            dtype=dtype,
            device=device if device is not None else Device.cuda(),
            data=array,
        )
        return tensor

    def view_as_new_tensor(self) -> "Tensor":
        """Return a tensor sharing storage (e.g. the result of ``aten::t``)."""
        return Tensor(
            shape=self.shape,
            dtype=self.dtype,
            device=self.device,
            data=self.data,
            requires_grad=self.requires_grad,
            storage_id=self.storage_id,
            storage_offset=self.storage_offset,
        )

    def type_string(self) -> str:
        """The ``Tensor(<dtype>)`` string used in execution-trace metadata."""
        return f"Tensor({self.dtype.type_name})"

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype.type_name}, "
            f"device={self.device}, id={self.tensor_id})"
        )
