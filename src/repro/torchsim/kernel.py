"""Kernel descriptors and launch records.

Operators do not run real GPU code; instead each operator implementation
describes the kernels it *would* launch via a :class:`KernelDesc` (how much
compute, how much memory traffic, what kind of kernel).  The hardware model
turns a descriptor into a duration, and the GPU timeline simulator places
the resulting :class:`KernelLaunch` records on streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class KernelKind(enum.Enum):
    """Broad kernel classes with distinct efficiency characteristics."""

    GEMM = "gemm"
    CONV = "conv"
    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    NORMALIZATION = "normalization"
    POOLING = "pooling"
    EMBEDDING = "embedding"
    MEMCPY = "memcpy"
    COLLECTIVE = "collective"
    CUSTOM = "custom"
    FUSED = "fused"


class OpCategory(enum.Enum):
    """The four operator categories of Section 3.3 of the paper."""

    ATEN = "aten"
    COMM = "comms"
    FUSED = "fused"
    CUSTOM = "custom"


@dataclass
class KernelDesc:
    """A description of one GPU kernel an operator launches.

    Attributes
    ----------
    name:
        Kernel name as it would appear in a profiler trace.
    kind:
        Broad kernel class; selects efficiency factors in the cost model.
    flops:
        Floating-point operations performed by the kernel.
    bytes_read / bytes_written:
        DRAM traffic in bytes, used for the bandwidth roof and the HBM
        bandwidth metric.
    occupancy:
        Fraction of the device's SMs the kernel keeps busy (0..1].
    locality:
        Cache friendliness in [0, 1]; drives the L1/L2 hit-rate counters and
        modulates the effective memory bandwidth.
    comm_bytes:
        For collective kernels, the per-rank payload size; the interconnect
        model (not the roofline) provides the duration.
    """

    name: str
    kind: KernelKind
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    occupancy: float = 0.8
    locality: float = 0.5
    comm_bytes: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of DRAM traffic (0 when there is no traffic)."""
        if self.bytes_total <= 0:
            return 0.0
        return self.flops / self.bytes_total


@dataclass
class KernelLaunch:
    """A kernel launch event recorded by the runtime.

    ``launch_ts`` is the CPU-side timestamp when the kernel was enqueued;
    ``duration`` is the modelled on-device execution time.  The GPU timeline
    simulator derives the actual ``start``/``end`` times respecting stream
    ordering.
    """

    desc: KernelDesc
    stream_id: int
    launch_ts: float
    duration: float
    op_node_id: int
    op_name: str
    category: OpCategory
    device_index: int = 0
    correlation_id: int = 0
    start: Optional[float] = None
    end: Optional[float] = None

    @property
    def resolved(self) -> bool:
        return self.start is not None and self.end is not None
