"""Data types understood by the simulated framework.

Only the handful of dtypes exercised by the evaluated workloads are modelled.
Each dtype knows its element size in bytes, which is all the performance
model needs.
"""

from __future__ import annotations

import enum


class DType(enum.Enum):
    """Element type of a :class:`~repro.torchsim.tensor.Tensor`."""

    FLOAT32 = ("float32", 4, True)
    FLOAT16 = ("float16", 2, True)
    BFLOAT16 = ("bfloat16", 2, True)
    FLOAT64 = ("float64", 8, True)
    INT64 = ("int64", 8, False)
    INT32 = ("int32", 4, False)
    INT8 = ("int8", 1, False)
    UINT8 = ("uint8", 1, False)
    BOOL = ("bool", 1, False)

    def __init__(self, type_name: str, itemsize: int, is_floating: bool):
        self.type_name = type_name
        self.itemsize = itemsize
        self.is_floating = is_floating

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.type_name

    @classmethod
    def from_name(cls, name: str) -> "DType":
        """Look a dtype up by its string name (e.g. ``"float32"``).

        Accepts both bare names and the ``Tensor(float32)`` form that appears
        in execution-trace type strings.
        """
        cleaned = name.strip()
        if cleaned.startswith("Tensor(") and cleaned.endswith(")"):
            cleaned = cleaned[len("Tensor("):-1]
        for dtype in cls:
            if dtype.type_name == cleaned:
                return dtype
        raise ValueError(f"unknown dtype name: {name!r}")


#: Default floating-point dtype, matching PyTorch's default.
DEFAULT_DTYPE = DType.FLOAT32
