"""A PyTorch-like framework substrate for the Mystique reproduction.

``torchsim`` mirrors the parts of PyTorch that Mystique interacts with:

* a :class:`~repro.torchsim.tensor.Tensor` type whose identity is the
  six-element tuple used by the PyTorch execution trace,
* an operator registry with ATen-style schemas, communication collectives,
  fused (JIT) operators and user-registered custom operators,
* a :class:`~repro.torchsim.runtime.Runtime` that dispatches operators,
  launches simulated GPU kernels onto streams, and drives the profiler,
* the :class:`~repro.torchsim.observer.ExecutionGraphObserver` which captures
  execution traces with the node schema of Table 2 of the paper,
* a :mod:`~repro.torchsim.profiler` that records CPU operator spans and GPU
  kernel spans (the "profiler trace" of the paper),
* ``c10d``-style distributed process groups and collectives,
* a small ``nn`` module zoo plus a tape-based autograd used by the workloads.

The goal is not numerical fidelity (most tensors carry only metadata) but
*invocation-boundary* fidelity: the metadata recorded at operator invocation
time is exactly what Mystique's capture/replay pipeline consumes.
"""

from repro.torchsim.dtypes import DType
from repro.torchsim.device import Device
from repro.torchsim.tensor import Tensor, reset_tensor_ids
from repro.torchsim.stream import Stream, DEFAULT_COMPUTE_STREAM, COMM_STREAM, MEMCPY_STREAM
from repro.torchsim.runtime import Runtime
from repro.torchsim.observer import ExecutionGraphObserver
from repro.torchsim.profiler import Profiler, ProfilerTrace

__all__ = [
    "DType",
    "Device",
    "Tensor",
    "reset_tensor_ids",
    "Stream",
    "DEFAULT_COMPUTE_STREAM",
    "COMM_STREAM",
    "MEMCPY_STREAM",
    "Runtime",
    "ExecutionGraphObserver",
    "Profiler",
    "ProfilerTrace",
]
