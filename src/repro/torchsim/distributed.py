"""c10d-style distributed state: process groups and work handles.

Distributed training in the paper uses the PyTorch ``c10d`` library with
nccl/gloo/mpi/ucc backends.  What Mystique needs from it is:

* process groups (which ranks participate in a collective),
* the message sizes and dtypes of each collective,
* blocking vs. asynchronous execution semantics (``Work.wait()``).

This module models exactly those pieces.  The actual duration of a
collective comes from :class:`repro.hardware.network.CollectiveCostModel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.network import CollectiveCostModel, InterconnectSpec
from repro.torchsim.kernel import KernelLaunch

#: Backends accepted by :func:`DistributedContext.new_group`, mirroring c10d.
SUPPORTED_BACKENDS = ("nccl", "gloo", "mpi", "ucc")


@dataclass(frozen=True)
class ProcessGroup:
    """A communication group: an ordered set of participating ranks."""

    pg_id: int
    ranks: Tuple[int, ...]
    backend: str = "nccl"

    def __post_init__(self) -> None:
        if self.backend not in SUPPORTED_BACKENDS:
            raise ValueError(
                f"unsupported backend {self.backend!r}; expected one of {SUPPORTED_BACKENDS}"
            )
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("process group ranks must be unique")

    @property
    def size(self) -> int:
        return len(self.ranks)

    def contains(self, rank: int) -> bool:
        return rank in self.ranks

    def describe(self) -> Dict[str, object]:
        """JSON-friendly description recorded in execution-trace inputs."""
        return {"pg_id": self.pg_id, "ranks": list(self.ranks), "backend": self.backend}


class Work:
    """Handle returned by asynchronous collectives (mirrors ``c10d.Work``)."""

    def __init__(self, runtime, launch: KernelLaunch):
        self._runtime = runtime
        self._launch = launch
        self._completed = False

    def wait(self) -> None:
        """Block the issuing CPU thread until the collective kernel finishes."""
        if self._launch.end is not None:
            self._runtime.block_until(self._launch.end)
        self._completed = True

    def is_completed(self) -> bool:
        return self._completed or (
            self._launch.end is not None and self._launch.end <= self._runtime.now()
        )

    @property
    def launch(self) -> KernelLaunch:
        return self._launch


class DistributedContext:
    """Per-process distributed state (rank, world size, process groups)."""

    def __init__(
        self,
        rank: int,
        world_size: int,
        interconnect: Optional[InterconnectSpec] = None,
        collective_model: Optional[CollectiveCostModel] = None,
        backend: str = "nccl",
    ) -> None:
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        self.rank = rank
        self.world_size = world_size
        self.backend = backend
        if collective_model is not None:
            self.collective_model = collective_model
        else:
            self.collective_model = CollectiveCostModel(interconnect or InterconnectSpec())
        self._pg_counter = itertools.count(1)
        self.default_group = ProcessGroup(0, tuple(range(world_size)), backend)
        self.groups: Dict[int, ProcessGroup] = {0: self.default_group}
        #: (ranks, backend) -> group, so trace replays with many process
        #: groups resolve recorded descriptions in O(1) per collective
        #: instead of scanning every group.
        self._group_index: Dict[Tuple[Tuple[int, ...], str], ProcessGroup] = {
            (self.default_group.ranks, self.default_group.backend): self.default_group
        }
        #: Cross-rank collective scheduler for multi-rank co-replay; when
        #: set (see :mod:`repro.cluster`), collectives synchronise through
        #: it instead of being priced purely locally.
        self.rendezvous: Optional[object] = None

    # ------------------------------------------------------------------
    def new_group(self, ranks: Sequence[int], backend: Optional[str] = None) -> ProcessGroup:
        """Create a new process group over ``ranks`` (mirrors ``dist.new_group``)."""
        group = ProcessGroup(
            pg_id=next(self._pg_counter),
            ranks=tuple(int(r) for r in ranks),
            backend=backend or self.backend,
        )
        self.groups[group.pg_id] = group
        self._group_index.setdefault((group.ranks, group.backend), group)
        return group

    def get_group(self, pg_id: int) -> ProcessGroup:
        if pg_id not in self.groups:
            raise KeyError(f"unknown process group id {pg_id}")
        return self.groups[pg_id]

    def group_for_description(self, description: Dict[str, object]) -> ProcessGroup:
        """Find-or-create a group matching a recorded description.

        Mystique's communication replay creates new process groups and maps
        them onto the groups recorded in the trace (Section 4.3.2); this is
        the find-or-create half of that mapping.
        """
        ranks = tuple(int(r) for r in description.get("ranks", range(self.world_size)))
        backend = str(description.get("backend", self.backend))
        existing = self._group_index.get((ranks, backend))
        if existing is not None:
            return existing
        return self.new_group(ranks, backend)
