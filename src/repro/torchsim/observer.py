"""The ExecutionGraphObserver.

This mirrors ``torch.profiler.ExecutionGraphObserver`` (renamed
``ExecutionTraceObserver`` in later PyTorch releases): the user registers a
callback (an output path), and between ``start()`` and ``stop()`` every
operator invocation is recorded as an execution-trace node with the Table 2
schema.  Typically a single training iteration is captured.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.et.schema import ETNode, ROOT_NODE_ID, encode_arg
from repro.et.trace import ExecutionTrace


class ExecutionGraphObserver:
    """Captures execution traces from a :class:`~repro.torchsim.runtime.Runtime`."""

    def __init__(self) -> None:
        self._output_path: Optional[Path] = None
        self._enabled = False
        self.trace: Optional[ExecutionTrace] = None

    # ------------------------------------------------------------------
    # The user-facing API mirrors the hooks of Section 4.1.
    # ------------------------------------------------------------------
    def register_callback(self, output_path: "str | Path | None") -> None:
        """Set the file the trace is written to when capture stops."""
        self._output_path = Path(output_path) if output_path is not None else None

    def start(self) -> None:
        """Begin capturing; starts a fresh trace with a synthetic root node."""
        self.trace = ExecutionTrace()
        self.trace.add_node(
            ETNode(
                name="[pytorch|profiler|execution_graph|process]",
                id=ROOT_NODE_ID,
                parent=0,
            )
        )
        self._enabled = True

    def stop(self) -> None:
        """Stop capturing and, if a callback path was registered, write JSON."""
        self._enabled = False
        if self.trace is not None and self._output_path is not None:
            self.trace.save(self._output_path)

    @property
    def enabled(self) -> bool:
        return self._enabled

    # ------------------------------------------------------------------
    # Called by the runtime
    # ------------------------------------------------------------------
    def record_node(
        self,
        name: str,
        node_id: int,
        parent_id: int,
        op_schema: str,
        inputs: Sequence[Any],
        outputs: Sequence[Any],
        attrs: Optional[dict] = None,
    ) -> Optional[ETNode]:
        """Record one operator (or annotation) invocation.

        ``inputs``/``outputs`` are the raw argument values; tensors are
        encoded into identity tuples, scalars kept verbatim.
        """
        if not self._enabled or self.trace is None:
            return None
        input_values: List[Any] = []
        input_shapes: List[Any] = []
        input_types: List[str] = []
        for value in inputs:
            encoded, shape, type_str = encode_arg(value)
            input_values.append(encoded)
            input_shapes.append(shape)
            input_types.append(type_str)
        output_values: List[Any] = []
        output_shapes: List[Any] = []
        output_types: List[str] = []
        for value in outputs:
            encoded, shape, type_str = encode_arg(value)
            output_values.append(encoded)
            output_shapes.append(shape)
            output_types.append(type_str)
        node = ETNode(
            name=name,
            id=node_id,
            parent=parent_id if parent_id > 0 else ROOT_NODE_ID,
            op_schema=op_schema,
            inputs=input_values,
            input_shapes=input_shapes,
            input_types=input_types,
            outputs=output_values,
            output_shapes=output_shapes,
            output_types=output_types,
            attrs=dict(attrs or {}),
        )
        self.trace.add_node(node)
        return node
