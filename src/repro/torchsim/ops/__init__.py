"""Operator definitions for the simulated framework.

Operators are registered in a global :class:`~repro.torchsim.ops.registry.OperatorRegistry`
keyed by their qualified name (``aten::addmm``, ``c10d::all_reduce``,
``fbgemm::split_embedding_lookup`` ...).  Importing this package registers
the built-in operator library:

* :mod:`~repro.torchsim.ops.aten` — the ATen compute operators,
* :mod:`~repro.torchsim.ops.comms` — c10d-style communication collectives,
* :mod:`~repro.torchsim.ops.fused` — JIT-fused pointwise operators,
* :mod:`~repro.torchsim.ops.custom` — custom/out-of-source operators
  (FBGEMM-style embedding kernels, Fairseq-style LSTM cells, ...).
"""

from repro.torchsim.ops.schema import OperatorSchema, SchemaArg, parse_schema
from repro.torchsim.ops.registry import (
    OperatorDef,
    OperatorRegistry,
    global_registry,
    register_op,
)

# Importing the operator modules populates the global registry.
from repro.torchsim.ops import aten as _aten  # noqa: F401
from repro.torchsim.ops import comms as _comms  # noqa: F401
from repro.torchsim.ops import fused as _fused  # noqa: F401
from repro.torchsim.ops import custom as _custom  # noqa: F401

__all__ = [
    "OperatorSchema",
    "SchemaArg",
    "parse_schema",
    "OperatorDef",
    "OperatorRegistry",
    "global_registry",
    "register_op",
]
