"""Custom (out-of-source) operators.

PyTorch's custom-extension mechanism lets users register operators outside
the default ATen backend; production models lean on libraries such as
FBGEMM and torchrec, and on model-specific kernels (Section 3.3).  Custom
operators are the main source of coverage gaps in Table 3: Mystique can only
replay the ones whose implementation has been registered with it.

The operators below model the custom libraries used by the evaluated
workloads:

* ``fbgemm::*`` — the batched/fused embedding lookups the RM workload uses
  (supported by Mystique out of the box, per Section 5),
* ``fairseq::*`` — LSTM-style acoustic-model kernels used by the ASR
  workload (not supported out of the box; they account for the execution
  time coverage gap of Table 3 unless the user registers them through the
  custom-operator interface).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.torchsim.kernel import KernelDesc, KernelKind, OpCategory
from repro.torchsim.ops.registry import register_op
from repro.torchsim.tensor import Tensor


def _occupancy(ctx, parallel_work: float) -> float:
    return max(0.05, min(1.0, parallel_work / (ctx.spec.num_sms * 2048.0)))


# ----------------------------------------------------------------------
# FBGEMM-style fused embedding lookups (used by RM)
# ----------------------------------------------------------------------
def _pooled_embedding_locality(indices: Tensor, total_rows: int) -> float:
    """Locality estimate shared with ``aten::embedding_bag``."""
    if indices.data is None or indices.data.size == 0 or total_rows <= 0:
        return 0.35
    unique = len(np.unique(indices.data))
    reuse = 1.0 - unique / max(1, indices.data.size)
    coverage = 1.0 - min(1.0, unique / max(1, total_rows))
    return float(min(0.95, 0.25 + 0.5 * reuse + 0.2 * coverage))


@register_op(
    "fbgemm::split_embedding_codegen_lookup_function(Tensor weights, Tensor indices, Tensor offsets, int num_tables, int embedding_dim, int pooling_mode=0) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fbgemm",
)
def fbgemm_split_embedding_lookup(ctx, weights: Tensor, indices: Tensor, offsets: Tensor, num_tables: int, embedding_dim: int, pooling_mode: int = 0) -> Tensor:
    """Batched lookup over ``num_tables`` embedding tables in one kernel."""
    lookups = indices.shape[0] if indices.shape else 0
    bags = max(1, (offsets.shape[0] - 1) if offsets.shape and offsets.shape[0] > 1 else offsets.shape[0])
    locality = _pooled_embedding_locality(indices, weights.shape[0])
    ctx.launch(
        KernelDesc(
            name="fbgemm_split_embedding_forward_kernel",
            kind=KernelKind.EMBEDDING,
            flops=lookups * embedding_dim,
            bytes_read=lookups * embedding_dim * weights.dtype.itemsize
            + lookups * indices.dtype.itemsize,
            bytes_written=bags * embedding_dim * weights.dtype.itemsize,
            occupancy=_occupancy(ctx, bags * embedding_dim),
            locality=locality,
            metadata={"num_tables": num_tables, "dtype": weights.dtype.type_name},
        )
    )
    batch = bags // max(1, num_tables)
    return Tensor.empty((batch, num_tables * embedding_dim), dtype=weights.dtype, device=weights.device)


@register_op(
    "fbgemm::split_embedding_backward_codegen(Tensor grad_output, Tensor weights, Tensor indices, Tensor offsets, int num_tables, int embedding_dim) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fbgemm",
)
def fbgemm_split_embedding_backward(ctx, grad_output: Tensor, weights: Tensor, indices: Tensor, offsets: Tensor, num_tables: int, embedding_dim: int) -> Tensor:
    lookups = indices.shape[0] if indices.shape else 0
    locality = _pooled_embedding_locality(indices, weights.shape[0])
    ctx.launch(
        KernelDesc(
            name="fbgemm_split_embedding_backward_kernel",
            kind=KernelKind.EMBEDDING,
            flops=2.0 * lookups * embedding_dim,
            bytes_read=grad_output.nbytes + lookups * indices.dtype.itemsize,
            bytes_written=lookups * embedding_dim * weights.dtype.itemsize,
            occupancy=_occupancy(ctx, lookups * embedding_dim),
            locality=locality * 0.8,
            metadata={"num_tables": num_tables, "dtype": weights.dtype.type_name},
        )
    )
    return Tensor.empty(weights.shape, dtype=weights.dtype, device=weights.device)


@register_op(
    "fbgemm::dense_to_jagged(Tensor dense, Tensor lengths) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fbgemm",
)
def fbgemm_dense_to_jagged(ctx, dense: Tensor, lengths: Tensor) -> Tensor:
    ctx.launch(
        KernelDesc(
            name="fbgemm_dense_to_jagged_kernel",
            kind=KernelKind.CUSTOM,
            flops=dense.numel,
            bytes_read=dense.nbytes,
            bytes_written=dense.nbytes,
            occupancy=_occupancy(ctx, dense.numel),
            locality=0.7,
            metadata={"dtype": dense.dtype.type_name},
        )
    )
    return Tensor.empty(dense.shape, dtype=dense.dtype, device=dense.device)


@register_op(
    "fbgemm::permute_pooled_embeddings(Tensor pooled, Tensor permute) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fbgemm",
)
def fbgemm_permute_pooled_embeddings(ctx, pooled: Tensor, permute: Tensor) -> Tensor:
    ctx.launch(
        KernelDesc(
            name="fbgemm_permute_pooled_embs_kernel",
            kind=KernelKind.CUSTOM,
            flops=0.0,
            bytes_read=pooled.nbytes,
            bytes_written=pooled.nbytes,
            occupancy=_occupancy(ctx, pooled.numel),
            locality=0.6,
            metadata={"dtype": pooled.dtype.type_name},
        )
    )
    return Tensor.empty(pooled.shape, dtype=pooled.dtype, device=pooled.device)


# ----------------------------------------------------------------------
# Fairseq-style acoustic-model kernels (used by ASR)
# ----------------------------------------------------------------------
@register_op(
    "fairseq::lstm_layer(Tensor input, Tensor weight_ih, Tensor weight_hh, Tensor bias, int hidden_size) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fairseq",
)
def fairseq_lstm_layer(ctx, input: Tensor, weight_ih: Tensor, weight_hh: Tensor, bias: Tensor, hidden_size: int) -> Tensor:
    """One LSTM layer over a (seq_len, batch, features) input.

    The recurrence is inherently sequential over time steps, which is why a
    dedicated fused kernel is used in production instead of a chain of ATen
    GEMMs; that also makes it expensive relative to its operator count —
    exactly the "custom operators dominate the execution-time coverage gap"
    effect of Table 3.
    """
    seq_len, batch, features = input.shape
    flops_per_step = 2.0 * batch * (features + hidden_size) * 4 * hidden_size
    total_flops = flops_per_step * seq_len
    bytes_read = (weight_ih.nbytes + weight_hh.nbytes) + input.nbytes
    bytes_written = seq_len * batch * hidden_size * input.dtype.itemsize
    ctx.launch(
        KernelDesc(
            name="fairseq_fused_lstm_kernel",
            kind=KernelKind.CUSTOM,
            flops=total_flops,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            # The time recurrence serialises steps, but within one step the
            # fused kernel parallelises over batch, hidden units and the
            # four gates.
            occupancy=_occupancy(ctx, batch * hidden_size * 8),
            locality=0.75,
            metadata={"hidden_size": hidden_size, "dtype": input.dtype.type_name},
        )
    )
    return Tensor.empty((seq_len, batch, hidden_size), dtype=input.dtype, device=input.device)


@register_op(
    "fairseq::lstm_layer_backward(Tensor grad_output, Tensor input, Tensor weight_ih, Tensor weight_hh, int hidden_size) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fairseq",
)
def fairseq_lstm_layer_backward(ctx, grad_output: Tensor, input: Tensor, weight_ih: Tensor, weight_hh: Tensor, hidden_size: int) -> Tensor:
    seq_len, batch, features = input.shape
    flops_per_step = 4.0 * batch * (features + hidden_size) * 4 * hidden_size
    ctx.launch(
        KernelDesc(
            name="fairseq_fused_lstm_backward_kernel",
            kind=KernelKind.CUSTOM,
            flops=flops_per_step * seq_len,
            bytes_read=grad_output.nbytes + input.nbytes + weight_ih.nbytes + weight_hh.nbytes,
            bytes_written=input.nbytes + weight_ih.nbytes + weight_hh.nbytes,
            occupancy=_occupancy(ctx, batch * hidden_size * 8),
            locality=0.7,
            metadata={"hidden_size": hidden_size, "dtype": input.dtype.type_name},
        )
    )
    return Tensor.empty(input.shape, dtype=input.dtype, device=input.device)


@register_op(
    "fairseq::specaugment(Tensor features, int time_mask=20, int freq_mask=10) -> Tensor",
    category=OpCategory.CUSTOM,
    library="fairseq",
)
def fairseq_specaugment(ctx, features: Tensor, time_mask: int = 20, freq_mask: int = 10) -> Tensor:
    """Spectrogram augmentation applied to the acoustic features."""
    ctx.launch(
        KernelDesc(
            name="fairseq_specaugment_kernel",
            kind=KernelKind.CUSTOM,
            flops=features.numel,
            bytes_read=features.nbytes,
            bytes_written=features.nbytes,
            occupancy=_occupancy(ctx, features.numel),
            locality=0.8,
            metadata={"dtype": features.dtype.type_name},
        )
    )
    return Tensor.empty(features.shape, dtype=features.dtype, device=features.device)


@register_op(
    "internal::sparse_data_preproc(Tensor values, Tensor lengths, int num_features) -> Tensor",
    category=OpCategory.CUSTOM,
    library="internal",
)
def internal_sparse_data_preproc(ctx, values: Tensor, lengths: Tensor, num_features: int) -> Tensor:
    """Proprietary sparse-feature preprocessing used by the RM workload.

    Stands in for the in-house custom operators that Mystique does *not*
    support out of the box (they are outside ATen/c10d/FBGEMM); together
    with the fused operators they account for RM's coverage gap in Table 3.
    The kernel expands the jagged sparse batch into dense per-feature
    buffers, so its memory traffic is a multiple of the raw index payload.
    """
    ctx.launch(
        KernelDesc(
            name="internal_sparse_preproc_kernel",
            kind=KernelKind.CUSTOM,
            flops=32.0 * values.numel,
            bytes_read=40.0 * values.nbytes + lengths.nbytes,
            bytes_written=8.0 * values.nbytes,
            occupancy=_occupancy(ctx, values.numel),
            locality=0.5,
            metadata={"num_features": num_features},
        )
    )
    return Tensor.empty(values.shape, dtype=values.dtype, device=values.device)


@register_op(
    "internal::fused_scoring_head(Tensor logits, Tensor weights, int num_tasks) -> Tensor",
    category=OpCategory.CUSTOM,
    library="internal",
)
def internal_fused_scoring_head(ctx, logits: Tensor, weights: Tensor, num_tasks: int) -> Tensor:
    """Multi-task scoring head with an in-house fused implementation."""
    ctx.launch(
        KernelDesc(
            name="internal_fused_scoring_kernel",
            kind=KernelKind.CUSTOM,
            flops=2.0 * logits.numel * num_tasks,
            bytes_read=logits.nbytes + weights.nbytes,
            bytes_written=logits.nbytes,
            occupancy=_occupancy(ctx, logits.numel),
            locality=0.7,
            metadata={"num_tasks": num_tasks},
        )
    )
    return Tensor.empty(logits.shape, dtype=logits.dtype, device=logits.device)


@register_op(
    "torchrec::kjt_split(Tensor values, Tensor lengths, int num_features) -> Tensor",
    category=OpCategory.CUSTOM,
    library="torchrec",
)
def torchrec_kjt_split(ctx, values: Tensor, lengths: Tensor, num_features: int) -> Tensor:
    """KeyedJaggedTensor preprocessing used by recommendation models."""
    ctx.launch(
        KernelDesc(
            name="torchrec_kjt_split_kernel",
            kind=KernelKind.CUSTOM,
            flops=values.numel,
            bytes_read=values.nbytes + lengths.nbytes,
            bytes_written=values.nbytes,
            occupancy=_occupancy(ctx, values.numel),
            locality=0.6,
            metadata={"num_features": num_features},
        )
    )
    return Tensor.empty(values.shape, dtype=values.dtype, device=values.device)
