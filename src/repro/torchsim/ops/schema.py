"""Operator schemas and the string-based schema parser.

PyTorch describes every operator with a schema string such as::

    aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor

Mystique's operator-reconstruction step (Section 4.3.1) parses these strings
to recover the operator name and the types of its arguments, builds a
TorchScript IR string from them, and compiles that IR into a callable.  This
module provides the schema data model and the parser; the IR-building and
"compilation" steps live in :mod:`repro.torchsim.jit` and
:mod:`repro.core.reconstruction`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class SchemaArg:
    """One argument in an operator schema."""

    name: str
    type: str
    default: Optional[str] = None
    kwarg_only: bool = False

    @property
    def is_tensor(self) -> bool:
        return self.type.startswith("Tensor")

    @property
    def is_tensor_list(self) -> bool:
        return self.type.replace(" ", "") in ("Tensor[]", "Tensor?[]")

    @property
    def is_optional(self) -> bool:
        return self.type.endswith("?")

    def to_string(self) -> str:
        text = f"{self.type} {self.name}"
        if self.default is not None:
            text += f"={self.default}"
        return text


@dataclass(frozen=True)
class OperatorSchema:
    """Parsed form of a PyTorch-style operator schema string."""

    namespace: str
    name: str
    overload: str
    args: Tuple[SchemaArg, ...]
    returns: Tuple[str, ...]

    @property
    def qualified_name(self) -> str:
        """``namespace::name`` — the key used by the operator registry."""
        return f"{self.namespace}::{self.name}"

    @property
    def full_name(self) -> str:
        """``namespace::name.overload`` (overload omitted when empty)."""
        if self.overload:
            return f"{self.namespace}::{self.name}.{self.overload}"
        return self.qualified_name

    @property
    def positional_args(self) -> Tuple[SchemaArg, ...]:
        return tuple(arg for arg in self.args if not arg.kwarg_only)

    @property
    def kwarg_only_args(self) -> Tuple[SchemaArg, ...]:
        return tuple(arg for arg in self.args if arg.kwarg_only)

    def to_string(self) -> str:
        """Re-serialise the schema to its canonical string form."""
        parts: List[str] = []
        emitted_star = False
        for arg in self.args:
            if arg.kwarg_only and not emitted_star:
                parts.append("*")
                emitted_star = True
            parts.append(arg.to_string())
        args_text = ", ".join(parts)
        if len(self.returns) == 0:
            ret_text = "()"
        elif len(self.returns) == 1:
            ret_text = self.returns[0]
        else:
            ret_text = "(" + ", ".join(self.returns) + ")"
        return f"{self.full_name}({args_text}) -> {ret_text}"


_HEADER_RE = re.compile(
    r"^\s*(?P<namespace>[A-Za-z_][\w]*)::(?P<name>[\w]+)"
    r"(?:\.(?P<overload>[\w]+))?\s*\("
)


def _split_top_level(text: str, separator: str = ",") -> List[str]:
    """Split on ``separator`` ignoring separators nested in brackets/parens."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == separator and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_arg(text: str, kwarg_only: bool) -> SchemaArg:
    """Parse one ``Type name=default`` argument declaration."""
    default: Optional[str] = None
    if "=" in text:
        decl, _, default = text.partition("=")
        decl = decl.strip()
        default = default.strip()
    else:
        decl = text.strip()
    # The type may itself contain spaces (e.g. "int[2]"), but the argument
    # name is always the last whitespace-separated token.
    if " " not in decl:
        # Schema fragments like "Tensor" with no name (rare, e.g. returns
        # reused as args) — synthesise a name.
        return SchemaArg(name="", type=decl, default=default, kwarg_only=kwarg_only)
    type_text, _, name = decl.rpartition(" ")
    return SchemaArg(name=name.strip(), type=type_text.strip(), default=default, kwarg_only=kwarg_only)


def parse_schema(schema_str: str) -> OperatorSchema:
    """Parse a PyTorch-style operator schema string.

    Raises ``ValueError`` when the string does not look like a schema, which
    is how Mystique's reconstruction step detects non-operator nodes (pure
    annotations, autograd wrappers) in the execution trace.
    """
    match = _HEADER_RE.match(schema_str)
    if not match:
        raise ValueError(f"not a valid operator schema: {schema_str!r}")
    namespace = match.group("namespace")
    name = match.group("name")
    overload = match.group("overload") or ""

    rest = schema_str[match.end():]
    # Find the closing parenthesis of the argument list at depth 0.
    depth = 1
    for index, char in enumerate(rest):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                args_text = rest[:index]
                remainder = rest[index + 1:]
                break
    else:
        raise ValueError(f"unbalanced parentheses in schema: {schema_str!r}")

    if "->" not in remainder:
        raise ValueError(f"missing return annotation in schema: {schema_str!r}")
    returns_text = remainder.split("->", 1)[1].strip()
    if returns_text.startswith("(") and returns_text.endswith(")"):
        returns = tuple(
            part for part in _split_top_level(returns_text[1:-1]) if part
        )
    elif returns_text:
        returns = (returns_text,)
    else:
        returns = tuple()

    args: List[SchemaArg] = []
    kwarg_only = False
    for part in _split_top_level(args_text):
        if not part:
            continue
        if part == "*":
            kwarg_only = True
            continue
        args.append(_parse_arg(part, kwarg_only))

    return OperatorSchema(
        namespace=namespace,
        name=name,
        overload=overload,
        args=tuple(args),
        returns=returns,
    )
