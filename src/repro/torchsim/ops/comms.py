"""Communication operators (the c10d collective library).

Distributed training synchronises gradients and exchanges embeddings with
collective operators; the paper's replay needs their process group, message
size, dtype and blocking/async mode (Section 4.3.2).  Every collective here

* looks up its process group in the runtime's distributed context,
* computes its duration with the interconnect cost model,
* launches a NCCL-style kernel on the communication stream, and
* either blocks the issuing CPU thread (synchronous mode) or returns a
  :class:`~repro.torchsim.distributed.Work` handle (asynchronous mode).

Single-process runs (no distributed context) degrade gracefully: the
collective becomes a cheap local no-op kernel, which mirrors how c10d
behaves with a world size of one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.torchsim.kernel import KernelDesc, KernelKind, OpCategory
from repro.torchsim.ops.registry import register_op
from repro.torchsim.stream import COMM_STREAM
from repro.torchsim.tensor import Tensor


def _collective(
    ctx,
    op_name: str,
    kernel_name: str,
    tensors: Sequence[Tensor],
    pg: Optional[dict],
    async_op: bool,
):
    """Shared implementation of the collective operators."""
    total_bytes = float(sum(t.nbytes for t in tensors))
    dist = ctx.dist
    # NCCL kernels run on their own stream by default, but an explicit
    # stream scope (set by the replayer from the profiler trace) wins.
    stream_id = ctx.current_stream if ctx.runtime.stream_override_active else COMM_STREAM
    # The collective reads tensors produced by compute kernels, so it cannot
    # start before the compute stream has drained the work enqueued so far
    # (it still overlaps with compute enqueued *after* it — that is what
    # hides communication behind backward computation in DDP).
    start_not_before = ctx.compute_stream_ready()
    if dist is None or dist.world_size <= 1:
        world_size = 1
        duration = None  # local no-op, let the cost model price the memcpy
    else:
        group = dist.group_for_description(pg) if pg else dist.default_group
        world_size = group.size
        if world_size <= 1:
            # A group folded down to a single rank (e.g. by the replay-side
            # rank remapping) has nothing to exchange: price it as a local
            # no-op memcpy, not an alpha-beta collective.
            duration = None
        elif dist.rendezvous is not None:
            # Multi-rank co-replay: match this collective with the other
            # participating ranks and let the shared virtual-time scheduler
            # pick one start time and one duration for all of them.
            arrival = max(
                ctx.runtime.now(),
                start_not_before,
                ctx.runtime.gpu.stream_ready_time(stream_id),
            )
            start, duration = dist.rendezvous.sync(
                rank=dist.rank,
                op=op_name,
                group_ranks=group.ranks,
                bytes_per_rank=total_bytes,
                arrival_us=arrival,
            )
            start_not_before = max(start_not_before, start)
        else:
            duration = dist.collective_model.collective_us(op_name, total_bytes, world_size)

    desc = KernelDesc(
        name=kernel_name,
        kind=KernelKind.COLLECTIVE,
        bytes_read=total_bytes,
        bytes_written=total_bytes,
        occupancy=0.15,
        locality=0.9,
        comm_bytes=total_bytes,
        metadata={
            "world_size": world_size,
            "dtype": tensors[0].dtype.type_name if tensors else "float32",
        },
    )
    launch = ctx.launch(
        desc,
        stream_id=stream_id,
        duration_us=duration,
        blocking=not async_op,
        start_not_before=start_not_before,
    )
    if async_op:
        return ctx.async_work(launch)
    return None


@register_op(
    "c10d::all_reduce(Tensor[] tensors, str reduce_op=\"sum\", Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_all_reduce(ctx, tensors: Sequence[Tensor], reduce_op: str = "sum", pg=None, async_op: bool = False):
    work = _collective(ctx, "all_reduce", "ncclKernel_AllReduce_RING_LL_Sum", tensors, pg, async_op)
    return work if async_op else list(tensors)


@register_op(
    "c10d::all_to_all(Tensor[] output_tensors, Tensor[] input_tensors, Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_all_to_all(ctx, output_tensors: Sequence[Tensor], input_tensors: Sequence[Tensor], pg=None, async_op: bool = False):
    work = _collective(ctx, "all_to_all", "ncclKernel_AllToAll_RING_LL", input_tensors, pg, async_op)
    return work if async_op else list(output_tensors)


@register_op(
    "c10d::all_gather(Tensor[] output_tensors, Tensor[] input_tensors, Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_all_gather(ctx, output_tensors: Sequence[Tensor], input_tensors: Sequence[Tensor], pg=None, async_op: bool = False):
    work = _collective(ctx, "all_gather", "ncclKernel_AllGather_RING_LL", input_tensors, pg, async_op)
    return work if async_op else list(output_tensors)


@register_op(
    "c10d::reduce_scatter(Tensor[] output_tensors, Tensor[] input_tensors, str reduce_op=\"sum\", Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_reduce_scatter(ctx, output_tensors: Sequence[Tensor], input_tensors: Sequence[Tensor], reduce_op: str = "sum", pg=None, async_op: bool = False):
    work = _collective(ctx, "reduce_scatter", "ncclKernel_ReduceScatter_RING_LL_Sum", input_tensors, pg, async_op)
    return work if async_op else list(output_tensors)


@register_op(
    "c10d::broadcast(Tensor[] tensors, int src=0, Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_broadcast(ctx, tensors: Sequence[Tensor], src: int = 0, pg=None, async_op: bool = False):
    work = _collective(ctx, "broadcast", "ncclKernel_Broadcast_RING_LL", tensors, pg, async_op)
    return work if async_op else list(tensors)


@register_op(
    "c10d::barrier(Dict pg=None, bool async_op=False) -> Tensor",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_barrier(ctx, pg=None, async_op: bool = False):
    dist = ctx.dist
    start_not_before = None
    if dist is None or dist.world_size <= 1:
        duration = 2.0
        world_size = 1
    else:
        group = dist.group_for_description(pg) if pg else dist.default_group
        world_size = group.size
        if world_size <= 1:
            duration = 2.0
        elif dist.rendezvous is not None:
            arrival = max(ctx.runtime.now(), ctx.runtime.gpu.stream_ready_time(COMM_STREAM))
            start, duration = dist.rendezvous.sync(
                rank=dist.rank,
                op="barrier",
                group_ranks=group.ranks,
                bytes_per_rank=0.0,
                arrival_us=arrival,
            )
            start_not_before = start
        else:
            duration = dist.collective_model.barrier_us(world_size)
    desc = KernelDesc(
        name="ncclKernel_Barrier",
        kind=KernelKind.COLLECTIVE,
        occupancy=0.05,
        metadata={"world_size": world_size},
    )
    launch = ctx.launch(
        desc,
        stream_id=COMM_STREAM,
        duration_us=duration,
        blocking=not async_op,
        start_not_before=start_not_before,
    )
    if async_op:
        return ctx.async_work(launch)
    return None


@register_op(
    "c10d::send(Tensor[] tensors, int dst, Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_send(ctx, tensors: Sequence[Tensor], dst: int, pg=None, async_op: bool = False):
    work = _collective(ctx, "send", "ncclKernel_SendRecv", tensors, pg, async_op)
    return work if async_op else list(tensors)


@register_op(
    "c10d::recv(Tensor[] tensors, int src, Dict pg=None, bool async_op=False) -> Tensor[]",
    category=OpCategory.COMM,
    library="c10d",
)
def c10d_recv(ctx, tensors: Sequence[Tensor], src: int, pg=None, async_op: bool = False):
    work = _collective(ctx, "recv", "ncclKernel_SendRecv", tensors, pg, async_op)
    return work if async_op else list(tensors)
