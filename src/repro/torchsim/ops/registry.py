"""The operator registry.

Every operator the simulated framework can execute is described by an
:class:`OperatorDef`: its schema, its category (ATen / communication /
fused / custom — Section 3.3 of the paper) and a Python implementation.

Implementations receive an :class:`~repro.torchsim.runtime.OpContext` as
their first argument and may either launch simulated kernels directly
("leaf" operators such as ``aten::addmm``) or invoke other operators through
the context ("composite" operators such as ``aten::linear``), which is what
produces the parent/child nesting captured in execution traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.torchsim.kernel import OpCategory
from repro.torchsim.ops.schema import OperatorSchema, parse_schema


@dataclass
class OperatorDef:
    """A registered operator."""

    name: str
    schema_str: str
    category: OpCategory
    fn: Callable
    schema: Optional[OperatorSchema] = None
    #: Library the operator comes from (``"aten"``, ``"c10d"``, ``"fbgemm"``,
    #: ``"fairseq"`` ...).  Used by the replay-support policy to decide which
    #: custom operators are available out of the box.
    library: str = ""

    def __post_init__(self) -> None:
        if self.schema is None and self.schema_str:
            self.schema = parse_schema(self.schema_str)
        if not self.library:
            self.library = self.name.split("::")[0]


class OperatorRegistry:
    """Name → :class:`OperatorDef` mapping with category queries."""

    def __init__(self) -> None:
        self._ops: Dict[str, OperatorDef] = {}

    # ------------------------------------------------------------------
    def register(self, op_def: OperatorDef, overwrite: bool = False) -> OperatorDef:
        if not overwrite and op_def.name in self._ops:
            raise ValueError(f"operator already registered: {op_def.name}")
        self._ops[op_def.name] = op_def
        return op_def

    def get(self, name: str) -> OperatorDef:
        if name not in self._ops:
            raise KeyError(f"unknown operator: {name}")
        return self._ops[name]

    def has(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> List[str]:
        return sorted(self._ops)

    def by_category(self, category: OpCategory) -> List[OperatorDef]:
        return [op for op in self._ops.values() if op.category == category]

    def by_library(self, library: str) -> List[OperatorDef]:
        return [op for op in self._ops.values() if op.library == library]

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterable[OperatorDef]:
        return iter(self._ops.values())


#: The process-wide registry; importing :mod:`repro.torchsim.ops` fills it
#: with the built-in operator library.
global_registry = OperatorRegistry()


def register_op(
    schema: str,
    category: OpCategory = OpCategory.ATEN,
    library: str = "",
    registry: Optional[OperatorRegistry] = None,
    overwrite: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator that registers an operator implementation.

    Example::

        @register_op("aten::relu(Tensor self) -> Tensor")
        def relu(ctx, self):
            ...
    """
    target = registry if registry is not None else global_registry
    parsed = parse_schema(schema)

    def decorator(fn: Callable) -> Callable:
        op_def = OperatorDef(
            name=parsed.qualified_name,
            schema_str=schema,
            category=category,
            fn=fn,
            schema=parsed,
            library=library,
        )
        target.register(op_def, overwrite=overwrite)
        return fn

    return decorator
