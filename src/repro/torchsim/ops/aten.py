"""ATen-style compute operators.

ATen is PyTorch's low-level tensor library and default compute backend; in
the paper's production traces ATen operators dominate count, CPU time and
GPU time (Figure 2).  This module registers the ATen operators used by the
four evaluated workloads (PARAM linear, ResNet, ASR, RM), both forward and
backward, plus the optimizer update operators.

Each operator either launches one or more simulated kernels (leaf operators)
or calls other operators (composite operators such as ``aten::linear``,
which calls ``aten::t`` and ``aten::addmm`` exactly as the real ATen does —
that nesting is what the operator-selection step of Mystique deduplicates).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.torchsim.dtypes import DType
from repro.torchsim.kernel import KernelDesc, KernelKind, OpCategory
from repro.torchsim.ops.registry import register_op
from repro.torchsim.tensor import Tensor


# ----------------------------------------------------------------------
# Kernel-descriptor helpers
# ----------------------------------------------------------------------
def _occupancy(ctx, parallel_work: float) -> float:
    """Fraction of SMs a kernel with ``parallel_work`` threads keeps busy."""
    capacity = ctx.spec.num_sms * 2048.0
    return max(0.05, min(1.0, parallel_work / capacity))


def _dtype_meta(tensor: Tensor) -> dict:
    return {"dtype": tensor.dtype.type_name}


def gemm_desc(ctx, name: str, m: int, n: int, k: int, dtype: DType) -> KernelDesc:
    """Descriptor for an (m x k) @ (k x n) GEMM."""
    itemsize = dtype.itemsize
    flops = 2.0 * m * n * k
    bytes_total = (m * k + k * n + m * n) * itemsize
    return KernelDesc(
        name=name,
        kind=KernelKind.GEMM,
        flops=flops,
        bytes_read=(m * k + k * n) * itemsize,
        bytes_written=m * n * itemsize,
        occupancy=_occupancy(ctx, m * n),
        locality=0.85,
        metadata={"m": m, "n": n, "k": k, "dtype": dtype.type_name},
    )


def elementwise_desc(
    ctx,
    name: str,
    numel: int,
    itemsize: int,
    flops_per_element: float = 1.0,
    tensors_read: int = 1,
    tensors_written: int = 1,
    locality: float = 0.75,
    kind: KernelKind = KernelKind.ELEMENTWISE,
    dtype_name: str = "float32",
) -> KernelDesc:
    return KernelDesc(
        name=name,
        kind=kind,
        flops=numel * flops_per_element,
        bytes_read=numel * itemsize * tensors_read,
        bytes_written=numel * itemsize * tensors_written,
        occupancy=_occupancy(ctx, numel),
        locality=locality,
        metadata={"numel": numel, "dtype": dtype_name},
    )


def conv_output_shape(
    in_shape: Sequence[int],
    out_channels: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int, int, int]:
    batch, _, height, width = in_shape
    out_h = (height + 2 * padding[0] - kernel[0]) // stride[0] + 1
    out_w = (width + 2 * padding[1] - kernel[1]) // stride[1] + 1
    return (batch, out_channels, out_h, out_w)


def conv_desc(
    ctx,
    name: str,
    in_tensor: Tensor,
    weight: Tensor,
    out_shape: Sequence[int],
    groups: int = 1,
) -> KernelDesc:
    batch, out_channels, out_h, out_w = out_shape
    _, in_channels, k_h, k_w = weight.shape
    itemsize = in_tensor.dtype.itemsize
    flops = 2.0 * batch * out_channels * out_h * out_w * in_channels * k_h * k_w / max(1, groups)
    bytes_read = (in_tensor.numel + weight.numel) * itemsize
    bytes_written = batch * out_channels * out_h * out_w * itemsize
    return KernelDesc(
        name=name,
        kind=KernelKind.CONV,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        occupancy=_occupancy(ctx, batch * out_channels * out_h * out_w),
        locality=0.8,
        metadata={"dtype": in_tensor.dtype.type_name},
    )


def _like(tensor: Tensor, shape: Optional[Sequence[int]] = None) -> Tensor:
    return Tensor.empty(
        shape if shape is not None else tensor.shape,
        dtype=tensor.dtype,
        device=tensor.device,
    )


# ----------------------------------------------------------------------
# View / reshape operators (no kernels)
# ----------------------------------------------------------------------
@register_op("aten::t(Tensor self) -> Tensor")
def aten_t(ctx, self: Tensor) -> Tensor:
    # aten::t calls aten::transpose, which calls aten::as_strided — exactly
    # the nesting shown in Figure 1 of the paper.
    return ctx.call("aten::transpose", self, 0, 1)


@register_op("aten::transpose.int(Tensor self, int dim0, int dim1) -> Tensor")
def aten_transpose(ctx, self: Tensor, dim0: int, dim1: int) -> Tensor:
    return ctx.call("aten::as_strided", self, _transposed_shape(self.shape, dim0, dim1))


@register_op("aten::as_strided(Tensor self, int[] size) -> Tensor")
def aten_as_strided(ctx, self: Tensor, size: Sequence[int]) -> Tensor:
    out = self.view_as_new_tensor()
    out.shape = tuple(int(dim) for dim in size)
    return out


def _transposed_shape(shape: Sequence[int], dim0: int, dim1: int) -> List[int]:
    shape = list(shape)
    if len(shape) >= 2:
        shape[dim0], shape[dim1] = shape[dim1], shape[dim0]
    return shape


@register_op("aten::view(Tensor self, int[] size) -> Tensor")
def aten_view(ctx, self: Tensor, size: Sequence[int]) -> Tensor:
    resolved = _resolve_view_shape(self.numel, size)
    out = self.view_as_new_tensor()
    out.shape = resolved
    return out


@register_op("aten::reshape(Tensor self, int[] shape) -> Tensor")
def aten_reshape(ctx, self: Tensor, shape: Sequence[int]) -> Tensor:
    return ctx.call("aten::view", self, list(shape))


@register_op("aten::flatten.using_ints(Tensor self, int start_dim=0, int end_dim=-1) -> Tensor")
def aten_flatten(ctx, self: Tensor, start_dim: int = 0, end_dim: int = -1) -> Tensor:
    shape = list(self.shape)
    if end_dim < 0:
        end_dim = len(shape) + end_dim
    flattened = int(np.prod(shape[start_dim:end_dim + 1])) if shape else 1
    new_shape = shape[:start_dim] + [flattened] + shape[end_dim + 1:]
    return ctx.call("aten::view", self, new_shape)


def _resolve_view_shape(numel: int, size: Sequence[int]) -> Tuple[int, ...]:
    size = [int(dim) for dim in size]
    if -1 in size:
        known = int(np.prod([dim for dim in size if dim != -1])) or 1
        size[size.index(-1)] = numel // known
    return tuple(size)


# ----------------------------------------------------------------------
# Dense linear algebra
# ----------------------------------------------------------------------
@register_op("aten::addmm(Tensor self, Tensor mat1, Tensor mat2, *, Scalar beta=1, Scalar alpha=1) -> Tensor")
def aten_addmm(ctx, bias: Tensor, mat1: Tensor, mat2: Tensor, beta: float = 1, alpha: float = 1) -> Tensor:
    m, k = mat1.shape[-2], mat1.shape[-1]
    n = mat2.shape[-1]
    ctx.launch(gemm_desc(ctx, "ampere_sgemm_128x64_tn", m, n, k, mat1.dtype))
    return Tensor.empty((m, n), dtype=mat1.dtype, device=mat1.device)


@register_op("aten::mm(Tensor self, Tensor mat2) -> Tensor")
def aten_mm(ctx, self: Tensor, mat2: Tensor) -> Tensor:
    m, k = self.shape[-2], self.shape[-1]
    n = mat2.shape[-1]
    ctx.launch(gemm_desc(ctx, "ampere_sgemm_64x64_nn", m, n, k, self.dtype))
    return Tensor.empty((m, n), dtype=self.dtype, device=self.device)


@register_op("aten::bmm(Tensor self, Tensor mat2) -> Tensor")
def aten_bmm(ctx, self: Tensor, mat2: Tensor) -> Tensor:
    batch, m, k = self.shape
    n = mat2.shape[-1]
    desc = gemm_desc(ctx, "ampere_bmm_64x64_nn", m, n, k, self.dtype)
    desc.flops *= batch
    desc.bytes_read *= batch
    desc.bytes_written *= batch
    desc.occupancy = _occupancy(ctx, batch * m * n)
    ctx.launch(desc)
    return Tensor.empty((batch, m, n), dtype=self.dtype, device=self.device)


@register_op("aten::matmul(Tensor self, Tensor other) -> Tensor")
def aten_matmul(ctx, self: Tensor, other: Tensor) -> Tensor:
    if self.ndim == 2 and other.ndim == 2:
        return ctx.call("aten::mm", self, other)
    if self.ndim == 3 and other.ndim == 3:
        return ctx.call("aten::bmm", self, other)
    # Fall back to a flattened 2D product for other rank combinations.
    lead = int(np.prod(self.shape[:-1]))
    reshaped = ctx.call("aten::view", self, [lead, self.shape[-1]])
    out = ctx.call("aten::mm", reshaped, other)
    return ctx.call("aten::view", out, list(self.shape[:-1]) + [other.shape[-1]])


@register_op("aten::linear(Tensor input, Tensor weight, Tensor? bias=None) -> Tensor")
def aten_linear(ctx, input: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    # aten::linear includes aten::t and aten::addmm as children — the
    # redundancy example of Section 4.2.
    weight_t = ctx.call("aten::t", weight)
    if input.ndim > 2:
        lead = int(np.prod(input.shape[:-1]))
        flat = ctx.call("aten::view", input, [lead, input.shape[-1]])
        out = ctx.call("aten::addmm", bias if bias is not None else flat, flat, weight_t)
        return ctx.call("aten::view", out, list(input.shape[:-1]) + [weight.shape[0]])
    return ctx.call("aten::addmm", bias if bias is not None else input, input, weight_t)


# ----------------------------------------------------------------------
# Elementwise / activation operators
# ----------------------------------------------------------------------
def _binary_elementwise(ctx, name: str, self: Tensor, other) -> Tensor:
    numel = self.numel
    reads = 2 if isinstance(other, Tensor) else 1
    ctx.launch(
        elementwise_desc(
            ctx,
            f"vectorized_elementwise_{name}",
            numel,
            self.dtype.itemsize,
            flops_per_element=1.0,
            tensors_read=reads,
            dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor")
def aten_add(ctx, self: Tensor, other, alpha: float = 1) -> Tensor:
    return _binary_elementwise(ctx, "add", self, other)


@register_op("aten::add_.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor")
def aten_add_(ctx, self: Tensor, other, alpha: float = 1) -> Tensor:
    _binary_elementwise(ctx, "add_", self, other)
    return self


@register_op("aten::mul.Tensor(Tensor self, Tensor other) -> Tensor")
def aten_mul(ctx, self: Tensor, other) -> Tensor:
    return _binary_elementwise(ctx, "mul", self, other)


@register_op("aten::mul_.Tensor(Tensor self, Tensor other) -> Tensor")
def aten_mul_(ctx, self: Tensor, other) -> Tensor:
    _binary_elementwise(ctx, "mul_", self, other)
    return self


@register_op("aten::div.Tensor(Tensor self, Tensor other) -> Tensor")
def aten_div(ctx, self: Tensor, other) -> Tensor:
    return _binary_elementwise(ctx, "div", self, other)


@register_op("aten::relu(Tensor self) -> Tensor")
def aten_relu(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "vectorized_elementwise_relu", self.numel, self.dtype.itemsize,
            dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::relu_(Tensor self) -> Tensor")
def aten_relu_(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "vectorized_elementwise_relu_", self.numel, self.dtype.itemsize,
            dtype_name=self.dtype.type_name,
        )
    )
    return self


@register_op("aten::threshold_backward(Tensor grad_output, Tensor self, Scalar threshold) -> Tensor")
def aten_threshold_backward(ctx, grad_output: Tensor, self: Tensor, threshold: float = 0) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "vectorized_threshold_backward", self.numel, self.dtype.itemsize,
            tensors_read=2, dtype_name=self.dtype.type_name,
        )
    )
    return _like(grad_output)


@register_op("aten::sigmoid(Tensor self) -> Tensor")
def aten_sigmoid(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "vectorized_sigmoid", self.numel, self.dtype.itemsize,
            flops_per_element=4.0, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::tanh(Tensor self) -> Tensor")
def aten_tanh(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "vectorized_tanh", self.numel, self.dtype.itemsize,
            flops_per_element=4.0, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::dropout(Tensor input, float p, bool train) -> Tensor")
def aten_dropout(ctx, input: Tensor, p: float, train: bool) -> Tensor:
    if not train or p <= 0:
        return input
    ctx.launch(
        elementwise_desc(
            ctx, "fused_dropout", input.numel, input.dtype.itemsize,
            flops_per_element=2.0, tensors_written=2, dtype_name=input.dtype.type_name,
        )
    )
    return _like(input)


# ----------------------------------------------------------------------
# Reductions and losses
# ----------------------------------------------------------------------
@register_op("aten::sum(Tensor self) -> Tensor")
def aten_sum(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "reduce_sum_kernel", self.numel, self.dtype.itemsize,
            tensors_written=0, kind=KernelKind.REDUCTION, dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty((), dtype=self.dtype, device=self.device)


@register_op("aten::mean(Tensor self) -> Tensor")
def aten_mean(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "reduce_mean_kernel", self.numel, self.dtype.itemsize,
            tensors_written=0, kind=KernelKind.REDUCTION, dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty((), dtype=self.dtype, device=self.device)


@register_op("aten::_softmax(Tensor self, int dim, bool half_to_float) -> Tensor")
def aten_softmax(ctx, self: Tensor, dim: int, half_to_float: bool = False) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "softmax_warp_forward", self.numel, self.dtype.itemsize,
            flops_per_element=5.0, kind=KernelKind.NORMALIZATION,
            dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::_log_softmax(Tensor self, int dim, bool half_to_float) -> Tensor")
def aten_log_softmax(ctx, self: Tensor, dim: int, half_to_float: bool = False) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "log_softmax_warp_forward", self.numel, self.dtype.itemsize,
            flops_per_element=5.0, kind=KernelKind.NORMALIZATION,
            dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::_log_softmax_backward_data(Tensor grad_output, Tensor output, int dim, ScalarType input_dtype) -> Tensor")
def aten_log_softmax_backward(ctx, grad_output: Tensor, output: Tensor, dim: int, input_dtype: str = "float32") -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "log_softmax_backward", output.numel, output.dtype.itemsize,
            flops_per_element=3.0, tensors_read=2, kind=KernelKind.NORMALIZATION,
            dtype_name=output.dtype.type_name,
        )
    )
    return _like(output)


@register_op("aten::nll_loss(Tensor self, Tensor target, Tensor? weight=None, int reduction=1, int ignore_index=-100) -> Tensor")
def aten_nll_loss(ctx, self: Tensor, target: Tensor, weight=None, reduction: int = 1, ignore_index: int = -100) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "nll_loss_forward", self.shape[0], self.dtype.itemsize,
            tensors_written=0, kind=KernelKind.REDUCTION, locality=0.4,
            dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty((), dtype=self.dtype, device=self.device)


@register_op("aten::nll_loss_backward(Tensor grad_output, Tensor self, Tensor target, Tensor? weight, int reduction, int ignore_index, Tensor total_weight) -> Tensor")
def aten_nll_loss_backward(ctx, grad_output: Tensor, self: Tensor, target: Tensor, weight, reduction: int, ignore_index: int, total_weight: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "nll_loss_backward", self.numel, self.dtype.itemsize,
            locality=0.4, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::cross_entropy_loss(Tensor self, Tensor target, Tensor? weight=None, int reduction=1, int ignore_index=-100, float label_smoothing=0.0) -> Tensor")
def aten_cross_entropy(ctx, self: Tensor, target: Tensor, weight=None, reduction: int = 1, ignore_index: int = -100, label_smoothing: float = 0.0) -> Tensor:
    log_probs = ctx.call("aten::_log_softmax", self, -1, False)
    return ctx.call("aten::nll_loss", log_probs, target, None, reduction, ignore_index)


@register_op("aten::mse_loss(Tensor self, Tensor target, int reduction=1) -> Tensor")
def aten_mse_loss(ctx, self: Tensor, target: Tensor, reduction: int = 1) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "mse_loss_forward", self.numel, self.dtype.itemsize,
            flops_per_element=3.0, tensors_read=2, tensors_written=0,
            kind=KernelKind.REDUCTION, dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty((), dtype=self.dtype, device=self.device)


@register_op("aten::mse_loss_backward(Tensor grad_output, Tensor self, Tensor target, int reduction) -> Tensor")
def aten_mse_loss_backward(ctx, grad_output: Tensor, self: Tensor, target: Tensor, reduction: int = 1) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "mse_loss_backward", self.numel, self.dtype.itemsize,
            flops_per_element=2.0, tensors_read=2, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::binary_cross_entropy_with_logits(Tensor self, Tensor target, Tensor? weight=None, Tensor? pos_weight=None, int reduction=1) -> Tensor")
def aten_bce_with_logits(ctx, self: Tensor, target: Tensor, weight=None, pos_weight=None, reduction: int = 1) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "bce_with_logits_forward", self.numel, self.dtype.itemsize,
            flops_per_element=6.0, tensors_read=2, tensors_written=0,
            kind=KernelKind.REDUCTION, dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty((), dtype=self.dtype, device=self.device)


@register_op("aten::binary_cross_entropy_with_logits_backward(Tensor grad_output, Tensor self, Tensor target, Tensor? weight=None, Tensor? pos_weight=None, int reduction=1) -> Tensor")
def aten_bce_with_logits_backward(ctx, grad_output: Tensor, self: Tensor, target: Tensor, weight=None, pos_weight=None, reduction: int = 1) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "bce_with_logits_backward", self.numel, self.dtype.itemsize,
            flops_per_element=4.0, tensors_read=2, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


# ----------------------------------------------------------------------
# Convolutions, pooling, normalisation
# ----------------------------------------------------------------------
@register_op("aten::conv2d(Tensor input, Tensor weight, Tensor? bias=None, int[2] stride=1, int[2] padding=0, int[2] dilation=1, int groups=1) -> Tensor")
def aten_conv2d(ctx, input: Tensor, weight: Tensor, bias=None, stride=(1, 1), padding=(0, 0), dilation=(1, 1), groups: int = 1) -> Tensor:
    return ctx.call("aten::convolution", input, weight, bias, list(stride), list(padding), list(dilation), groups)


@register_op("aten::convolution(Tensor input, Tensor weight, Tensor? bias, int[] stride, int[] padding, int[] dilation, int groups) -> Tensor")
def aten_convolution(ctx, input: Tensor, weight: Tensor, bias, stride, padding, dilation, groups: int = 1) -> Tensor:
    stride = _pair(stride)
    padding = _pair(padding)
    out_shape = conv_output_shape(input.shape, weight.shape[0], (weight.shape[2], weight.shape[3]), stride, padding)
    ctx.launch(conv_desc(ctx, "implicit_convolve_sgemm", input, weight, out_shape, groups))
    if bias is not None:
        ctx.launch(
            elementwise_desc(
                ctx, "conv_bias_add", int(np.prod(out_shape)), input.dtype.itemsize,
                dtype_name=input.dtype.type_name,
            )
        )
    return Tensor.empty(out_shape, dtype=input.dtype, device=input.device)


@register_op("aten::convolution_backward(Tensor grad_output, Tensor input, Tensor weight, int[] stride, int[] padding, int groups) -> (Tensor, Tensor, Tensor)")
def aten_convolution_backward(ctx, grad_output: Tensor, input: Tensor, weight: Tensor, stride, padding, groups: int = 1):
    # Backward data + backward filter are each roughly as expensive as the
    # forward convolution.
    forward_like = conv_desc(ctx, "convolve_backward_data", input, weight, grad_output.shape, groups)
    ctx.launch(forward_like)
    filter_desc = conv_desc(ctx, "convolve_backward_filter", input, weight, grad_output.shape, groups)
    ctx.launch(filter_desc)
    ctx.launch(
        elementwise_desc(
            ctx, "conv_backward_bias_reduce", grad_output.numel, grad_output.dtype.itemsize,
            tensors_written=0, kind=KernelKind.REDUCTION, dtype_name=grad_output.dtype.type_name,
        )
    )
    grad_input = _like(input)
    grad_weight = _like(weight)
    grad_bias = Tensor.empty((weight.shape[0],), dtype=weight.dtype, device=weight.device)
    return grad_input, grad_weight, grad_bias


@register_op("aten::batch_norm(Tensor input, Tensor? weight, Tensor? bias, Tensor? running_mean, Tensor? running_var, bool training, float momentum, float eps, bool cudnn_enabled) -> Tensor")
def aten_batch_norm(ctx, input: Tensor, weight, bias, running_mean, running_var, training: bool = True, momentum: float = 0.1, eps: float = 1e-5, cudnn_enabled: bool = True) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "batch_norm_collect_statistics", input.numel, input.dtype.itemsize,
            flops_per_element=4.0, tensors_read=1, tensors_written=1,
            kind=KernelKind.NORMALIZATION, dtype_name=input.dtype.type_name,
        )
    )
    return _like(input)


@register_op("aten::native_batch_norm_backward(Tensor grad_out, Tensor input, Tensor? weight, Tensor? running_mean, Tensor? running_var, Tensor? save_mean, Tensor? save_invstd, bool train, float eps) -> (Tensor, Tensor, Tensor)")
def aten_batch_norm_backward(ctx, grad_out: Tensor, input: Tensor, weight, running_mean, running_var, save_mean, save_invstd, train: bool = True, eps: float = 1e-5):
    ctx.launch(
        elementwise_desc(
            ctx, "batch_norm_backward_reduce", input.numel, input.dtype.itemsize,
            flops_per_element=6.0, tensors_read=2, tensors_written=1,
            kind=KernelKind.NORMALIZATION, dtype_name=input.dtype.type_name,
        )
    )
    grad_input = _like(input)
    channels = input.shape[1] if input.ndim > 1 else input.shape[0]
    grad_weight = Tensor.empty((channels,), dtype=input.dtype, device=input.device)
    grad_bias = Tensor.empty((channels,), dtype=input.dtype, device=input.device)
    return grad_input, grad_weight, grad_bias


@register_op("aten::layer_norm(Tensor input, int[] normalized_shape, Tensor? weight=None, Tensor? bias=None, float eps=1e-05) -> Tensor")
def aten_layer_norm(ctx, input: Tensor, normalized_shape, weight=None, bias=None, eps: float = 1e-5) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "layer_norm_forward", input.numel, input.dtype.itemsize,
            flops_per_element=5.0, kind=KernelKind.NORMALIZATION,
            dtype_name=input.dtype.type_name,
        )
    )
    return _like(input)


@register_op("aten::max_pool2d(Tensor self, int[2] kernel_size, int[2] stride=1, int[2] padding=0, int[2] dilation=1, bool ceil_mode=False) -> Tensor")
def aten_max_pool2d(ctx, self: Tensor, kernel_size, stride=(1, 1), padding=(0, 0), dilation=(1, 1), ceil_mode: bool = False) -> Tensor:
    kernel_size = _pair(kernel_size)
    stride = _pair(stride)
    padding = _pair(padding)
    out_shape = conv_output_shape(self.shape, self.shape[1], kernel_size, stride, padding)
    ctx.launch(
        elementwise_desc(
            ctx, "max_pool_forward_nchw", self.numel, self.dtype.itemsize,
            kind=KernelKind.POOLING, dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty(out_shape, dtype=self.dtype, device=self.device)


@register_op("aten::max_pool2d_with_indices_backward(Tensor grad_output, Tensor self, int[2] kernel_size, int[2] stride, int[2] padding) -> Tensor")
def aten_max_pool2d_backward(ctx, grad_output: Tensor, self: Tensor, kernel_size, stride, padding) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "max_pool_backward_nchw", self.numel, self.dtype.itemsize,
            tensors_read=2, kind=KernelKind.POOLING, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


@register_op("aten::adaptive_avg_pool2d(Tensor self, int[2] output_size) -> Tensor")
def aten_adaptive_avg_pool2d(ctx, self: Tensor, output_size) -> Tensor:
    output_size = _pair(output_size)
    out_shape = (self.shape[0], self.shape[1], output_size[0], output_size[1])
    ctx.launch(
        elementwise_desc(
            ctx, "adaptive_avg_pool2d_kernel", self.numel, self.dtype.itemsize,
            kind=KernelKind.POOLING, dtype_name=self.dtype.type_name,
        )
    )
    return Tensor.empty(out_shape, dtype=self.dtype, device=self.device)


@register_op("aten::adaptive_avg_pool2d_backward(Tensor grad_output, Tensor self) -> Tensor")
def aten_adaptive_avg_pool2d_backward(ctx, grad_output: Tensor, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "adaptive_avg_pool2d_backward_kernel", self.numel, self.dtype.itemsize,
            kind=KernelKind.POOLING, dtype_name=self.dtype.type_name,
        )
    )
    return _like(self)


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (list, tuple)):
        if len(value) == 1:
            return (int(value[0]), int(value[0]))
        return (int(value[0]), int(value[1]))
    return (int(value), int(value))


# ----------------------------------------------------------------------
# Concatenation / splitting / copies
# ----------------------------------------------------------------------
@register_op("aten::cat(Tensor[] tensors, int dim=0) -> Tensor")
def aten_cat(ctx, tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    total = sum(t.numel for t in tensors)
    itemsize = tensors[0].dtype.itemsize
    ctx.launch(
        elementwise_desc(
            ctx, "cat_array_batched_copy", total, itemsize,
            flops_per_element=0.0, dtype_name=tensors[0].dtype.type_name,
        )
    )
    out_shape = list(tensors[0].shape)
    out_shape[dim] = sum(t.shape[dim] for t in tensors)
    return Tensor.empty(tuple(out_shape), dtype=tensors[0].dtype, device=tensors[0].device)


@register_op("aten::split.Tensor(Tensor self, int split_size, int dim=0) -> Tensor[]")
def aten_split(ctx, self: Tensor, split_size: int, dim: int = 0) -> List[Tensor]:
    ctx.launch(
        elementwise_desc(
            ctx, "split_copy_kernel", self.numel, self.dtype.itemsize,
            flops_per_element=0.0, dtype_name=self.dtype.type_name,
        )
    )
    count = max(1, self.shape[dim] // split_size)
    shape = list(self.shape)
    shape[dim] = split_size
    return [Tensor.empty(tuple(shape), dtype=self.dtype, device=self.device) for _ in range(count)]


@register_op("aten::copy_(Tensor self, Tensor src, bool non_blocking=False) -> Tensor")
def aten_copy_(ctx, self: Tensor, src: Tensor, non_blocking: bool = False) -> Tensor:
    ctx.launch(
        KernelDesc(
            name="Memcpy DtoD",
            kind=KernelKind.MEMCPY,
            bytes_read=src.nbytes,
            bytes_written=self.nbytes,
            occupancy=0.3,
            locality=0.9,
            metadata={"dtype": self.dtype.type_name},
        )
    )
    return self


@register_op("aten::to.device(Tensor self, Device device, ScalarType dtype, bool non_blocking=False, bool copy=False) -> Tensor")
def aten_to_device(ctx, self: Tensor, device, dtype, non_blocking: bool = False, copy: bool = False) -> Tensor:
    from repro.torchsim.device import Device as _Device
    from repro.torchsim.stream import MEMCPY_STREAM

    ctx.launch(
        KernelDesc(
            name="Memcpy HtoD",
            kind=KernelKind.MEMCPY,
            bytes_read=self.nbytes,
            bytes_written=self.nbytes,
            occupancy=0.2,
            locality=0.95,
            metadata={"dtype": self.dtype.type_name},
        ),
        stream_id=MEMCPY_STREAM,
    )
    target = _Device.parse(device) if isinstance(device, str) else device
    return Tensor.empty(self.shape, dtype=self.dtype, device=target)


# ----------------------------------------------------------------------
# Embedding lookups (the value-sensitive case of Section 4.4)
# ----------------------------------------------------------------------
def _embedding_locality(indices: Tensor, num_rows: int) -> float:
    """Estimate cache friendliness of an embedding lookup.

    When the indices payload is available (original run), locality is
    computed from how concentrated the accesses are; when it is not (replay
    with random values), a uniform-access default is used — this is exactly
    the approximation the paper calls out for embedding-table lookups.
    """
    if indices.data is None or indices.data.size == 0 or num_rows <= 0:
        return 0.35
    unique = len(np.unique(indices.data))
    reuse = 1.0 - unique / max(1, indices.data.size)
    coverage = 1.0 - min(1.0, unique / max(1, num_rows))
    return float(min(0.95, 0.25 + 0.5 * reuse + 0.2 * coverage))


@register_op("aten::embedding_bag(Tensor weight, Tensor indices, Tensor offsets, bool scale_grad_by_freq=False, int mode=0, bool sparse=False) -> Tensor")
def aten_embedding_bag(ctx, weight: Tensor, indices: Tensor, offsets: Tensor, scale_grad_by_freq: bool = False, mode: int = 0, sparse: bool = False) -> Tensor:
    num_bags = offsets.shape[0] if offsets.shape else 1
    dim = weight.shape[1]
    lookups = indices.shape[0] if indices.shape else 0
    locality = _embedding_locality(indices, weight.shape[0])
    ctx.launch(
        KernelDesc(
            name="embedding_bag_kernel",
            kind=KernelKind.EMBEDDING,
            flops=lookups * dim,
            bytes_read=lookups * dim * weight.dtype.itemsize + lookups * indices.dtype.itemsize,
            bytes_written=num_bags * dim * weight.dtype.itemsize,
            occupancy=_occupancy(ctx, num_bags * dim),
            locality=locality,
            metadata={"dtype": weight.dtype.type_name, "lookups": lookups},
        )
    )
    return Tensor.empty((num_bags, dim), dtype=weight.dtype, device=weight.device)


@register_op("aten::_embedding_bag_dense_backward(Tensor grad, Tensor indices, Tensor offsets, int num_weights, bool scale_grad_by_freq, int mode) -> Tensor")
def aten_embedding_bag_backward(ctx, grad: Tensor, indices: Tensor, offsets: Tensor, num_weights: int, scale_grad_by_freq: bool = False, mode: int = 0) -> Tensor:
    dim = grad.shape[-1]
    lookups = indices.shape[0] if indices.shape else 0
    locality = _embedding_locality(indices, num_weights)
    ctx.launch(
        KernelDesc(
            name="embedding_bag_backward_kernel",
            kind=KernelKind.EMBEDDING,
            flops=lookups * dim,
            bytes_read=grad.nbytes + lookups * indices.dtype.itemsize,
            bytes_written=lookups * dim * grad.dtype.itemsize,
            occupancy=_occupancy(ctx, lookups * dim),
            locality=locality,
            metadata={"dtype": grad.dtype.type_name},
        )
    )
    return Tensor.empty((num_weights, dim), dtype=grad.dtype, device=grad.device)


# ----------------------------------------------------------------------
# Optimizer update operators
# ----------------------------------------------------------------------
@register_op("aten::_foreach_add_(Tensor[] self, Tensor[] other, *, Scalar alpha=1) -> Tensor[]")
def aten_foreach_add_(ctx, self: Sequence[Tensor], other: Sequence[Tensor], alpha: float = 1) -> List[Tensor]:
    numel = sum(t.numel for t in self)
    itemsize = self[0].dtype.itemsize if self else 4
    ctx.launch(
        elementwise_desc(
            ctx, "multi_tensor_apply_add", numel, itemsize,
            tensors_read=2, dtype_name=self[0].dtype.type_name if self else "float32",
        )
    )
    return list(self)


@register_op("aten::_foreach_mul_(Tensor[] self, Scalar scalar) -> Tensor[]")
def aten_foreach_mul_(ctx, self: Sequence[Tensor], scalar: float) -> List[Tensor]:
    numel = sum(t.numel for t in self)
    itemsize = self[0].dtype.itemsize if self else 4
    ctx.launch(
        elementwise_desc(
            ctx, "multi_tensor_apply_mul", numel, itemsize,
            dtype_name=self[0].dtype.type_name if self else "float32",
        )
    )
    return list(self)


@register_op("aten::zero_(Tensor self) -> Tensor")
def aten_zero_(ctx, self: Tensor) -> Tensor:
    ctx.launch(
        elementwise_desc(
            ctx, "fill_zero_kernel", self.numel, self.dtype.itemsize,
            flops_per_element=0.0, tensors_read=0, dtype_name=self.dtype.type_name,
        )
    )
    return self
