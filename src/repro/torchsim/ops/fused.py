"""Fused (JIT) operators.

Pointwise operator fusion merges several elementwise operators into a single
kernel to amortise memory traffic and launch overhead; in PyTorch it is
enabled by decorating a function with ``@torch.jit.script`` and the fuser
emits a single fused operator at runtime (Section 3.3).

The paper notes that the execution trace does not yet carry enough metadata
to replay fused operators, so Mystique skips them (they are a small fraction
of count and a negligible fraction of GPU time, Figure 2).  We model them
the same way: workloads may emit ``fused::*`` operators, they show up in the
trace, and the replayer treats them as unsupported by default.
"""

from __future__ import annotations

from typing import Sequence

from repro.torchsim.kernel import KernelDesc, KernelKind, OpCategory
from repro.torchsim.ops.registry import register_op
from repro.torchsim.tensor import Tensor


@register_op(
    "fused::TensorExprGroup(Tensor[] inputs, int num_ops=2) -> Tensor",
    category=OpCategory.FUSED,
    library="fused",
)
def fused_tensor_expr_group(ctx, inputs: Sequence[Tensor], num_ops: int = 2) -> Tensor:
    """A NVFuser/NNC-style fusion group of ``num_ops`` pointwise operators.

    The fused kernel reads each input once and writes one output, instead of
    reading/writing once per fused operator — that is the whole point of
    fusion, and it is reflected in the descriptor.
    """
    reference = inputs[0]
    numel = reference.numel
    itemsize = reference.dtype.itemsize
    ctx.launch(
        KernelDesc(
            name="CudaCodeGen::kernel_fused",
            kind=KernelKind.FUSED,
            flops=numel * float(num_ops),
            bytes_read=numel * itemsize * len(inputs),
            bytes_written=numel * itemsize,
            occupancy=min(1.0, numel / (ctx.spec.num_sms * 2048.0)),
            locality=0.85,
            metadata={"num_ops": num_ops, "dtype": reference.dtype.type_name},
        )
    )
    return Tensor.empty(reference.shape, dtype=reference.dtype, device=reference.device)
