"""A small ``nn``-style module zoo, optimizer and DDP wrapper.

These modules exist so the workload definitions (PARAM linear, ResNet, ASR,
RM) read like ordinary PyTorch model code while issuing operators through a
:class:`~repro.torchsim.runtime.Runtime`.  Every module:

* owns its parameters as :class:`~repro.torchsim.tensor.Tensor` objects with
  ``requires_grad=True``,
* issues forward operators through ``runtime.call`` (which is what the
  execution-trace observer captures), and
* records a backward closure on a :class:`~repro.torchsim.autograd.GradientTape`
  that issues the corresponding ATen backward operators.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.torchsim.autograd import GradientTape
from repro.torchsim.dtypes import DType
from repro.torchsim.stream import COMM_STREAM
from repro.torchsim.tensor import Tensor


def _grad_like(reference: Tensor, grad: Optional[Tensor]) -> Tensor:
    """Use the upstream gradient when it matches, else synthesise one.

    The tape threads gradients between layers purely for shape bookkeeping;
    when the upstream gradient has a different shape (e.g. coming out of a
    loss), the layer's backward cost is driven by its own output shape.
    """
    if grad is not None and tuple(grad.shape) == tuple(reference.shape):
        return grad
    return Tensor.empty(reference.shape, dtype=reference.dtype, device=reference.device)


class Module:
    """Base class for all simulated layers."""

    def __init__(self) -> None:
        self._parameters: List[Tensor] = []
        self._children: List["Module"] = []

    # ------------------------------------------------------------------
    def register_parameter(self, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        self._parameters.append(tensor)
        return tensor

    def register_module(self, module: "Module") -> "Module":
        self._children.append(module)
        return module

    def parameters(self) -> List[Tensor]:
        params = list(self._parameters)
        for child in self._children:
            params.extend(child.parameters())
        return params

    def parameter_bytes(self) -> int:
        return sum(param.nbytes for param in self.parameters())

    # ------------------------------------------------------------------
    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        raise NotImplementedError

    def __call__(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        return self.forward(runtime, x, tape)


class Sequential(Module):
    """Chains child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = [self.register_module(module) for module in modules]

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = x
        for layer in self.layers:
            out = layer(runtime, out, tape)
        return out


class Linear(Module):
    """Fully connected layer (``aten::linear`` forward, GEMM backward)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, dtype: DType = DType.FLOAT32):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(Tensor.empty((out_features, in_features), dtype=dtype))
        self.bias = self.register_parameter(Tensor.empty((out_features,), dtype=dtype)) if bias else None

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call("aten::linear", x, self.weight, self.bias)
        if tape is not None:
            weight, bias = self.weight, self.bias

            def backward(rt, grad):
                grad = _grad_like(out, grad)
                grad_input = rt.call("aten::mm", grad, weight)
                grad_t = rt.call("aten::t", grad)
                weight.grad = rt.call("aten::mm", grad_t, x)
                tape.grad_ready(weight)
                if bias is not None:
                    bias.grad = rt.call("aten::sum", grad)
                    tape.grad_ready(bias)
                return grad_input

            tape.record("AddmmBackward0", backward)
        return out


class ReLU(Module):
    def __init__(self, inplace: bool = False):
        super().__init__()
        self.inplace = inplace

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call("aten::relu_" if self.inplace else "aten::relu", x)
        if tape is not None:
            def backward(rt, grad):
                grad = _grad_like(out, grad)
                return rt.call("aten::threshold_backward", grad, x, 0)

            tape.record("ReluBackward0", backward)
        return out


class Dropout(Module):
    def __init__(self, p: float = 0.1):
        super().__init__()
        self.p = p

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call("aten::dropout", x, self.p, True)
        if tape is not None and self.p > 0:
            def backward(rt, grad):
                grad = _grad_like(out, grad)
                return rt.call("aten::mul", grad, grad)

            tape.record("MulBackward0", backward)
        return out


class Conv2d(Module):
    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        dtype: DType = DType.FLOAT32,
    ):
        super().__init__()
        self.stride = (stride, stride)
        self.padding = (padding, padding)
        self.weight = self.register_parameter(
            Tensor.empty((out_channels, in_channels, kernel_size, kernel_size), dtype=dtype)
        )
        self.bias = self.register_parameter(Tensor.empty((out_channels,), dtype=dtype)) if bias else None

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call(
            "aten::conv2d", x, self.weight, self.bias, list(self.stride), list(self.padding), [1, 1], 1
        )
        if tape is not None:
            weight, bias = self.weight, self.bias

            def backward(rt, grad):
                grad = _grad_like(out, grad)
                grad_input, grad_weight, grad_bias = rt.call(
                    "aten::convolution_backward", grad, x, weight, list(self.stride), list(self.padding), 1
                )
                weight.grad = grad_weight
                tape.grad_ready(weight)
                if bias is not None:
                    bias.grad = grad_bias
                    tape.grad_ready(bias)
                return grad_input

            tape.record("ConvolutionBackward0", backward)
        return out


class BatchNorm2d(Module):
    def __init__(self, num_features: int, dtype: DType = DType.FLOAT32):
        super().__init__()
        self.weight = self.register_parameter(Tensor.empty((num_features,), dtype=dtype))
        self.bias = self.register_parameter(Tensor.empty((num_features,), dtype=dtype))
        self.running_mean = Tensor.empty((num_features,), dtype=dtype)
        self.running_var = Tensor.empty((num_features,), dtype=dtype)

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call(
            "aten::batch_norm", x, self.weight, self.bias, self.running_mean, self.running_var,
            True, 0.1, 1e-5, True,
        )
        if tape is not None:
            weight, bias = self.weight, self.bias

            def backward(rt, grad):
                grad = _grad_like(out, grad)
                grad_input, grad_weight, grad_bias = rt.call(
                    "aten::native_batch_norm_backward", grad, x, weight, self.running_mean,
                    self.running_var, None, None, True, 1e-5,
                )
                weight.grad = grad_weight
                bias.grad = grad_bias
                tape.grad_ready(weight)
                tape.grad_ready(bias)
                return grad_input

            tape.record("NativeBatchNormBackward0", backward)
        return out


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int, padding: int = 0):
        super().__init__()
        self.kernel_size = (kernel_size, kernel_size)
        self.stride = (stride, stride)
        self.padding = (padding, padding)

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call(
            "aten::max_pool2d", x, list(self.kernel_size), list(self.stride), list(self.padding), [1, 1], False
        )
        if tape is not None:
            def backward(rt, grad):
                grad = _grad_like(out, grad)
                return rt.call(
                    "aten::max_pool2d_with_indices_backward", grad, x,
                    list(self.kernel_size), list(self.stride), list(self.padding),
                )

            tape.record("MaxPool2DWithIndicesBackward0", backward)
        return out


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = (output_size, output_size)

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        out = runtime.call("aten::adaptive_avg_pool2d", x, list(self.output_size))
        if tape is not None:
            def backward(rt, grad):
                grad = _grad_like(out, grad)
                return rt.call("aten::adaptive_avg_pool2d_backward", grad, x)

            tape.record("AdaptiveAvgPool2DBackward0", backward)
        return out


class EmbeddingBag(Module):
    """Pooled embedding lookup (``aten::embedding_bag``)."""

    def __init__(self, num_embeddings: int, embedding_dim: int, dtype: DType = DType.FLOAT32):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = self.register_parameter(Tensor.empty((num_embeddings, embedding_dim), dtype=dtype))

    def forward(self, runtime, indices: Tensor, offsets: Optional[Tensor] = None, tape: Optional[GradientTape] = None) -> Tensor:
        if offsets is None:
            offsets = Tensor.empty((indices.shape[0],), dtype=DType.INT64, device=indices.device)
        out = runtime.call("aten::embedding_bag", self.weight, indices, offsets, False, 0, False)
        if tape is not None:
            weight = self.weight

            def backward(rt, grad):
                grad = _grad_like(out, grad)
                weight.grad = rt.call(
                    "aten::_embedding_bag_dense_backward", grad, indices, offsets,
                    weight.shape[0], False, 0,
                )
                tape.grad_ready(weight)
                return None

            tape.record("EmbeddingBagBackward0", backward)
        return out


class MLP(Module):
    """A stack of Linear + ReLU layers (the bottom/top MLPs of RM)."""

    def __init__(self, layer_sizes: Sequence[int], dtype: DType = DType.FLOAT32):
        super().__init__()
        layers: List[Module] = []
        for in_size, out_size in zip(layer_sizes[:-1], layer_sizes[1:]):
            layers.append(Linear(in_size, out_size, dtype=dtype))
            layers.append(ReLU(inplace=True))
        self.net = self.register_module(Sequential(*layers))

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        return self.net(runtime, x, tape)


# ----------------------------------------------------------------------
# Optimizer
# ----------------------------------------------------------------------
class SGD:
    """Fused (foreach-style) SGD, matching how production models step."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01):
        self.parameters = list(parameters)
        self.lr = lr

    def step(self, runtime) -> None:
        params_with_grads = [param for param in self.parameters if param.grad is not None]
        if not params_with_grads:
            return
        grads = [param.grad for param in params_with_grads]
        with runtime.record_function("Optimizer.step#SGD.step"):
            runtime.call("aten::_foreach_mul_", grads, 1.0)
            runtime.call("aten::_foreach_add_", params_with_grads, grads, -self.lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None


# ----------------------------------------------------------------------
# Distributed data parallelism
# ----------------------------------------------------------------------
class DistributedDataParallel:
    """Gradient-bucketing DDP, issuing async ``c10d::all_reduce`` calls.

    Buckets fill as backward produces gradients (via gradient-tape hooks),
    and each full bucket launches an asynchronous all-reduce on the
    communication stream, overlapping communication with the remaining
    backward computation — the behaviour that produces "exposed" vs hidden
    communication time in Figure 2.
    """

    def __init__(self, module: Module, bucket_cap_mb: float = 25.0):
        self.module = module
        self.bucket_cap_bytes = bucket_cap_mb * 1024 * 1024
        # Only gradients of this module's own parameters are reduced; other
        # parameters (e.g. model-parallel embedding shards) have their own
        # synchronisation path and must not be bucketed here.
        self._owned_param_ids = {id(parameter) for parameter in module.parameters()}
        self._pending: List[Tensor] = []
        self._pending_bytes = 0.0
        self._works: list = []
        self._runtime = None

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        return self.module.parameters()

    def forward(self, runtime, x: Tensor, tape: Optional[GradientTape] = None) -> Tensor:
        return self.module(runtime, x, tape)

    __call__ = forward

    # ------------------------------------------------------------------
    def attach(self, runtime, tape: GradientTape) -> None:
        """Hook gradient-bucket reduction into the coming backward pass."""
        self._runtime = runtime
        self._pending = []
        self._pending_bytes = 0.0
        self._works = []
        tape.add_grad_hook(self._on_grad_ready)

    def _on_grad_ready(self, parameter: Tensor) -> None:
        if parameter.grad is None or self._runtime is None:
            return
        if id(parameter) not in self._owned_param_ids:
            return
        self._pending.append(parameter.grad)
        self._pending_bytes += parameter.grad.nbytes
        if self._pending_bytes >= self.bucket_cap_bytes:
            self._flush()

    def _flush(self) -> None:
        if not self._pending or self._runtime is None:
            return
        runtime = self._runtime
        pg = runtime.dist.default_group.describe() if runtime.dist is not None else None
        work = runtime.call("c10d::all_reduce", list(self._pending), "sum", pg, True)
        self._works.append(work)
        self._pending = []
        self._pending_bytes = 0.0

    def finalize(self, runtime) -> None:
        """Flush the last bucket and wait for all outstanding reductions."""
        self._flush()
        for work in self._works:
            if hasattr(work, "wait"):
                work.wait()
        self._works = []
