"""CUDA-style streams.

A stream is a FIFO of kernels that execute in issue order on the device.
Kernels on different streams may overlap; the GPU timeline simulator
(:mod:`repro.hardware.gpu`) resolves the actual start/end times.

Stream numbering follows the conventions visible in PyTorch profiler traces:
the default compute stream is 7, communication collectives typically land on
a dedicated stream (20), and host/device copies on another (22).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


#: Default compute stream id (PyTorch's default CUDA stream shows up as 7).
DEFAULT_COMPUTE_STREAM = 7
#: Stream used by NCCL-style communication kernels.
COMM_STREAM = 20
#: Stream used by host<->device memcpy kernels.
MEMCPY_STREAM = 22


@dataclass
class Stream:
    """A simulated CUDA stream."""

    stream_id: int
    device_index: int = 0
    priority: int = 0

    def __hash__(self) -> int:
        return hash((self.stream_id, self.device_index))

    def __str__(self) -> str:
        return f"stream {self.stream_id}"


@dataclass
class StreamPool:
    """The set of streams available to one runtime (one device/process)."""

    device_index: int = 0
    streams: List[Stream] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.streams:
            self.streams = [
                Stream(DEFAULT_COMPUTE_STREAM, self.device_index),
                Stream(COMM_STREAM, self.device_index),
                Stream(MEMCPY_STREAM, self.device_index),
            ]

    def get(self, stream_id: int) -> Stream:
        """Return the stream with ``stream_id``, creating it if needed."""
        for stream in self.streams:
            if stream.stream_id == stream_id:
                return stream
        stream = Stream(stream_id, self.device_index)
        self.streams.append(stream)
        return stream

    @property
    def default(self) -> Stream:
        return self.get(DEFAULT_COMPUTE_STREAM)

    @property
    def comm(self) -> Stream:
        return self.get(COMM_STREAM)

    @property
    def memcpy(self) -> Stream:
        return self.get(MEMCPY_STREAM)

    def ids(self) -> List[int]:
        return [stream.stream_id for stream in self.streams]
