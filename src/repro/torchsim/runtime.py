"""The simulated framework runtime.

The :class:`Runtime` is the meeting point of everything in ``torchsim``:

* it dispatches operator calls through the registry, tracking the CPU clock
  of each issuing thread and the parent/child call stack,
* it launches simulated GPU kernels onto streams and hands them to the GPU
  timeline for start/end resolution,
* it notifies the attached :class:`~repro.torchsim.observer.ExecutionGraphObserver`
  (execution-trace nodes) and :class:`~repro.torchsim.profiler.Profiler`
  (CPU spans and kernel spans),
* it exposes ``record_function`` annotations, stream/thread scoping and
  device synchronisation.

Time is measured in microseconds on a virtual clock.  CPU threads advance
their clock as they dispatch operators and launch kernels; GPU kernels run
asynchronously on streams, and ``synchronize()`` joins the two worlds.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hardware.costmodel import KernelCostModel
from repro.hardware.gpu import GpuTimeline, TimelineStats
from repro.hardware.power import PowerModel
from repro.hardware.specs import DeviceSpec, get_device_spec
from repro.torchsim.distributed import DistributedContext, Work
from repro.torchsim.kernel import KernelDesc, KernelLaunch, OpCategory
from repro.torchsim.observer import ExecutionGraphObserver
from repro.torchsim.profiler import Profiler, TraceEvent
from repro.torchsim.ops.registry import OperatorDef, OperatorRegistry, global_registry
from repro.torchsim.stream import DEFAULT_COMPUTE_STREAM, StreamPool
from repro.torchsim.tensor import Tensor

#: Main Python thread name (forward pass, optimizer).
MAIN_THREAD = "main"
#: The autograd engine's worker thread (backward pass).
AUTOGRAD_THREAD = "autograd"

#: Dispatch overhead of nested (child) operator calls relative to top-level
#: calls — child dispatches skip much of the framework's bookkeeping.
_NESTED_DISPATCH_FACTOR = 0.4
#: CPU cost of recording a pure annotation node, in microseconds.
_ANNOTATION_OVERHEAD_US = 1.0


@dataclass
class _Frame:
    """One entry of the operator call stack."""

    node_id: int
    name: str
    category: OpCategory
    start_ts: float
    thread: str
    #: True for ``record_function`` annotation scopes; annotations parent
    #: their children in the trace but do not make those children "nested
    #: dispatches" (only real operator frames do).
    is_annotation: bool = False


class OpContext:
    """Execution context passed to operator implementations."""

    def __init__(self, runtime: "Runtime", frame: _Frame):
        self.runtime = runtime
        self.frame = frame

    # ------------------------------------------------------------------
    @property
    def spec(self) -> DeviceSpec:
        return self.runtime.spec

    @property
    def cost_model(self) -> KernelCostModel:
        return self.runtime.cost_model

    @property
    def dist(self) -> Optional[DistributedContext]:
        return self.runtime.dist

    @property
    def current_stream(self) -> int:
        return self.runtime.current_stream

    def call(self, op_name: str, *args, **kwargs):
        """Invoke another operator as a child of the current one."""
        return self.runtime.call(op_name, *args, **kwargs)

    def launch(
        self,
        desc: KernelDesc,
        stream_id: Optional[int] = None,
        duration_us: Optional[float] = None,
        blocking: bool = False,
        start_not_before: Optional[float] = None,
    ) -> KernelLaunch:
        """Launch a simulated GPU kernel on behalf of the current operator."""
        return self.runtime.launch_kernel(
            desc,
            stream_id=stream_id,
            duration_us=duration_us,
            blocking=blocking,
            frame=self.frame,
            start_not_before=start_not_before,
        )

    def compute_stream_ready(self) -> float:
        """Time at which the default compute stream drains its queued work.

        Cross-stream consumers (collectives reading tensors produced by
        compute kernels) use this as their earliest possible start time.
        """
        from repro.torchsim.stream import DEFAULT_COMPUTE_STREAM

        return self.runtime.gpu.stream_ready_time(DEFAULT_COMPUTE_STREAM)

    def async_work(self, launch: KernelLaunch) -> Work:
        """Wrap a launched collective into an asynchronous work handle."""
        return Work(self.runtime, launch)


class Runtime:
    """One simulated process: a CPU front-end driving one GPU."""

    def __init__(
        self,
        device: str = "A100",
        power_limit_w: Optional[float] = None,
        cost_model_mode: str = "roofline",
        rank: int = 0,
        dist: Optional[DistributedContext] = None,
        registry: Optional[OperatorRegistry] = None,
    ) -> None:
        self.spec = get_device_spec(device) if isinstance(device, str) else device
        self.power_model = PowerModel(self.spec, power_limit_w)
        self.cost_model = KernelCostModel(
            self.spec, clock_scale=self.power_model.clock_scale, mode=cost_model_mode
        )
        self.rank = rank
        self.dist = dist
        self.registry = registry if registry is not None else global_registry
        self.gpu = GpuTimeline(device_index=rank)
        self.streams = StreamPool(device_index=rank)
        self.observer: Optional[ExecutionGraphObserver] = None
        self.profiler: Optional[Profiler] = None

        self._next_node_id = 2  # node 1 is the ET root
        self._next_correlation_id = 1
        self._cpu_clock: Dict[str, float] = {MAIN_THREAD: 0.0}
        self._call_stack: Dict[str, List[_Frame]] = {MAIN_THREAD: []}
        self._stream_override: Dict[str, List[int]] = {MAIN_THREAD: []}
        self._current_thread = MAIN_THREAD

    # ------------------------------------------------------------------
    # Attachments
    # ------------------------------------------------------------------
    def attach_observer(self, observer: ExecutionGraphObserver) -> ExecutionGraphObserver:
        self.observer = observer
        return observer

    def attach_profiler(self, profiler: Profiler) -> Profiler:
        self.profiler = profiler
        return profiler

    # ------------------------------------------------------------------
    # ID allocation
    #
    # Node and correlation IDs are plain integer cursors (not opaque
    # iterators) so the vectorized replay path can reserve a block of IDs
    # for a pre-captured operator program and reproduce the exact IDs the
    # scalar path would have assigned.
    # ------------------------------------------------------------------
    @property
    def node_cursor(self) -> int:
        """The next execution-trace node ID that will be assigned."""
        return self._next_node_id

    @property
    def correlation_cursor(self) -> int:
        """The next kernel-launch correlation ID that will be assigned."""
        return self._next_correlation_id

    def take_node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def take_correlation_id(self) -> int:
        correlation_id = self._next_correlation_id
        self._next_correlation_id += 1
        return correlation_id

    def reserve_node_ids(self, count: int) -> int:
        """Claim ``count`` consecutive node IDs; returns the first one."""
        base = self._next_node_id
        self._next_node_id += count
        return base

    def cpu_clocks(self) -> Dict[str, float]:
        """Snapshot of every CPU thread's clock (microseconds)."""
        return dict(self._cpu_clock)

    def clock_state(self) -> tuple:
        """Snapshot of the dispatch-cursor state :meth:`call` mutates
        *before* an operator function runs: the per-thread CPU clocks, the
        node/correlation ID cursors and the issuing thread.

        The event-driven cluster scheduler snapshots this around each
        collective attempt: a collective whose rendezvous is not yet
        resolved aborts mid-``call`` (after the dispatch overhead and node
        ID were consumed), and :meth:`restore_clock_state` rolls those back
        so the retried attempt replays identically.  Everything else
        ``call`` touches is either exception-safe (call stack, stream
        override) or only mutated after the function returns (observer,
        profiler, GPU launches).
        """
        return (
            dict(self._cpu_clock),
            self._next_node_id,
            self._next_correlation_id,
            self._current_thread,
        )

    def restore_clock_state(self, state: tuple) -> None:
        """Restore a :meth:`clock_state` snapshot (see there)."""
        clocks, node_id, correlation_id, thread = state
        self._cpu_clock.clear()
        self._cpu_clock.update(clocks)
        self._next_node_id = node_id
        self._next_correlation_id = correlation_id
        self._current_thread = thread

    # ------------------------------------------------------------------
    # Clocks, threads and streams
    # ------------------------------------------------------------------
    @property
    def current_thread(self) -> str:
        return self._current_thread

    def now(self, thread: Optional[str] = None) -> float:
        """Current CPU clock of a thread, in microseconds."""
        return self._cpu_clock.get(thread or self._current_thread, 0.0)

    def advance_cpu(self, microseconds: float, thread: Optional[str] = None) -> float:
        name = thread or self._current_thread
        self._cpu_clock[name] = self._cpu_clock.get(name, 0.0) + microseconds
        return self._cpu_clock[name]

    def block_until(self, timestamp: float, thread: Optional[str] = None) -> float:
        """Advance a CPU thread's clock to at least ``timestamp``."""
        name = thread or self._current_thread
        self._cpu_clock[name] = max(self._cpu_clock.get(name, 0.0), timestamp)
        return self._cpu_clock[name]

    @contextmanager
    def thread(self, name: str):
        """Temporarily switch the issuing CPU thread (e.g. autograd).

        The new thread's clock starts no earlier than the switching thread's
        current time — backward work cannot begin before it is scheduled.
        """
        previous = self._current_thread
        self._cpu_clock.setdefault(name, 0.0)
        self._cpu_clock[name] = max(self._cpu_clock[name], self._cpu_clock.get(previous, 0.0))
        self._call_stack.setdefault(name, [])
        self._stream_override.setdefault(name, [])
        self._current_thread = name
        try:
            yield self
        finally:
            # Work queued after the scoped region resumes after the scoped
            # thread finished (the main thread joins the autograd thread).
            self._cpu_clock[previous] = max(
                self._cpu_clock.get(previous, 0.0), self._cpu_clock.get(name, 0.0)
            )
            self._current_thread = previous

    @property
    def current_stream(self) -> int:
        override = self._stream_override.get(self._current_thread, [])
        return override[-1] if override else DEFAULT_COMPUTE_STREAM

    @property
    def stream_override_active(self) -> bool:
        """True when the caller scoped execution to an explicit stream.

        Operators with a library-default stream (NCCL collectives) honour an
        explicit override — this is what lets the replayer dispatch them to
        the stream recorded in the profiler trace.
        """
        return bool(self._stream_override.get(self._current_thread, []))

    @contextmanager
    def stream(self, stream_id: int):
        """Scope operator launches to a non-default CUDA stream."""
        self._stream_override.setdefault(self._current_thread, []).append(stream_id)
        try:
            yield self
        finally:
            self._stream_override[self._current_thread].pop()

    def synchronize(self) -> float:
        """Device synchronisation: all CPU threads wait for the GPU to drain."""
        ready = max(
            self.gpu.device_ready_time(),
            max(self._cpu_clock.values(), default=0.0),
        )
        for thread in self._cpu_clock:
            self._cpu_clock[thread] = ready
        return ready

    # ------------------------------------------------------------------
    # Operator dispatch
    # ------------------------------------------------------------------
    def call(self, op_name: str, *args, stream: Optional[int] = None, **kwargs):
        """Invoke an operator by qualified name.

        Returns whatever the operator implementation returns (a tensor, a
        tuple of tensors, a :class:`~repro.torchsim.distributed.Work`
        handle, or ``None``).
        """
        op_def = self.registry.get(op_name)
        thread = self._current_thread
        stack = self._call_stack.setdefault(thread, [])
        nested = any(not frame.is_annotation for frame in stack)

        node_id = self.take_node_id()
        parent_id = stack[-1].node_id if stack else 0
        dispatch = self.spec.dispatch_overhead_us * (_NESTED_DISPATCH_FACTOR if nested else 1.0)
        start_ts = self.now(thread)
        self.advance_cpu(dispatch, thread)

        frame = _Frame(
            node_id=node_id,
            name=op_name,
            category=op_def.category,
            start_ts=start_ts,
            thread=thread,
        )
        stack.append(frame)
        stream_ctx = self.stream(stream) if stream is not None else None
        if stream_ctx is not None:
            stream_ctx.__enter__()
        try:
            result = op_def.fn(OpContext(self, frame), *args, **kwargs)
        finally:
            if stream_ctx is not None:
                stream_ctx.__exit__(None, None, None)
            stack.pop()
        end_ts = self.now(thread)

        outputs = _normalize_outputs(result)
        if self.observer is not None and self.observer.enabled:
            self.observer.record_node(
                name=op_name,
                node_id=node_id,
                parent_id=parent_id,
                op_schema=op_def.schema_str,
                inputs=_flatten_args(args, kwargs),
                outputs=outputs,
                attrs={"tid": thread, "category": op_def.category.value, "rank": self.rank},
            )
        if self.profiler is not None and self.profiler.enabled:
            self.profiler.record_cpu_op(
                TraceEvent(
                    name=op_name,
                    cat="cpu_op",
                    ts=start_ts,
                    dur=end_ts - start_ts,
                    tid=thread,
                    pid=self.rank,
                    op_node_id=node_id,
                )
            )
        return result

    @contextmanager
    def record_function(self, name: str):
        """Annotation scope, mirroring ``torch.profiler.record_function``.

        The annotation becomes the parent of every operator issued inside
        the scope — this is how users label subtraces for selective replay
        (Section 7.1) and how autograd wrapper nodes appear in the trace.
        """
        thread = self._current_thread
        stack = self._call_stack.setdefault(thread, [])
        node_id = self.take_node_id()
        parent_id = stack[-1].node_id if stack else 0
        start_ts = self.now(thread)
        self.advance_cpu(_ANNOTATION_OVERHEAD_US, thread)
        frame = _Frame(
            node_id=node_id,
            name=name,
            category=OpCategory.ATEN,
            start_ts=start_ts,
            thread=thread,
            is_annotation=True,
        )
        stack.append(frame)
        try:
            yield frame
        finally:
            stack.pop()
            end_ts = self.now(thread)
            if self.observer is not None and self.observer.enabled:
                self.observer.record_node(
                    name=name,
                    node_id=node_id,
                    parent_id=parent_id,
                    op_schema="",
                    inputs=[],
                    outputs=[],
                    attrs={"tid": thread, "annotation": True, "rank": self.rank},
                )
            if self.profiler is not None and self.profiler.enabled:
                self.profiler.record_cpu_op(
                    TraceEvent(
                        name=name,
                        cat="user_annotation",
                        ts=start_ts,
                        dur=end_ts - start_ts,
                        tid=thread,
                        pid=self.rank,
                        op_node_id=node_id,
                    )
                )

    # ------------------------------------------------------------------
    # Kernel launching
    # ------------------------------------------------------------------
    def launch_kernel(
        self,
        desc: KernelDesc,
        stream_id: Optional[int] = None,
        duration_us: Optional[float] = None,
        blocking: bool = False,
        frame: Optional[_Frame] = None,
        start_not_before: Optional[float] = None,
    ) -> KernelLaunch:
        """Enqueue one kernel on a stream and resolve its timing.

        ``start_not_before`` models a cross-stream data dependency: the
        kernel cannot start before that timestamp even if its own stream is
        idle (e.g. a collective waiting for the compute stream to produce
        its input tensor).
        """
        thread = self._current_thread
        self.advance_cpu(self.spec.kernel_launch_overhead_us, thread)
        launch_ts = self.now(thread)
        if start_not_before is not None:
            launch_ts = max(launch_ts, start_not_before)
        resolved_stream = stream_id if stream_id is not None else self.current_stream
        duration = duration_us if duration_us is not None else self.cost_model.duration_us(desc)
        launch = KernelLaunch(
            desc=desc,
            stream_id=resolved_stream,
            launch_ts=launch_ts,
            duration=duration,
            op_node_id=frame.node_id if frame is not None else 0,
            op_name=frame.name if frame is not None else desc.name,
            category=frame.category if frame is not None else OpCategory.ATEN,
            device_index=self.rank,
            correlation_id=self.take_correlation_id(),
        )
        self.gpu.add_launch(launch)
        if self.profiler is not None and self.profiler.enabled:
            self.profiler.record_kernel(
                TraceEvent(
                    name=desc.name,
                    cat="kernel",
                    ts=launch.start if launch.start is not None else launch_ts,
                    dur=launch.duration,
                    tid="gpu",
                    pid=self.rank,
                    stream=resolved_stream,
                    op_node_id=launch.op_node_id,
                    correlation=launch.correlation_id,
                    args={"kind": desc.kind.value, "category": launch.category.value},
                )
            )
        if blocking and launch.end is not None:
            self.block_until(launch.end, thread)
        return launch

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    def timeline_stats(self, window_start: float = 0.0, window_end: Optional[float] = None) -> TimelineStats:
        return self.gpu.stats(window_start=window_start, window_end=window_end)

    def elapsed_iteration(self, start_ts: float) -> float:
        """Wall-clock time since ``start_ts`` after draining the device."""
        return self.synchronize() - start_ts


# ----------------------------------------------------------------------
def _normalize_outputs(result: Any) -> List[Any]:
    if result is None:
        return []
    if isinstance(result, Work):
        return []
    if isinstance(result, tuple):
        return list(result)
    if isinstance(result, list):
        return [result]
    return [result]


def _flatten_args(args: Sequence[Any], kwargs: Dict[str, Any]) -> List[Any]:
    flat = list(args)
    for key in sorted(kwargs):
        flat.append(kwargs[key])
    return flat
