"""The profiler trace (the "Kineto" side of the capture).

The execution trace records operator metadata but no timing, stream or
kernel information; Section 4.5 of the paper therefore pairs it with a
profiler trace that records, for every operator, the GPU kernels it launched
and which CUDA stream each kernel ran on.  Mystique uses that pairing to
dispatch replayed operators onto the right streams.

The simulated profiler records three kinds of events:

* ``cpu_op`` — one span per operator invocation, on the issuing CPU thread,
* ``user_annotation`` — spans for ``record_function`` labels,
* ``kernel`` — one span per launched GPU kernel, tagged with its stream and
  a correlation ID linking it back to the launching operator node.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple


@dataclass
class TraceEvent:
    """One profiler event (Chrome-trace style complete event)."""

    name: str
    cat: str                  # "cpu_op" | "user_annotation" | "kernel"
    ts: float                 # start timestamp, microseconds
    dur: float                # duration, microseconds
    tid: str = "main"         # issuing CPU thread ("main" / "autograd")
    pid: int = 0              # rank
    stream: Optional[int] = None
    op_node_id: int = 0       # execution-trace node id of the operator
    correlation: int = 0      # launch correlation id (kernels only)
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            name=data["name"],
            cat=data["cat"],
            ts=float(data["ts"]),
            dur=float(data["dur"]),
            tid=data.get("tid", "main"),
            pid=int(data.get("pid", 0)),
            stream=data.get("stream"),
            op_node_id=int(data.get("op_node_id", 0)),
            correlation=int(data.get("correlation", 0)),
            args=dict(data.get("args", {})),
        )


@dataclass
class ProfilerTrace:
    """A collection of profiler events for one process (one rank)."""

    events: List[TraceEvent] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, event: TraceEvent) -> TraceEvent:
        self.events.append(event)
        return event

    def cpu_ops(self) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == "cpu_op"]

    def annotations(self) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == "user_annotation"]

    def kernels(self) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == "kernel"]

    def kernels_for_op(self, op_node_id: int) -> List[TraceEvent]:
        return [e for e in self.kernels() if e.op_node_id == op_node_id]

    def threads(self) -> List[str]:
        return sorted({e.tid for e in self.events if e.cat in ("cpu_op", "user_annotation")})

    def streams(self) -> List[int]:
        return sorted({e.stream for e in self.kernels() if e.stream is not None})

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def window(self) -> Tuple[float, float]:
        """(start, end) of the captured region across CPU and GPU events."""
        if not self.events:
            return (0.0, 0.0)
        start = min(e.ts for e in self.events)
        end = max(e.end for e in self.events)
        return (start, end)

    def wall_time_us(self) -> float:
        start, end = self.window()
        return end - start

    def total_gpu_time_us(self) -> float:
        return sum(e.dur for e in self.kernels())

    def total_cpu_time_us(self) -> float:
        """Sum of *top-level* CPU operator durations (children excluded)."""
        ops = sorted(self.cpu_ops(), key=lambda e: (e.tid, e.ts))
        total = 0.0
        last_end: Dict[str, float] = {}
        for event in ops:
            covered_until = last_end.get(event.tid, float("-inf"))
            if event.ts >= covered_until:
                total += event.dur
                last_end[event.tid] = event.end
        return total

    def op_stream_map(self) -> Dict[int, List[int]]:
        """Execution-trace node id → list of streams its kernels ran on.

        This is the information Mystique extracts from the profiler trace to
        decide which stream to dispatch each replayed operator to
        (Section 4.5).
        """
        mapping: Dict[int, Set[int]] = {}
        for kernel in self.kernels():
            if kernel.stream is None:
                continue
            mapping.setdefault(kernel.op_node_id, set()).add(kernel.stream)
        return {op_id: sorted(streams) for op_id, streams in mapping.items()}

    def op_gpu_time_map(self) -> Dict[int, float]:
        """Execution-trace node id → total GPU kernel time it launched."""
        mapping: Dict[int, float] = {}
        for kernel in self.kernels():
            mapping[kernel.op_node_id] = mapping.get(kernel.op_node_id, 0.0) + kernel.dur
        return mapping

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "metadata": self.metadata,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProfilerTrace":
        return cls(
            events=[TraceEvent.from_dict(entry) for entry in data.get("events", [])],
            metadata=dict(data.get("metadata", {})),
        )

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Export in the chrome://tracing format for visual inspection."""
        chrome_events = []
        for event in self.events:
            chrome_events.append(
                {
                    "name": event.name,
                    "cat": event.cat,
                    "ph": "X",
                    "ts": event.ts,
                    "dur": event.dur,
                    "pid": event.pid,
                    "tid": event.tid if event.cat != "kernel" else f"stream {event.stream}",
                    "args": {"op_node_id": event.op_node_id, **event.args},
                }
            )
        return {"traceEvents": chrome_events, "metadata": self.metadata}

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()))
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ProfilerTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


class Profiler:
    """Collects :class:`TraceEvent` records while enabled.

    Mirrors ``torch.profiler.profile``: create it, ``start()`` / ``stop()``
    (or use it as a context manager), then read :attr:`trace`.
    """

    def __init__(
        self,
        activities: Optional[Iterable[str]] = None,
        on_trace_ready: Optional[Callable[["ProfilerTrace"], None]] = None,
    ) -> None:
        self.activities = set(activities) if activities is not None else {"cpu", "cuda"}
        self.on_trace_ready = on_trace_ready
        self.trace = ProfilerTrace()
        self._enabled = False

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def start(self) -> None:
        self._enabled = True

    def stop(self) -> None:
        self._enabled = False
        if self.on_trace_ready is not None:
            self.on_trace_ready(self.trace)

    def __enter__(self) -> "Profiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def record_cpu_op(self, event: TraceEvent) -> None:
        if self._enabled and "cpu" in self.activities:
            self.trace.add(event)

    def record_kernel(self, event: TraceEvent) -> None:
        if self._enabled and "cuda" in self.activities:
            self.trace.add(event)
