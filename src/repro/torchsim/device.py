"""Logical devices.

A :class:`Device` is only an *identity* ("where does this tensor live / where
does this kernel run"); the performance characteristics of the physical
hardware are described separately by
:class:`repro.hardware.specs.DeviceSpec`.  This mirrors PyTorch, where
``torch.device`` says nothing about whether the GPU is a V100 or an A100.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Device:
    """A logical execution device, e.g. ``cpu`` or ``cuda:0``."""

    type: str
    index: int = 0

    def __post_init__(self) -> None:
        if self.type not in ("cpu", "cuda"):
            raise ValueError(f"unsupported device type: {self.type!r}")
        if self.index < 0:
            raise ValueError("device index must be non-negative")

    @classmethod
    def cpu(cls) -> "Device":
        return cls("cpu", 0)

    @classmethod
    def cuda(cls, index: int = 0) -> "Device":
        return cls("cuda", index)

    @classmethod
    def parse(cls, text: str) -> "Device":
        """Parse a device string such as ``"cuda:1"`` or ``"cpu"``."""
        if ":" in text:
            kind, _, idx = text.partition(":")
            return cls(kind, int(idx))
        return cls(text, 0)

    @property
    def is_cuda(self) -> bool:
        return self.type == "cuda"

    def __str__(self) -> str:
        if self.type == "cpu":
            return "cpu"
        return f"{self.type}:{self.index}"
