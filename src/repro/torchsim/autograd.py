"""Tape-based autograd.

In PyTorch the backward pass is executed by the autograd engine on a worker
thread, and every backward step shows up in the execution trace as an
``autograd::engine::evaluate_function: <Name>Backward0`` wrapper node whose
children are the actual ATen backward operators (these wrappers are visible
in Figure 4 of the paper and are exactly the nodes the replayer does *not*
replay — it replays their children instead).

``torchsim`` models this with an explicit gradient tape: layers record a
backward closure during the forward pass, and :meth:`GradientTape.backward`
replays the closures in reverse order on the autograd thread, wrapping each
in the evaluate_function annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.torchsim.tensor import Tensor

#: Name of the simulated autograd worker thread.
AUTOGRAD_THREAD = "autograd"

#: Signature of a recorded backward closure: (runtime, upstream_grad) -> grad
BackwardFn = Callable[["object", Optional[Tensor]], Optional[Tensor]]
#: Signature of gradient-ready hooks (used by DDP for bucketing).
GradHook = Callable[[Tensor], None]


@dataclass
class _TapeEntry:
    name: str
    backward_fn: BackwardFn


class GradientTape:
    """Records backward closures during forward and replays them in reverse."""

    def __init__(self) -> None:
        self._entries: List[_TapeEntry] = []
        self._grad_hooks: List[GradHook] = []

    # ------------------------------------------------------------------
    # Recording (called by nn modules during forward)
    # ------------------------------------------------------------------
    def record(self, name: str, backward_fn: BackwardFn) -> None:
        """Record one backward step.

        ``name`` should be the PyTorch-style grad-fn name (``AddmmBackward0``,
        ``ConvolutionBackward0`` ...); it becomes part of the autograd
        wrapper annotation in the trace.
        """
        self._entries.append(_TapeEntry(name=name, backward_fn=backward_fn))

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Gradient hooks (used by DistributedDataParallel)
    # ------------------------------------------------------------------
    def add_grad_hook(self, hook: GradHook) -> None:
        self._grad_hooks.append(hook)

    def clear_grad_hooks(self) -> None:
        self._grad_hooks = []

    def grad_ready(self, parameter: Tensor) -> None:
        """Notify hooks that a parameter's gradient has been produced."""
        for hook in self._grad_hooks:
            hook(parameter)

    # ------------------------------------------------------------------
    # Backward execution
    # ------------------------------------------------------------------
    def backward(self, runtime, loss_grad: Optional[Tensor] = None) -> Optional[Tensor]:
        """Run the recorded backward steps in reverse on the autograd thread.

        Returns the gradient propagated out of the first recorded step (the
        gradient with respect to the model input), which is usually ignored.
        """
        grad = loss_grad
        with runtime.thread(AUTOGRAD_THREAD):
            for entry in reversed(self._entries):
                wrapper = f"autograd::engine::evaluate_function: {entry.name}"
                with runtime.record_function(wrapper):
                    grad = entry.backward_fn(runtime, grad)
        self._entries = []
        return grad

    def reset(self) -> None:
        """Drop any recorded-but-not-executed entries (e.g. eval-only runs)."""
        self._entries = []
