"""REST/JSON API over :class:`~repro.daemon.daemon.ReplayDaemon`.

Stdlib only (``http.server``) — the daemon must run wherever the replayer
runs, with no framework dependency.  The handler is a thin translation
layer: parse the route, call the daemon method, serialise the outcome via
:mod:`repro.service.serialize` (the same builders the CLI's ``--json``
mode uses, so payload shapes stay in one place).

Routes::

    GET  /health                 daemon + queue + cache + telemetry stats
    GET  /metrics                Prometheus text exposition (not JSON)
    GET  /jobs                   the caller's jobs (``?all=1``: everyone's)
    POST /jobs                   submit {"spec": {...}, "priority": n}
    GET  /jobs/<id>              job status
    GET  /jobs/<id>/result       completed job's result body
    GET  /jobs/<id>/analysis     insights diagnosis of a completed job
    GET  /jobs/<id>/snapshot     paused job's resume snapshot
    POST /jobs/<id>/pause        request a checkpoint-boundary pause
    POST /jobs/<id>/resume       requeue a paused job
    POST /jobs/<id>/cancel       cancel (cooperative when running)

The caller identifies itself with the ``X-Repro-Client`` header; every
job-specific route enforces ownership (403 on someone else's job).
Errors map onto status codes: 400 malformed request / illegal state, 403
not the owner, 404 unknown job or route, always with a JSON body
``{"error": ..., "error_type": ...}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.daemon.daemon import JobAccessError, ReplayDaemon, UnknownJobError
from repro.daemon.jobs import JobSpec, JobStateError
from repro.service import serialize
from repro.telemetry import get_logger

#: Name of the structured access-log logger — request it via
#: ``get_logger(ACCESS_LOGGER_NAME, stream=...)`` to redirect it.
ACCESS_LOGGER_NAME = "repro.daemon.http"

#: Default bind for ``python -m repro serve`` and the client CLI.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Header carrying the client (owner) identity.
CLIENT_HEADER = "X-Repro-Client"

#: Job actions POST /jobs/<id>/<action> may name.
_ACTIONS = ("pause", "resume", "cancel")


class DaemonRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request -> one daemon call."""

    server_version = "repro-daemon"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass below attaches the daemon here.
    @property
    def daemon_obj(self) -> ReplayDaemon:
        return self.server.replay_daemon  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # JSON-lines via repro.telemetry, not the stdlib access-log
        # format: one parseable object per request, stamped with any
        # tracer correlation active on this thread.
        if getattr(self.server, "verbose", False):
            get_logger(ACCESS_LOGGER_NAME).info(
                format % args,
                extra={
                    "fields": {
                        "client": self.address_string(),
                        "owner": self._owner(),
                        "method": getattr(self, "command", None),
                        "path": getattr(self, "path", None),
                    }
                },
            )

    # ------------------------------------------------------------------
    def _owner(self) -> str:
        return self.headers.get(CLIENT_HEADER, "").strip() or "anonymous"

    def _reply(self, status: int, payload: Any) -> None:
        body = serialize.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, error: BaseException) -> None:
        self._reply(
            status, {"error": str(error), "error_type": type(error).__name__}
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        """Split the path into (head, job_id, action)."""
        path = self.path.split("?", 1)[0]
        parts = [part for part in path.split("/") if part]
        head = parts[0] if parts else ""
        job_id = parts[1] if len(parts) > 1 else None
        action = parts[2] if len(parts) > 2 else None
        return head, job_id, action

    def _wants_all(self) -> bool:
        query = self.path.split("?", 1)[1] if "?" in self.path else ""
        return any(part in ("all=1", "all=true") for part in query.split("&"))

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        head, job_id, action = self._route()
        try:
            if head == "health" and job_id is None:
                self._reply(200, serialize.daemon_health_payload(self.daemon_obj.health()))
            elif head == "metrics" and job_id is None:
                # Prometheus exposition format, not JSON.
                self._reply_text(
                    200,
                    self.daemon_obj.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif head == "jobs" and job_id is None:
                owner = None if self._wants_all() else self._owner()
                self._reply(
                    200, serialize.job_list_payload(self.daemon_obj.list_jobs(owner))
                )
            elif head == "jobs" and action is None:
                record = self.daemon_obj.get(job_id, self._owner())
                self._reply(200, serialize.job_payload(record))
            elif head == "jobs" and action == "result":
                record = self.daemon_obj.get(job_id, self._owner())
                self.daemon_obj.result(job_id)  # state check
                self._reply(200, serialize.job_result_payload(record))
            elif head == "jobs" and action == "snapshot":
                record = self.daemon_obj.get(job_id, self._owner())
                self.daemon_obj.snapshot_of(job_id)  # state check
                self._reply(200, serialize.snapshot_payload(record))
            elif head == "jobs" and action == "analysis":
                record = self.daemon_obj.get(job_id, self._owner())
                analysis = self.daemon_obj.analysis(job_id)
                self._reply(200, serialize.job_analysis_payload(record, analysis))
            else:
                self._reply(404, {"error": f"no route {self.path!r}", "error_type": "LookupError"})
        except UnknownJobError as error:
            self._error(404, error)
        except JobAccessError as error:
            self._error(403, error)
        except (JobStateError, ValueError) as error:
            self._error(400, error)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        head, job_id, action = self._route()
        try:
            if head == "jobs" and job_id is None:
                body = self._read_body()
                spec = JobSpec.from_dict(body.get("spec") or {})
                record = self.daemon_obj.submit(
                    self._owner(), spec, priority=int(body.get("priority") or 0)
                )
                self._reply(201, serialize.job_payload(record))
            elif head == "jobs" and action in _ACTIONS:
                method = getattr(self.daemon_obj, action)
                record = method(job_id, self._owner())
                self._reply(200, serialize.job_payload(record))
            else:
                self._reply(404, {"error": f"no route {self.path!r}", "error_type": "LookupError"})
        except UnknownJobError as error:
            self._error(404, error)
        except JobAccessError as error:
            self._error(403, error)
        except (JobStateError, KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
            self._error(400, error)


class DaemonServer:
    """The daemon plus its HTTP front-end, as one start/stoppable unit.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as :attr:`address` after construction.
    """

    def __init__(
        self,
        daemon: ReplayDaemon,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        verbose: bool = False,
    ) -> None:
        self.daemon = daemon
        # Bind the access logger to the daemon's tracer so any
        # correlation scope active on the handling thread is stamped
        # onto the JSON log records.
        get_logger(ACCESS_LOGGER_NAME, tracer=getattr(daemon, "tracer", None))
        self.httpd = ThreadingHTTPServer((host, port), DaemonRequestHandler)
        self.httpd.replay_daemon = daemon  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.daemon.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-daemon-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.daemon.stop()

    def __enter__(self) -> "DaemonServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Foreground mode for ``python -m repro serve``."""
        self.daemon.start()
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.httpd.server_close()
            self.daemon.stop()
