"""HTTP client for the replay daemon (stdlib ``urllib`` only).

:class:`DaemonClient` is what the ``repro submit/status/result/...``
subcommands use, and what scripts can import directly.  Every method
mirrors one route of :mod:`repro.daemon.server` and returns the parsed
JSON payload; API errors surface as :class:`DaemonClientError` with the
HTTP status and the server's ``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.daemon.server import CLIENT_HEADER, DEFAULT_HOST, DEFAULT_PORT

#: Default daemon URL the client CLI talks to.
DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class DaemonClientError(RuntimeError):
    """An API call failed; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str, error_type: Optional[str] = None) -> None:
        super().__init__(f"daemon returned {status}: {message}")
        self.status = status
        self.message = message
        self.error_type = error_type


class DaemonClient:
    """A client identity talking to one daemon."""

    def __init__(self, url: str = DEFAULT_URL, client_id: str = "anonymous", timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={
                CLIENT_HEADER: self.client_id,
                "Content-Type": "application/json",
            },
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                payload = {}
            raise DaemonClientError(
                error.code,
                str(payload.get("error") or error.reason),
                payload.get("error_type"),
            ) from None
        except urllib.error.URLError as error:
            raise DaemonClientError(0, f"cannot reach daemon at {self.url}: {error.reason}") from None

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def submit(
        self, kind: str, payload: Dict[str, Any], priority: int = 0
    ) -> Dict[str, Any]:
        body = {"spec": {"kind": kind, "payload": payload}, "priority": priority}
        return self._request("POST", "/jobs", body)

    def list_jobs(self, all_owners: bool = False) -> Dict[str, Any]:
        return self._request("GET", "/jobs?all=1" if all_owners else "/jobs")

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def snapshot(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/snapshot")

    def pause(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/resume")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.2,
        until: tuple = ("completed", "failed", "cancelled", "paused"),
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a resting state."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in until:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after {timeout}s"
                )
            time.sleep(poll_s)
