"""Job execution: worker threads, cooperative pause, exactly-once points.

The executor is where a :class:`~repro.daemon.jobs.JobRecord` meets the
service layer.  A **sweep** job expands to its grid points
(:class:`~repro.service.sweep.SweepRunner` — same expansion as the inline
CLI) and replays them *one point per batch* through a serial
:class:`~repro.service.batch.BatchReplayer` with a ``pause_check``: that
is the contract that makes a pause land at an op-program iteration
boundary with a :class:`~repro.core.pipeline.ReplayCheckpoint` in hand.
A **cluster** job drives :class:`~repro.cluster.ClusterReplayer` with a
``scheduler_interrupt``, so its pause lands at a rendezvous/scheduler-step
boundary (:class:`~repro.cluster.ClusterPaused`); resume re-runs the
deterministic fleet from scratch, byte-identically.

Multi-tenant guarantees enforced here:

* **Exactly-once pricing** — concurrent jobs that share a (trace, config)
  point coordinate through the :class:`InflightRegistry`: the first
  claimant replays, everyone else waits and then reads the result cache.
  Two clients submitting overlapping sweeps replay each unique point once.
* **Pinned inputs** — every cache key a running job has touched is
  :meth:`~repro.service.cache.ResultCache.pin`-ned until the job finishes
  or pauses, so LRU/TTL eviction can never pull a result out from under a
  job that already resolved it.
* **Pause beats neither completion nor correctness** — a pause granted
  mid-point carries the point's checkpoint in the job snapshot; completed
  points ride in the snapshot too (with their summaries), so resume never
  re-prices them even if the cache evicted the entries meanwhile.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import ClusterPaused, ClusterReplayer
from repro.core.pipeline import ReplayCheckpoint, ReplayPaused
from repro.core.replayer import ReplayConfig, ReplayResultSummary
from repro.daemon.jobs import JobRecord, cluster_snapshot, sweep_snapshot
from repro.service.batch import BatchReplayer, ReplayJob, _error_details
from repro.service.cache import ResultCache
from repro.service.repository import TraceRepository
from repro.service.sweep import SweepRunner, SweepSpec

#: Executor outcome: (status, value) where status selects the job's next
#: state — "completed" (value: result payload), "paused" (value: snapshot),
#: "failed" (value: error-details dict), "cancelled" (value: None).
Outcome = Tuple[str, Optional[Dict[str, Any]]]


class JobControl:
    """Runtime-only control surface of one job: the pause/cancel flags the
    replay polls at its checkpoint boundaries."""

    def __init__(self) -> None:
        self.pause = threading.Event()
        self.cancel = threading.Event()

    def interrupted(self) -> bool:
        """The ``pause_check`` / ``scheduler_interrupt`` callable."""
        return self.pause.is_set() or self.cancel.is_set()


class InflightRegistry:
    """Cross-job registry of cache keys currently being computed.

    ``claim`` either makes the caller the computing owner (returns
    ``mine=True``) or hands back the owner's completion event to wait on.
    The owner must ``release`` in a ``finally`` — waiters then re-read the
    cache (on a computation failure they find a miss and re-claim, so a
    failed owner cannot wedge its waiters).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: Dict[str, threading.Event] = {}

    def claim(self, key: str) -> Tuple[threading.Event, bool]:
        with self._lock:
            event = self._events.get(key)
            if event is not None:
                return event, False
            event = threading.Event()
            self._events[key] = event
            return event, True

    def release(self, key: str) -> None:
        with self._lock:
            event = self._events.pop(key, None)
        if event is not None:
            event.set()


# ----------------------------------------------------------------------
# Sweep jobs
# ----------------------------------------------------------------------
def expand_sweep_points(payload: Dict[str, Any]) -> List[ReplayJob]:
    """The job's grid points, in deterministic order (same expansion the
    inline ``repro sweep`` uses)."""
    spec = SweepSpec(
        traces=payload.get("traces"),
        devices=list(payload.get("devices") or ("A100",)),
        axes={name: list(values) for name, values in (payload.get("axes") or {}).items()},
        base=ReplayConfig.from_dict(payload.get("base") or {}),
    )
    return SweepRunner(TraceRepository(payload["repo"])).jobs_for(spec)


def run_sweep_job(
    record: JobRecord,
    control: JobControl,
    cache: Optional[ResultCache],
    inflight: Optional[InflightRegistry],
    tracer: Optional[Any] = None,
) -> Outcome:
    """Replay every grid point, honouring a prior snapshot and the control
    flags; see the module docstring for the guarantees."""
    try:
        points = expand_sweep_points(record.spec.payload)
    except Exception as error:  # noqa: BLE001 - spec errors fail the job
        return "failed", _error_details(error)

    snapshot = record.snapshot or {}
    completed: Dict[str, Dict[str, Any]] = dict(snapshot.get("completed") or {})
    checkpoint_data = snapshot.get("checkpoint")
    checkpoint_label = snapshot.get("pending_label")
    pinned: List[str] = []
    try:
        for point in points:
            if point.label in completed:
                continue
            if control.cancel.is_set():
                return "cancelled", None
            if control.pause.is_set():
                return "paused", sweep_snapshot(completed, None, None)
            resume: Optional[ReplayCheckpoint] = None
            if checkpoint_data is not None and point.label == checkpoint_label:
                try:
                    resume = ReplayCheckpoint.from_dict(checkpoint_data)
                except Exception as error:  # noqa: BLE001 - corrupt snapshot
                    return "failed", _error_details(error)
            span = None
            if tracer is not None and tracer.enabled:
                span = tracer.begin(
                    f"point:{point.label}", "daemon", sweep_point=point.label
                )
            try:
                status, value = _run_point(point, control, cache, inflight, resume, pinned)
            except ReplayPaused as paused:
                if tracer is not None:
                    if span is not None:
                        span.attributes["status"] = "paused"
                    tracer.end(span)
                if control.cancel.is_set():
                    return "cancelled", None
                return "paused", sweep_snapshot(
                    completed, point.label, paused.checkpoint.to_dict()
                )
            if tracer is not None:
                if span is not None:
                    span.attributes["status"] = status
                tracer.end(span)
            if status == "cancelled":
                return "cancelled", None
            if status == "paused":
                return "paused", sweep_snapshot(completed, None, None)
            if status == "failed":
                return "failed", value
            assert isinstance(value, ReplayResultSummary)
            completed[point.label] = {
                "cache_key": point.cache_key,
                "trace": point.trace_name,
                "device": point.config.device,
                "cached": status == "cached",
                "summary": value.to_dict(),
            }
        return "completed", _sweep_result(points, completed)
    finally:
        if cache is not None:
            for key in pinned:
                cache.unpin(key)


def _run_point(
    point: ReplayJob,
    control: JobControl,
    cache: Optional[ResultCache],
    inflight: Optional[InflightRegistry],
    resume: Optional[ReplayCheckpoint],
    pinned: List[str],
) -> Tuple[str, Any]:
    """One grid point: cache, then in-flight coordination, then replay.

    Returns ("cached" | "replayed", summary), ("failed", error details),
    ("cancelled" | "paused", None) — or raises
    :class:`~repro.core.pipeline.ReplayPaused` from inside the replay.
    """
    key = point.cache_key
    if cache is not None and key not in pinned:
        cache.pin(key)
        pinned.append(key)
    while True:
        if cache is not None:
            summary = cache.get(key)
            if summary is not None:
                return "cached", summary
        if inflight is None:
            event, mine = None, True
        else:
            event, mine = inflight.claim(key)
        if not mine:
            # Another job is pricing this exact point; wait for it, but
            # keep honouring our own pause/cancel while parked.
            assert event is not None
            while not event.wait(timeout=0.05):
                if control.cancel.is_set():
                    return "cancelled", None
                if control.pause.is_set():
                    return "paused", None
            continue  # owner released: re-read the cache
        try:
            replayer = BatchReplayer(
                cache=cache, backend="serial", pause_check=control.interrupted
            )
            batch = replayer.run(
                [point], resume_from={point.label: resume} if resume is not None else None
            )
        finally:
            if inflight is not None:
                inflight.release(key)
        (result,) = list(batch)
        if not result.ok:
            return "failed", {
                "error": result.error,
                "error_type": result.error_type,
                "traceback": result.traceback,
            }
        return ("cached" if result.cached else "replayed"), result.summary


def _sweep_result(
    points: List[ReplayJob], completed: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """The completed job's result payload, rows in grid order."""
    rows = [
        {
            "label": point.label,
            "trace": completed[point.label]["trace"],
            "device": completed[point.label]["device"],
            "cached": completed[point.label]["cached"],
            "cache_key": completed[point.label]["cache_key"],
            "summary": completed[point.label]["summary"],
        }
        for point in points
    ]
    cached = sum(1 for row in rows if row["cached"])
    return {
        "kind": "sweep",
        "points": rows,
        "total": len(rows),
        "cached": cached,
        "replayed": len(rows) - cached,
    }


# ----------------------------------------------------------------------
# Cluster jobs
# ----------------------------------------------------------------------
def run_cluster_job(
    record: JobRecord, control: JobControl, tracer: Optional[Any] = None
) -> Outcome:
    """Co-replay a fleet; pause lands at a scheduler-step boundary and
    resume re-runs from scratch (deterministic, so byte-identical)."""
    payload = record.spec.payload
    try:
        config = ReplayConfig.from_dict(payload.get("config") or {})
        replayer = ClusterReplayer(config)
        replayer.scheduler_interrupt = control.interrupted
        fleet = ClusterReplayer.load_fleet(payload["trace_dir"])
    except Exception as error:  # noqa: BLE001
        return "failed", _error_details(error)
    # Lifecycle spans only: the full per-rank Gantt would accumulate
    # unbounded on a long-lived daemon tracer, so replayer.tracer stays
    # unset here (export the Gantt via the CLI / ClusterSession instead).
    span = None
    if tracer is not None and tracer.enabled:
        span = tracer.begin("cluster:replay", "daemon", ranks=len(fleet))
    try:
        report = replayer.replay(fleet)
    except ClusterPaused as paused:
        if tracer is not None:
            if span is not None:
                span.attributes["status"] = "paused"
            tracer.end(span)
        if control.cancel.is_set():
            return "cancelled", None
        return "paused", cluster_snapshot(paused.completed_steps)
    except Exception as error:  # noqa: BLE001
        if tracer is not None:
            if span is not None:
                span.attributes["status"] = "failed"
            tracer.end(span)
        return "failed", _error_details(error)
    if tracer is not None:
        if span is not None:
            span.attributes["status"] = "completed"
        tracer.end(span)
    return "completed", {"kind": "cluster", "report": report.to_dict()}


def run_job(
    record: JobRecord,
    control: JobControl,
    cache: Optional[ResultCache],
    inflight: Optional[InflightRegistry],
    tracer: Optional[Any] = None,
) -> Outcome:
    """Dispatch on the job kind."""
    if record.spec.kind == "sweep":
        return run_sweep_job(record, control, cache, inflight, tracer=tracer)
    return run_cluster_job(record, control, tracer=tracer)


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
class JobExecutor:
    """Worker threads draining the daemon's queue.

    The threads only pop ids and hand them to ``execute`` (the daemon's
    transition-managing entry point); all job state lives there.
    """

    def __init__(self, queue, execute, workers: int = 2) -> None:
        self.queue = queue
        self.execute = execute
        self.workers = max(1, int(workers))
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-daemon-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _loop(self) -> None:
        while not self._stop.is_set():
            job_id = self.queue.pop(timeout=0.2)
            if job_id is not None:
                self.execute(job_id)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
