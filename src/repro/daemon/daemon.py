"""The daemon core: one object tying store, queue, cache and executor.

:class:`ReplayDaemon` is the long-running service behind ``python -m repro
serve`` — and a perfectly usable in-process object (the test suite drives
it directly; the HTTP layer in :mod:`repro.daemon.server` is a thin
wrapper over its public methods).  Responsibilities:

* **Lifecycle** — ``submit`` / ``pause`` / ``resume`` / ``cancel`` apply
  the job state machine under one lock, write-through to the
  :class:`~repro.daemon.store.JobStore`, and wake any ``wait``-ers.
* **Multi-tenant hygiene** — every job belongs to the client that
  submitted it; operations on someone else's job raise
  :class:`JobAccessError` (the HTTP layer maps it to 403).  Scheduling is
  fair across owners (:class:`~repro.daemon.queue.JobQueue`), and the
  shared :class:`~repro.service.cache.ResultCache` is bounded with
  LRU+TTL eviction that never touches a running job's pinned inputs.
* **Restart recovery** — construction replays the store: terminal jobs
  are served from their records, paused jobs keep their snapshots
  (resume works across restarts), and jobs that were mid-flight when the
  process died are requeued.

A replay is a pure function of (trace, config), so everything the daemon
serves — results, resumed jobs, cache hits — is byte-identical to what an
uninterrupted inline run would produce.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.daemon.executor import InflightRegistry, JobControl, JobExecutor, run_job
from repro.daemon.jobs import (
    DAEMON_SCHEMA_VERSION,
    JOB_STATES,
    JobRecord,
    JobSpec,
    JobStateError,
    job_sort_key,
    new_job_id,
)
from repro.daemon.queue import JobQueue
from repro.daemon.store import JobStore
from repro.service.cache import ResultCache
from repro.telemetry import MetricsRegistry, Tracer
from repro.version import __version__

#: Job states whose entry increments a lifecycle counter.
_TRANSITION_COUNTERS = {
    "completed": "repro_jobs_completed_total",
    "failed": "repro_jobs_failed_total",
    "cancelled": "repro_jobs_cancelled_total",
    "paused": "repro_jobs_paused_total",
}


class JobAccessError(PermissionError):
    """The requesting client does not own the job."""


class UnknownJobError(KeyError):
    """No job with the given id."""

    def __str__(self) -> str:  # KeyError repr-quotes its message
        return self.args[0] if self.args else ""


class ReplayDaemon:
    """The replay service: async job queue over the batch/cluster layers.

    Parameters
    ----------
    state_dir:
        Where job records (and, by default, the result cache) live; the
        daemon recovers from whatever it finds there.
    cache_dir / cache_max_entries / cache_ttl_s:
        Result-cache location and bounds (LRU + TTL; pinned keys of
        running jobs are never evicted).
    workers:
        Executor thread count — concurrent jobs, not concurrent points;
        each job replays its points serially so it stays pausable.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        cache_dir: Optional[Union[str, Path]] = None,
        cache_max_entries: Optional[int] = None,
        cache_ttl_s: Optional[float] = None,
        workers: int = 2,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.store = JobStore(self.state_dir)
        self.queue = JobQueue()
        self.cache = ResultCache(
            cache_dir if cache_dir is not None else self.state_dir / "cache",
            max_entries=cache_max_entries,
            ttl_s=cache_ttl_s,
        )
        self.inflight = InflightRegistry()
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._records: Dict[str, JobRecord] = {}
        self._controls: Dict[str, JobControl] = {}
        self._seq = 0
        self._started_monotonic = time.monotonic()
        #: Service metrics, exposed as Prometheus text on ``GET /metrics``
        #: and (counter totals) inside ``/health``.
        self.metrics = MetricsRegistry()
        #: Job lifecycle spans (one per executed job, correlated by
        #: job id / owner / kind) land here.
        self.tracer = Tracer()
        self._init_metrics()
        self.executor = JobExecutor(self.queue, self._execute, workers=workers)
        self._recover()

    def _init_metrics(self) -> None:
        """Register every metric up front so ``/metrics`` exposes a stable
        set from the first scrape (zeros instead of missing series)."""
        self.metrics.counter(
            "repro_jobs_submitted_total", "Jobs accepted by submit()."
        )
        self.metrics.counter(
            "repro_jobs_completed_total", "Jobs that reached the completed state."
        )
        self.metrics.counter(
            "repro_jobs_failed_total", "Jobs that reached the failed state."
        )
        self.metrics.counter(
            "repro_jobs_cancelled_total", "Jobs that reached the cancelled state."
        )
        self.metrics.counter(
            "repro_jobs_paused_total", "Pause acknowledgements (entries into paused)."
        )
        self.metrics.counter(
            "repro_jobs_resumed_total", "Paused jobs requeued by resume()."
        )
        self.metrics.gauge("repro_jobs_running", "Jobs currently executing.")
        self.metrics.gauge("repro_queue_depth", "Jobs waiting in the queue.")
        self.metrics.histogram(
            "repro_job_duration_seconds", "Wall time of one executor run of a job."
        )

    def _count_transition(self, state: str) -> None:
        name = _TRANSITION_COUNTERS.get(state)
        if name is not None:
            self.metrics.counter(name).inc()

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        for record in self.store.recover():
            self._records[record.id] = record
            self._seq = max(self._seq, record.seq)
            if record.state == "queued":
                self.queue.push(record.priority, record.owner, record.seq, record.id)

    def start(self) -> None:
        self.executor.start()

    def stop(self) -> None:
        self.executor.stop()

    def __enter__(self) -> "ReplayDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client operations (the REST surface)
    # ------------------------------------------------------------------
    def submit(self, owner: str, spec: JobSpec, priority: int = 0) -> JobRecord:
        if not owner:
            raise ValueError("a job must be submitted with a client (owner) id")
        with self._changed:
            self._seq += 1
            record = JobRecord(
                id=new_job_id(),
                owner=owner,
                spec=spec,
                priority=int(priority),
                seq=self._seq,
            )
            self._records[record.id] = record
            self.store.save(record)
            self.queue.push(record.priority, record.owner, record.seq, record.id)
            self.metrics.counter("repro_jobs_submitted_total").inc()
            self._changed.notify_all()
            return record

    def get(self, job_id: str, owner: Optional[str] = None) -> JobRecord:
        """The job record; with ``owner`` given, enforce ownership."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJobError(f"no job {job_id!r}")
            if owner is not None and record.owner != owner:
                raise JobAccessError(
                    f"job {job_id} belongs to {record.owner!r}, not {owner!r}"
                )
            return record

    def list_jobs(self, owner: Optional[str] = None) -> List[JobRecord]:
        with self._lock:
            records = [
                record
                for record in self._records.values()
                if owner is None or record.owner == owner
            ]
        return sorted(records, key=job_sort_key)

    def pause(self, job_id: str, owner: Optional[str] = None) -> JobRecord:
        """Request a pause; acknowledged at the next checkpoint boundary."""
        with self._changed:
            record = self.get(job_id, owner)
            if record.state == "queued":
                self.queue.remove(job_id)
                record.transition("paused")
                self._count_transition("paused")
            elif record.state == "running":
                control = self._controls.get(job_id)
                if control is not None:
                    control.pause.set()
                record.transition("pausing")
            elif record.state in ("pausing", "paused"):
                return record  # idempotent
            else:
                raise JobStateError(f"job {job_id} cannot pause from {record.state!r}")
            self.store.save(record)
            self._changed.notify_all()
            return record

    def resume(self, job_id: str, owner: Optional[str] = None) -> JobRecord:
        """Requeue a paused job; its snapshot rides along, so completed
        work is never repriced (and works across daemon restarts)."""
        with self._changed:
            record = self.get(job_id, owner)
            if record.state != "paused":
                raise JobStateError(f"job {job_id} cannot resume from {record.state!r}")
            record.transition("queued")
            self._controls.pop(job_id, None)  # fresh flags on the next run
            self.metrics.counter("repro_jobs_resumed_total").inc()
            self.store.save(record)
            self.queue.push(record.priority, record.owner, record.seq, record.id)
            self._changed.notify_all()
            return record

    def cancel(self, job_id: str, owner: Optional[str] = None) -> JobRecord:
        with self._changed:
            record = self.get(job_id, owner)
            if record.state == "queued":
                self.queue.remove(job_id)
                record.transition("cancelled")
                record.snapshot = None
                self._count_transition("cancelled")
                self.store.save(record)
            elif record.state in ("running", "pausing"):
                control = self._controls.get(job_id)
                if control is not None:
                    control.cancel.set()
                # State lands on "cancelled" when the replay acknowledges.
            elif record.state == "paused":
                record.transition("cancelled")
                record.snapshot = None
                self._count_transition("cancelled")
                self.store.save(record)
            elif record.state != "cancelled":
                raise JobStateError(f"job {job_id} cannot cancel from {record.state!r}")
            self._changed.notify_all()
            return record

    def result(self, job_id: str, owner: Optional[str] = None) -> Dict[str, Any]:
        record = self.get(job_id, owner)
        if record.state != "completed" or record.result is None:
            raise JobStateError(
                f"job {job_id} has no result (state: {record.state!r})"
            )
        return record.result

    def analysis(self, job_id: str, owner: Optional[str] = None) -> Dict[str, Any]:
        """Insights diagnosis of a completed job's stored result.

        Cluster jobs get critical-path attribution from the persisted
        report; sweeps get a spread/outlier summary — without the tenant
        downloading any traces.  Raises :class:`JobStateError` until the
        job completes, like :meth:`result`.
        """
        result = self.result(job_id, owner)
        from repro.insights import analyze_job_result

        return analyze_job_result(result)

    def snapshot_of(self, job_id: str, owner: Optional[str] = None) -> Dict[str, Any]:
        record = self.get(job_id, owner)
        if record.snapshot is None:
            raise JobStateError(
                f"job {job_id} has no snapshot (state: {record.state!r}; snapshots "
                "are captured when a pause is acknowledged)"
            )
        return record.snapshot

    def health(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
        return {
            "schema_version": DAEMON_SCHEMA_VERSION,
            "version": __version__,
            "jobs": states,
            # Zero-filled per-state depths: monitoring reads a stable shape
            # instead of states appearing as jobs first reach them.
            "jobs_by_state": {state: states.get(state, 0) for state in JOB_STATES},
            "uptime_s": time.monotonic() - self._started_monotonic,
            "queue_depth": len(self.queue),
            "queue_by_owner": self.queue.depth_by_owner(),
            "workers": self.executor.workers,
            "cache": self.cache.stats(),
            "telemetry": self.metrics.counter_totals(),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service metrics (the body of
        the HTTP layer's ``GET /metrics``); point-in-time gauges are
        refreshed at scrape time."""
        with self._lock:
            running = sum(
                1 for record in self._records.values() if record.state == "running"
            )
        self.metrics.gauge("repro_jobs_running").set(running)
        self.metrics.gauge("repro_queue_depth").set(len(self.queue))
        return self.metrics.render_prometheus()

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        until: tuple = ("completed", "failed", "cancelled", "paused"),
    ) -> JobRecord:
        """Block until the job reaches one of ``until`` (default: any
        resting state).  Primarily for tests and the synchronous CLI."""
        deadline = timeout
        with self._changed:
            while True:
                record = self.get(job_id)
                if record.state in until:
                    return record
                if deadline <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {record.state!r} after {timeout}s"
                    )
                step = min(0.25, deadline)
                self._changed.wait(timeout=step)
                deadline -= step

    # ------------------------------------------------------------------
    # Executor entry point
    # ------------------------------------------------------------------
    def _execute(self, job_id: str) -> None:
        with self._changed:
            record = self._records.get(job_id)
            if record is None or record.state != "queued":
                return  # cancelled/paused while sitting in the queue
            control = JobControl()
            self._controls[job_id] = control
            record.transition("running")
            self.store.save(record)
            self._changed.notify_all()
        started = time.monotonic()
        self.metrics.gauge("repro_jobs_running").add(1)
        with self.tracer.scope(job_id=job_id, owner=record.owner):
            span = self.tracer.begin(f"job:{record.spec.kind}", "daemon")
            try:
                status, value = run_job(
                    record, control, self.cache, self.inflight, tracer=self.tracer
                )
            finally:
                self.metrics.gauge("repro_jobs_running").add(-1)
                self.metrics.histogram("repro_job_duration_seconds").observe(
                    time.monotonic() - started
                )
        with self._changed:
            if status == "completed":
                record.transition("completed")
                record.result = value
                record.snapshot = None
            elif status == "paused":
                if record.state == "running":  # pause flag raced the ack
                    record.transition("pausing")
                record.transition("paused")
                record.snapshot = value
            elif status == "cancelled":
                record.transition("cancelled")
                record.snapshot = None
            else:
                record.transition("failed")
                details = value or {}
                record.error = details.get("error")
                record.error_type = details.get("error_type")
                record.traceback = details.get("traceback")
            self._count_transition(record.state)
            self.tracer.end(span)
            if span is not None:
                span.attributes["outcome"] = record.state
            self._controls.pop(job_id, None)
            self.store.save(record)
            self._changed.notify_all()
