"""Durable job state: one JSON file per job under the daemon's state dir.

The daemon must survive restarts with its queue, results and snapshots
intact — a paused job snapshotted before a restart resumes afterwards and
still produces byte-identical results.  The store is therefore
write-through: every state transition persists the full
:class:`~repro.daemon.jobs.JobRecord` before the transition is visible to
clients.  Writes are atomic (tmp file + ``os.replace``), the same
discipline as the result cache, so a crash mid-write leaves the previous
record rather than a torn one.

Layout::

    <state_dir>/jobs/<job_id>.json

:meth:`JobStore.recover` is the restart path: it loads every record,
re-marks jobs that were mid-flight when the process died (``running`` /
``pausing``) back to ``queued`` — their snapshot, if any, rides along so
completed work is not repriced — and returns the records in submission
order so the caller can rebuild the queue deterministically.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.daemon.jobs import JobRecord, job_sort_key


class JobStore:
    """Directory-backed persistence for job records."""

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.root = Path(state_dir)
        self.jobs_dir = self.root / "jobs"
        self._lock = threading.Lock()

    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    # ------------------------------------------------------------------
    def save(self, record: JobRecord) -> Path:
        """Persist ``record`` atomically (write-through on every change)."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(record.id)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with self._lock:
            tmp.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True))
            os.replace(tmp, path)
        return path

    def load(self, job_id: str) -> Optional[JobRecord]:
        path = self._path(job_id)
        try:
            return JobRecord.from_dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            return None

    def load_all(self) -> List[JobRecord]:
        """Every readable record, in submission order; unreadable files
        are skipped (a torn tmp file must not wedge startup)."""
        if not self.jobs_dir.is_dir():
            return []
        records = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                records.append(JobRecord.from_dict(json.loads(path.read_text())))
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue
        records.sort(key=job_sort_key)
        return records

    def delete(self, job_id: str) -> bool:
        try:
            self._path(job_id).unlink()
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    def recover(self) -> List[JobRecord]:
        """Restart path: load everything, requeue interrupted jobs.

        Jobs that were ``running`` or ``pausing`` when the daemon died go
        back to ``queued`` (write-through, so the repair is durable too);
        ``paused`` jobs stay paused — resuming is the owner's call.
        """
        records = self.load_all()
        for record in records:
            if record.state in ("running", "pausing"):
                record.state = "queued"
                self.save(record)
        return records

    def max_seq(self) -> int:
        records = self.load_all()
        return max((record.seq for record in records), default=0)


def state_counts(records: Dict[str, JobRecord]) -> Dict[str, int]:
    """State -> job count, for the health payload."""
    counts: Dict[str, int] = {}
    for record in records.values():
        counts[record.state] = counts.get(record.state, 0) + 1
    return counts
