"""repro.daemon — the persistent multi-tenant replay service.

A long-running server (``python -m repro serve``) hosting an async job
queue over the batch/cluster replay layers, with a stdlib REST/JSON API
and a client CLI (``repro submit/status/result/cancel/pause/resume/
snapshot``).  Jobs are checkpointable: an in-flight sweep or cluster
replay can be paused at a deterministic boundary, snapshotted to disk,
and resumed — including across daemon restarts — with byte-identical
results.  See ``docs/daemon.md``.

Layering (each module only imports downward):

``jobs``      plain-data job model: specs, records, the state machine
``queue``     fair scheduling: priority, per-owner round-robin, FIFO
``store``     write-through persistence + restart recovery
``executor``  worker pool, cooperative pause, exactly-once point pricing
``daemon``    :class:`ReplayDaemon` — the orchestrator tying it together
``server``    ``http.server`` REST front-end
``client``    ``urllib`` client the CLI subcommands use
"""

from repro.daemon.daemon import JobAccessError, ReplayDaemon, UnknownJobError
from repro.daemon.executor import InflightRegistry, JobControl, JobExecutor
from repro.daemon.jobs import (
    DAEMON_SCHEMA_VERSION,
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStateError,
    cluster_snapshot,
    sweep_snapshot,
)
from repro.daemon.queue import JobQueue
from repro.daemon.store import JobStore

__all__ = [
    "DAEMON_SCHEMA_VERSION",
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "InflightRegistry",
    "JobAccessError",
    "JobControl",
    "JobExecutor",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStateError",
    "JobStore",
    "ReplayDaemon",
    "UnknownJobError",
    "cluster_snapshot",
    "sweep_snapshot",
]
