"""Job model of the replay daemon: specs, states, records, snapshots.

A *job* is one unit of client-submitted work — a whole sweep (traces x
devices x config axes, exactly what ``repro sweep`` runs inline) or one
cluster co-replay — owned by the client that submitted it and scheduled by
the daemon's queue.  The model here is deliberately plain data: every
record round-trips through JSON (the store persists one file per job, the
REST API serves the same dicts), and everything execution-related (thread
handles, pause events) lives in the executor, keyed by job id.

The **state machine**::

    queued ──▶ running ──▶ completed
      │          │ ▲            ▲
      │          ▼ │            │
      │       pausing           │
      │          │              │
      ▼          ▼              │
    cancelled ◀─ paused ──(resume: back to queued)
                 │
                 └──▶ cancelled

plus ``running → failed`` when the replay itself errors.  ``pausing`` is
the cooperative window between a client's pause request and the replay
acknowledging it at the next checkpoint boundary (op-program iteration
boundary for sweeps, scheduler-step boundary for cluster jobs).

A paused sweep job carries a :data:`snapshot <JobRecord.snapshot>`: the
summaries of every completed grid point (so resume never re-prices them,
even if the result cache evicted the entries meanwhile) plus the
in-flight point's :class:`~repro.core.pipeline.ReplayCheckpoint`.  A
paused cluster job records only how many scheduler steps had run: fleet
replay is deterministic, so resume re-executes from scratch and is
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Version stamped on every persisted job record and daemon payload; bump
#: on any shape change so a restarted daemon never misreads old state.
DAEMON_SCHEMA_VERSION = 1

#: Job kinds the executor knows how to run.
JOB_KINDS = ("sweep", "cluster")

#: All states; terminal ones never transition again.
JOB_STATES = ("queued", "running", "pausing", "paused", "completed", "failed", "cancelled")
TERMINAL_STATES = frozenset({"completed", "failed", "cancelled"})

#: Legal (from, to) transitions; everything else is a caller bug.
_TRANSITIONS = frozenset(
    {
        ("queued", "running"),
        ("queued", "paused"),  # pause before the executor picked it up
        ("queued", "cancelled"),
        ("running", "pausing"),
        ("running", "completed"),
        ("running", "failed"),
        ("running", "cancelled"),
        ("pausing", "paused"),
        ("pausing", "completed"),  # pause lost the race with the finish line
        ("pausing", "failed"),
        ("pausing", "cancelled"),
        ("paused", "queued"),  # resume
        ("paused", "cancelled"),
    }
)


class JobStateError(RuntimeError):
    """An operation is illegal in the job's current state."""


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class JobSpec:
    """What to replay.  ``kind`` selects the executor path; ``payload``
    holds the kind-specific arguments (JSON-primitive values only):

    ``"sweep"``
        ``{"repo": dir, "traces": [...] | None, "devices": [...],
        "axes": {field: [values]}, "base": ReplayConfig dict}``
    ``"cluster"``
        ``{"trace_dir": dir, "config": ReplayConfig dict}``
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "payload": dict(self.payload)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(kind=data["kind"], payload=dict(data.get("payload") or {}))


@dataclass
class JobRecord:
    """One job's full persisted state (see the module docstring for the
    state machine).  Everything here serialises; runtime-only handles live
    in the executor."""

    id: str
    owner: str
    spec: JobSpec
    priority: int = 0
    state: str = "queued"
    #: Monotonic submission sequence — the FIFO axis of the scheduler.
    seq: int = 0
    #: Populated on ``failed`` (message, exception type, full traceback).
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    #: Populated on ``completed``: the job's JSON result payload.
    result: Optional[Dict[str, Any]] = None
    #: Populated on ``paused``: enough to resume without recomputation.
    snapshot: Optional[Dict[str, Any]] = None
    schema_version: int = DAEMON_SCHEMA_VERSION

    # ------------------------------------------------------------------
    def transition(self, new_state: str) -> None:
        """Move to ``new_state``; raise :class:`JobStateError` otherwise."""
        if (self.state, new_state) not in _TRANSITIONS:
            raise JobStateError(
                f"job {self.id} cannot go {self.state!r} -> {new_state!r}"
            )
        self.state = new_state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "id": self.id,
            "owner": self.owner,
            "spec": self.spec.to_dict(),
            "priority": self.priority,
            "state": self.state,
            "seq": self.seq,
            "error": self.error,
            "error_type": self.error_type,
            "traceback": self.traceback,
            "result": self.result,
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        version = data.get("schema_version")
        if version != DAEMON_SCHEMA_VERSION:
            raise ValueError(
                f"job record schema version {version!r} != {DAEMON_SCHEMA_VERSION}"
            )
        return cls(
            id=data["id"],
            owner=data["owner"],
            spec=JobSpec.from_dict(data["spec"]),
            priority=int(data.get("priority", 0)),
            state=data["state"],
            seq=int(data.get("seq", 0)),
            error=data.get("error"),
            error_type=data.get("error_type"),
            traceback=data.get("traceback"),
            result=data.get("result"),
            snapshot=data.get("snapshot"),
        )


def sweep_snapshot(
    completed: Dict[str, Dict[str, Any]],
    pending_label: Optional[str],
    checkpoint: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """Snapshot of a paused sweep job.

    ``completed`` maps point labels to ``{"cache_key", "summary",
    "cached"}`` — the summary rides in the snapshot itself so resume is
    immune to cache eviction.  ``checkpoint`` is the in-flight point's
    :meth:`~repro.core.pipeline.ReplayCheckpoint.to_dict` (or ``None``
    when the pause landed exactly between points).
    """
    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "kind": "sweep",
        "completed": completed,
        "pending_label": pending_label,
        "checkpoint": checkpoint,
    }


def cluster_snapshot(completed_steps: int) -> Dict[str, Any]:
    """Snapshot of a paused cluster job: the step count is purely
    informational — resume re-runs the (deterministic) fleet from scratch
    and produces a byte-identical report."""
    return {
        "schema_version": DAEMON_SCHEMA_VERSION,
        "kind": "cluster",
        "completed_steps": int(completed_steps),
    }


def job_sort_key(record: JobRecord) -> tuple:
    """Canonical listing order: submission order."""
    return (record.seq, record.id)


def validate_states(records: List[JobRecord]) -> None:
    for record in records:
        if record.state not in JOB_STATES:
            raise ValueError(f"job {record.id} has unknown state {record.state!r}")
