"""Fair multi-tenant job scheduling: priorities first, then round-robin.

The daemon serves several clients from one queue, so plain FIFO lets a
single tenant bury everyone else under a burst of submissions.  The
discipline here:

1. **Priority** — a higher :attr:`~repro.daemon.jobs.JobRecord.priority`
   always dispatches first (the operator's escape hatch).
2. **Per-owner round-robin** — within a priority level, the owner who has
   been *served least* goes next, so interleaved tenants make equal
   progress no matter how many jobs each has queued.
3. **FIFO** — within one owner, submission order (the ``seq`` stamped at
   submit time) breaks ties, and also orders owners that are tied on the
   served count, so dispatch is fully deterministic.

The queue stores job *ids* only; records live in the store.  It is a
coordination point between the submitting threads (HTTP handlers) and the
executor's workers, hence the condition variable: :meth:`pop` blocks until
a job or shutdown arrives.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

#: (priority, owner, seq, job_id) — everything dispatch needs.
_Entry = Tuple[int, str, int, str]


class JobQueue:
    """Priority + fair-share queue of queued job ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._entries: List[_Entry] = []
        #: owner -> jobs dispatched so far (the fairness ledger).
        self._served: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def push(self, priority: int, owner: str, seq: int, job_id: str) -> None:
        with self._ready:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._entries.append((priority, owner, seq, job_id))
            self._ready.notify()

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation); True when it was present."""
        with self._ready:
            for index, entry in enumerate(self._entries):
                if entry[3] == job_id:
                    del self._entries[index]
                    return True
            return False

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next job id under the fairness discipline; ``None`` on shutdown
        or timeout.  Blocks while the queue is empty."""
        with self._ready:
            while not self._entries and not self._closed:
                if not self._ready.wait(timeout=timeout):
                    return None
            if not self._entries:
                return None
            entry = min(self._entries, key=self._dispatch_key)
            self._entries.remove(entry)
            self._served[entry[1]] = self._served.get(entry[1], 0) + 1
            return entry[3]

    def _dispatch_key(self, entry: _Entry) -> tuple:
        priority, owner, seq, _ = entry
        # Max priority first (negate), then least-served owner, then FIFO.
        return (-priority, self._served.get(owner, 0), seq)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Wake every blocked :meth:`pop` with ``None`` (shutdown)."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def depth_by_owner(self) -> Dict[str, int]:
        with self._lock:
            depths: Dict[str, int] = {}
            for _, owner, _, _ in self._entries:
                depths[owner] = depths.get(owner, 0) + 1
            return depths
