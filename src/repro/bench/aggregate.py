"""Aggregate reporting over batch replay results.

The single-trace reporting in :mod:`repro.bench.reporting` renders one
table or figure at a time; this module rolls the per-job results of a
:class:`~repro.service.batch.BatchResult` up into the summaries a sweep
prints: one row per job, per-device aggregates, and cache statistics.
It deliberately depends only on the job-result shape (label, config,
summary, cached flag), not on the service layer itself, so ``bench``
stays importable without ``service`` and vice versa.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bench.reporting import format_table

#: Columns of the per-job report, in display order.
BATCH_REPORT_HEADERS: Sequence[str] = (
    "job",
    "device",
    "status",
    "time_ms",
    "sm_util_%",
    "hbm_gbps",
    "power_w",
    "ops",
)


def batch_report_rows(results: Iterable) -> List[List[object]]:
    """One display row per :class:`~repro.service.batch.ReplayJobResult`."""
    rows: List[List[object]] = []
    for result in results:
        if result.ok:
            summary = result.summary
            rows.append(
                [
                    result.job.label,
                    result.job.config.device,
                    "cached" if result.cached else "replayed",
                    summary.mean_iteration_time_ms,
                    summary.sm_utilization_pct,
                    summary.hbm_bandwidth_gbps,
                    summary.gpu_power_w,
                    summary.replayed_ops,
                ]
            )
        else:
            rows.append(
                [result.job.label, result.job.config.device, f"error: {result.error}",
                 "-", "-", "-", "-", "-"]
            )
    return rows


def format_batch_report(results: Iterable, title: str = "Batch replay results") -> str:
    """Fixed-width text table over all job results."""
    return format_table(BATCH_REPORT_HEADERS, batch_report_rows(results), title=title)


def aggregate_by_device(results: Iterable) -> Dict[str, Dict[str, float]]:
    """Mean measurements per device across all successful jobs.

    Returns ``device -> {jobs, mean_time_ms, mean_sm_util_pct,
    mean_power_w}``, the cross-platform comparison a sweep is usually after
    (Figure 7 / Figure 10 style).
    """
    grouped: Dict[str, List] = {}
    for result in results:
        if result.ok:
            grouped.setdefault(result.job.config.device, []).append(result.summary)
    aggregated: Dict[str, Dict[str, float]] = {}
    for device, summaries in grouped.items():
        count = float(len(summaries))
        aggregated[device] = {
            "jobs": count,
            "mean_time_ms": sum(s.mean_iteration_time_ms for s in summaries) / count,
            "mean_sm_util_pct": sum(s.sm_utilization_pct for s in summaries) / count,
            "mean_power_w": sum(s.gpu_power_w for s in summaries) / count,
        }
    return aggregated


def format_device_aggregate(results: Iterable, title: str = "Per-device aggregate") -> str:
    """Text table of :func:`aggregate_by_device`."""
    aggregated = aggregate_by_device(results)
    headers = ["device", "jobs", "mean_time_ms", "mean_sm_util_%", "mean_power_w"]
    rows = [
        [device, int(stats["jobs"]), stats["mean_time_ms"], stats["mean_sm_util_pct"],
         stats["mean_power_w"]]
        for device, stats in sorted(aggregated.items())
    ]
    return format_table(headers, rows, title=title)


def cache_summary_line(batch) -> str:
    """One-line cache/replay accounting for a finished batch."""
    return (
        f"{len(batch)} jobs: {batch.replayed_count} replayed, "
        f"{batch.cached_count} from cache, {batch.error_count} failed"
    )
