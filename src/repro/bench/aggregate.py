"""Aggregate reporting over batch replay results.

The single-trace reporting in :mod:`repro.bench.reporting` renders one
table or figure at a time; this module rolls the per-job results of a
:class:`~repro.service.batch.BatchResult` up into the summaries a sweep
prints: one row per job, per-device aggregates, and cache statistics.
It deliberately depends only on the job-result shape (label, config,
summary, cached flag), not on the service layer itself, so ``bench``
stays importable without ``service`` and vice versa.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bench.reporting import format_table

#: Columns of the per-job report, in display order.
BATCH_REPORT_HEADERS: Sequence[str] = (
    "job",
    "device",
    "status",
    "time_ms",
    "sm_util_%",
    "hbm_gbps",
    "power_w",
    "ops",
)


def batch_report_rows(results: Iterable) -> List[List[object]]:
    """One display row per :class:`~repro.service.batch.ReplayJobResult`."""
    rows: List[List[object]] = []
    for result in results:
        if result.ok:
            summary = result.summary
            rows.append(
                [
                    result.job.label,
                    result.job.config.device,
                    "cached" if result.cached else "replayed",
                    summary.mean_iteration_time_ms,
                    summary.sm_utilization_pct,
                    summary.hbm_bandwidth_gbps,
                    summary.gpu_power_w,
                    summary.replayed_ops,
                ]
            )
        else:
            rows.append(
                [result.job.label, result.job.config.device, f"error: {result.error}",
                 "-", "-", "-", "-", "-"]
            )
    return rows


def format_batch_report(results: Iterable, title: str = "Batch replay results") -> str:
    """Fixed-width text table over all job results."""
    return format_table(BATCH_REPORT_HEADERS, batch_report_rows(results), title=title)


def aggregate_by_device(results: Iterable) -> Dict[str, Dict[str, float]]:
    """Mean measurements per device across all successful jobs.

    Returns ``device -> {jobs, mean_time_ms, mean_sm_util_pct,
    mean_power_w}``, the cross-platform comparison a sweep is usually after
    (Figure 7 / Figure 10 style).
    """
    grouped: Dict[str, List] = {}
    for result in results:
        if result.ok:
            grouped.setdefault(result.job.config.device, []).append(result.summary)
    aggregated: Dict[str, Dict[str, float]] = {}
    for device, summaries in grouped.items():
        count = float(len(summaries))
        aggregated[device] = {
            "jobs": count,
            "mean_time_ms": sum(s.mean_iteration_time_ms for s in summaries) / count,
            "mean_sm_util_pct": sum(s.sm_utilization_pct for s in summaries) / count,
            "mean_power_w": sum(s.gpu_power_w for s in summaries) / count,
        }
    return aggregated


def format_device_aggregate(results: Iterable, title: str = "Per-device aggregate") -> str:
    """Text table of :func:`aggregate_by_device`."""
    aggregated = aggregate_by_device(results)
    headers = ["device", "jobs", "mean_time_ms", "mean_sm_util_%", "mean_power_w"]
    rows = [
        [device, int(stats["jobs"]), stats["mean_time_ms"], stats["mean_sm_util_pct"],
         stats["mean_power_w"]]
        for device, stats in sorted(aggregated.items())
    ]
    return format_table(headers, rows, title=title)


def cache_summary_line(batch) -> str:
    """One-line cache/replay accounting for a finished batch."""
    return (
        f"{len(batch)} jobs: {batch.replayed_count} replayed, "
        f"{batch.cached_count} from cache, {batch.error_count} failed"
    )


#: Columns of the per-rank cluster report, in display order.
CLUSTER_REPORT_HEADERS: Sequence[str] = (
    "rank",
    "time_ms",
    "comm_ms",
    "exposed_comm_ms",
    "stall_ms",
    "sm_util_%",
    "power_w",
)


def format_cluster_report(report, title: str = "") -> str:
    """Text rendering of a :class:`~repro.cluster.engine.ClusterReport`:
    one row per rank plus the fleet-level critical-path summary."""
    if not title:
        title = (
            f"Cluster replay on {report.device}: {report.num_replicas} replica(s), "
            f"world size {report.world_size}"
        )
    rows = [
        [
            rank.rank,
            rank.mean_iteration_time_us / 1e3,
            rank.comm_time_us / 1e3,
            rank.exposed_comm_us / 1e3,
            rank.stall_us / 1e3,
            rank.summary.sm_utilization_pct,
            rank.summary.gpu_power_w,
        ]
        for rank in report.ranks
    ]
    table = format_table(CLUSTER_REPORT_HEADERS, rows, title=title)
    summary = (
        f"critical path {report.critical_path_us / 1e3:.3f} ms "
        f"(straggler: rank {report.straggler_rank}); "
        f"mean iteration {report.mean_iteration_time_us / 1e3:.3f} ms; "
        f"{report.matched_collectives} collectives matched, "
        f"{report.unmatched_collectives} unmatched; "
        f"skew max {report.max_skew_us:.1f} us / mean {report.mean_skew_us:.1f} us"
    )
    return f"{table}\n{summary}"
