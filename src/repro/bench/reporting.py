"""Plain-text reporting of tables and figure series.

Every benchmark in ``benchmarks/`` prints the rows/series of the paper's
table or figure it regenerates; the helpers here keep that output uniform
and readable in a terminal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

#: The MLPerf training benchmark list of Table 1 (static reference data),
#: used to motivate the staleness problem Mystique addresses.
MLPERF_TRAINING_BENCHMARKS: List[Dict[str, str]] = [
    {"area": "Vision", "model": "ResNet-50", "last_updated": "May 17, 2021"},
    {"area": "Vision", "model": "3D U-Net", "last_updated": "Apr 14, 2021"},
    {"area": "Vision", "model": "Mask R-CNN", "last_updated": "Mar 5, 2021"},
    {"area": "Language", "model": "RNN-T", "last_updated": "Apr 7, 2021"},
    {"area": "Language", "model": "BERT-large", "last_updated": "May 14, 2021"},
    {"area": "Commerce", "model": "DLRM", "last_updated": "Feb 9, 2021"},
    {"area": "Research", "model": "Mini Go", "last_updated": "Jun 19, 2020"},
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(series: Mapping[str, Mapping[object, float]], x_label: str = "x", title: str = "") -> str:
    """Render one or more named (x → y) series as a text table.

    Used for figure-style outputs (power sweeps, cross-platform bars) where
    each series is a line/bar group in the paper's plot.
    """
    x_values: List[object] = []
    for values in series.values():
        for x in values:
            if x not in x_values:
                x_values.append(x)
    headers = [x_label, *series.keys()]
    rows = []
    for x in x_values:
        rows.append([x, *(values.get(x, float("nan")) for values in series.values())])
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
