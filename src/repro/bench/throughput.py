"""Replay-engine throughput benchmark — the BENCH trajectory file.

Everything else under :mod:`repro.bench` measures the *simulated workload*;
this module measures the *replay engine itself*: how many recorded
operators per second the execute stage replays on the host, for the scalar
reference loop versus the vectorized executor
(:mod:`repro.core.vectorize`), plus the :class:`~repro.profiling.ProfileHook`
per-op overhead.  ``make bench`` (or ``make bench-fast``) writes the result
to ``BENCH_replay_throughput.json`` at the repository root so the numbers
form a trajectory across commits; the schema is versioned and asserted by
``benchmarks/test_bench_trajectory.py``.

Measurement notes:

* Throughput is measured around ``ExecuteStage._replay_once`` only — the
  build stages run once up front, then the loop replays the same selection
  repeatedly (the virtual clock just keeps advancing).  Two unmeasured
  warm-up passes let the vectorized executor capture and verify its op
  programs first, so the measured window reflects the steady state.
* The headline scalar/vectorized numbers both run with
  ``ReplayConfig(profile=False)``: the virtual profiler's ``TraceEvent``
  construction dominates the fast path and would understate the speedup of
  the pricing itself.  Equivalence (``tests/test_vectorized_equivalence.py``)
  is asserted for both profile settings.
* Profiler overhead compares the scalar loop with and without a
  :class:`~repro.profiling.ProfileHook` attached — the hook rides the
  ``notify = bool(context.hooks)`` branch, so the unhooked loop is the true
  zero-overhead baseline.
* All wall time comes from ``time.perf_counter()``
  (``scripts/check_deprecated_usage.py`` bans ``time.time`` here).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    ExecuteStage,
    InitCommsStage,
    ReplayContext,
    ReplayPipeline,
)
from repro.core.replayer import ReplayConfig
from repro.et.trace import ExecutionTrace
from repro.torchsim.profiler import ProfilerTrace

#: Bump when the serialized benchmark shape changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Trajectory file name, written at the repository root.
BENCH_FILENAME = "BENCH_replay_throughput.json"

#: BENCH-file section recording the event scheduler's fleet throughput.
CLUSTER_SCALE_SECTION = "cluster_scale"

#: BENCH-file section recording the daemon's sustained jobs/sec.
DAEMON_THROUGHPUT_SECTION = "daemon_throughput"

#: Interleaved-chunk overhead measurements jitter by roughly this much
#: (percent) on a quiet host.  Raw ratios inside ±this band are noise:
#: reported overheads are clamped at 0 so the regression watchdog never
#: adopts measurement jitter as a "telemetry is free" baseline, and the
#: raw value is kept alongside for provenance.
OVERHEAD_NOISE_FLOOR_PCT = 0.5

#: Sections owned by benchmarks other than the main throughput run;
#: :func:`write_report` carries them forward so whichever benchmark writes
#: second never clobbers the others' sections.
PRESERVED_SECTIONS = (CLUSTER_SCALE_SECTION, DAEMON_THROUGHPUT_SECTION)

#: Benchmarked workloads, in report order.
BENCH_WORKLOADS = ("param_linear", "rm", "ddp_rm")

#: The workload the ISSUE's >=10x speedup target is asserted on.
HEADLINE_WORKLOAD = "rm"


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


# ----------------------------------------------------------------------
# Workload captures (moderate configs: enough operators for a stable
# measurement, small enough that the whole benchmark stays in seconds)
# ----------------------------------------------------------------------
def _rm_config():
    from repro.workloads.rm import RMConfig

    return RMConfig(
        batch_size=128,
        num_tables=16,
        rows_per_table=2000,
        embedding_dim=32,
        pooling_factor=8,
        bottom_mlp=(64, 32, 32),
        top_mlp=(128, 64),
    )


def capture_bench_workload(
    name: str, device: str = "A100"
) -> Tuple[ExecutionTrace, Optional[ProfilerTrace]]:
    """One captured iteration of the named benchmark workload."""
    from repro.bench.harness import capture_workload

    if name == "param_linear":
        from repro.workloads.param_linear import ParamLinearConfig, ParamLinearWorkload

        workload = ParamLinearWorkload(
            ParamLinearConfig(batch_size=64, num_layers=8, hidden_size=128, input_size=128)
        )
    elif name == "rm":
        from repro.workloads.rm import RMWorkload

        workload = RMWorkload(_rm_config())
    elif name == "ddp_rm":
        from repro.workloads.ddp import DistributedRunner
        from repro.workloads.rm import RMWorkload

        runner = DistributedRunner(
            lambda rank, world_size: RMWorkload(
                _rm_config(), rank=rank, world_size=world_size
            ),
            world_size=2,
            device=device,
        )
        capture = runner.run_rank(0)
        return capture.execution_trace, capture.profiler_trace
    else:
        raise ValueError(f"unknown bench workload {name!r} (known: {BENCH_WORKLOADS})")
    capture = capture_workload(workload, device=device, warmup_iterations=1)
    return capture.execution_trace, capture.profiler_trace


# ----------------------------------------------------------------------
# The execute-loop throughput measurement
# ----------------------------------------------------------------------
def measure_execute_throughput(
    trace: ExecutionTrace,
    profiler_trace: Optional[ProfilerTrace] = None,
    device: str = "A100",
    vectorized: bool = True,
    hooks: Optional[Sequence[Any]] = None,
    min_seconds: float = 0.2,
    warmup_passes: int = 2,
) -> Dict[str, float]:
    """Replay ``trace``'s execute loop repeatedly and time it.

    Returns ``{"ops": <per-pass replayed ops>, "passes": <measured passes>,
    "elapsed_s": ..., "ops_per_sec": ...}``.  The loop keeps replaying
    whole passes until ``min_seconds`` of wall time accumulate, and
    ``ops_per_sec`` comes from the *fastest* pass: external host load can
    only ever slow a pass down, so the minimum is the most accurate sample
    and keeps the speedup assertions stable on noisy machines (same
    rationale as :func:`measure_profiler_overhead`).
    """
    config = ReplayConfig(device=device, vectorized=vectorized, profile=False)
    context = ReplayContext(
        trace=trace,
        profiler_trace=profiler_trace,
        config=config,
        hooks=list(hooks or ()),
    )
    ReplayPipeline.build_only().run_context(context)
    InitCommsStage().run(context)
    runtime = context.runtime
    stage = ExecuteStage()

    ops = 0
    for _ in range(max(1, warmup_passes)):
        ops, _skipped = stage._replay_once(context, runtime)
    if ops <= 0:
        raise ValueError("trace has no supported operators to benchmark")

    passes = 0
    elapsed = 0.0
    best_pass_s = float("inf")
    clock = time.perf_counter
    while elapsed < min_seconds:
        start = clock()
        stage._replay_once(context, runtime)
        pass_s = clock() - start
        elapsed += pass_s
        passes += 1
        if pass_s < best_pass_s:
            best_pass_s = pass_s
    return {
        "ops": float(ops),
        "passes": float(passes),
        "elapsed_s": elapsed,
        "ops_per_sec": ops / best_pass_s,
    }


def measure_profiler_overhead(
    trace: ExecutionTrace,
    profiler_trace: Optional[ProfilerTrace] = None,
    device: str = "A100",
    min_seconds: float = 0.2,
) -> Dict[str, float]:
    """Per-op cost of an attached :class:`~repro.profiling.ProfileHook`.

    Measured on the scalar loop (the hook rides the per-op ``notify``
    branch there); the unhooked loop is the zero-overhead baseline.  The
    two loops run *interleaved* (alternating which goes first, GC off) in
    several chunks; each chunk yields a profiled/baseline total-time ratio
    and the reported overhead is the *minimum* chunk ratio.  External load
    only ever inflates a ratio — the hook cannot make a pass faster — so
    the cleanest chunk is the most accurate estimate, which keeps this
    number assertable (<5%) on noisy CI machines.
    """
    import gc

    from repro.profiling import ProfileHook

    def build_context(hooks: Sequence[Any]) -> ReplayContext:
        config = ReplayConfig(device=device, vectorized=False, profile=False)
        context = ReplayContext(
            trace=trace,
            profiler_trace=profiler_trace,
            config=config,
            hooks=list(hooks),
        )
        ReplayPipeline.build_only().run_context(context)
        InitCommsStage().run(context)
        return context

    stage = ExecuteStage()
    baseline_ctx = build_context(())
    profiled_ctx = build_context((ProfileHook(),))
    ops = 0
    for context in (baseline_ctx, profiled_ctx):
        ops, _skipped = stage._replay_once(context, context.runtime)
    if ops <= 0:
        raise ValueError("trace has no supported operators to benchmark")

    clock = time.perf_counter
    chunks = 3
    chunk_seconds = max(min_seconds, 0.05)
    best_ratio = float("inf")
    best_baseline_s = float("inf")
    best_profiled_s = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _chunk in range(chunks):
            baseline_total = 0.0
            profiled_total = 0.0
            baseline_first = True
            while baseline_total + profiled_total < chunk_seconds:
                first, second = (
                    (baseline_ctx, profiled_ctx)
                    if baseline_first
                    else (profiled_ctx, baseline_ctx)
                )
                start = clock()
                stage._replay_once(first, first.runtime)
                mid = clock()
                stage._replay_once(second, second.runtime)
                end = clock()
                baseline_s, profiled_s = (
                    (mid - start, end - mid)
                    if baseline_first
                    else (end - mid, mid - start)
                )
                baseline_total += baseline_s
                profiled_total += profiled_s
                best_baseline_s = min(best_baseline_s, baseline_s)
                best_profiled_s = min(best_profiled_s, profiled_s)
                baseline_first = not baseline_first
            best_ratio = min(best_ratio, profiled_total / baseline_total)
    finally:
        if gc_was_enabled:
            gc.enable()
    raw_pct = (best_ratio - 1.0) * 100.0
    return {
        "baseline_ops_per_sec": ops / best_baseline_s,
        "profiled_ops_per_sec": ops / best_profiled_s,
        "overhead_pct": max(0.0, raw_pct),
        "overhead_raw_pct": raw_pct,
        "noise_floor_pct": OVERHEAD_NOISE_FLOOR_PCT,
    }


def measure_telemetry_overhead(
    trace: ExecutionTrace,
    profiler_trace: Optional[ProfilerTrace] = None,
    device: str = "A100",
    min_seconds: float = 0.2,
) -> Dict[str, float]:
    """Per-op cost of an attached, *enabled* telemetry hook.

    Same interleaved-chunk / min-ratio protocol as
    :func:`measure_profiler_overhead` (see there for why the minimum chunk
    ratio is the assertable estimate), but the hooked loop carries a
    :class:`~repro.telemetry.TelemetryHook` bound to an enabled
    :class:`~repro.telemetry.Tracer` — the worst case the ISSUE's <5%
    budget covers; the disabled path never reaches the hook at all.
    """
    import gc

    from repro.telemetry import TelemetryHook, Tracer

    def build_context(hooks: Sequence[Any]) -> ReplayContext:
        config = ReplayConfig(device=device, vectorized=False, profile=False)
        context = ReplayContext(
            trace=trace,
            profiler_trace=profiler_trace,
            config=config,
            hooks=list(hooks),
        )
        ReplayPipeline.build_only().run_context(context)
        InitCommsStage().run(context)
        return context

    stage = ExecuteStage()
    baseline_ctx = build_context(())
    traced_ctx = build_context((TelemetryHook(Tracer()),))
    ops = 0
    for context in (baseline_ctx, traced_ctx):
        ops, _skipped = stage._replay_once(context, context.runtime)
    if ops <= 0:
        raise ValueError("trace has no supported operators to benchmark")

    clock = time.perf_counter
    chunks = 3
    chunk_seconds = max(min_seconds, 0.05)
    best_ratio = float("inf")
    best_baseline_s = float("inf")
    best_traced_s = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _chunk in range(chunks):
            baseline_total = 0.0
            traced_total = 0.0
            baseline_first = True
            while baseline_total + traced_total < chunk_seconds:
                first, second = (
                    (baseline_ctx, traced_ctx)
                    if baseline_first
                    else (traced_ctx, baseline_ctx)
                )
                start = clock()
                stage._replay_once(first, first.runtime)
                mid = clock()
                stage._replay_once(second, second.runtime)
                end = clock()
                baseline_s, traced_s = (
                    (mid - start, end - mid)
                    if baseline_first
                    else (end - mid, mid - start)
                )
                baseline_total += baseline_s
                traced_total += traced_s
                best_baseline_s = min(best_baseline_s, baseline_s)
                best_traced_s = min(best_traced_s, traced_s)
                baseline_first = not baseline_first
            best_ratio = min(best_ratio, traced_total / baseline_total)
    finally:
        if gc_was_enabled:
            gc.enable()
    raw_pct = (best_ratio - 1.0) * 100.0
    return {
        "baseline_ops_per_sec": ops / best_baseline_s,
        "telemetry_ops_per_sec": ops / best_traced_s,
        "overhead_pct": max(0.0, raw_pct),
        "overhead_raw_pct": raw_pct,
        "noise_floor_pct": OVERHEAD_NOISE_FLOOR_PCT,
    }


# ----------------------------------------------------------------------
# The full benchmark
# ----------------------------------------------------------------------
def run_benchmark(
    device: str = "A100",
    workloads: Sequence[str] = BENCH_WORKLOADS,
    min_seconds: float = 0.2,
) -> Dict[str, Any]:
    """Scalar vs vectorized replay throughput for every bench workload,
    plus the profiler- and telemetry-overhead sections; the BENCH file's
    payload."""
    report: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": "repro.bench.throughput",
        "device": device,
        "workloads": {},
    }
    rm_capture: Optional[Tuple[ExecutionTrace, Optional[ProfilerTrace]]] = None
    for name in workloads:
        trace, profiler_trace = capture_bench_workload(name, device=device)
        if name == HEADLINE_WORKLOAD:
            rm_capture = (trace, profiler_trace)
        scalar = measure_execute_throughput(
            trace, profiler_trace, device=device, vectorized=False,
            min_seconds=min_seconds,
        )
        vectorized = measure_execute_throughput(
            trace, profiler_trace, device=device, vectorized=True,
            min_seconds=min_seconds,
        )
        report["workloads"][name] = {
            "ops": int(scalar["ops"]),
            "scalar_ops_per_sec": scalar["ops_per_sec"],
            "vectorized_ops_per_sec": vectorized["ops_per_sec"],
            "speedup": vectorized["ops_per_sec"] / scalar["ops_per_sec"],
        }
    if rm_capture is not None:
        report["profiler"] = measure_profiler_overhead(
            rm_capture[0], rm_capture[1], device=device, min_seconds=min_seconds
        )
        report["telemetry_overhead"] = measure_telemetry_overhead(
            rm_capture[0], rm_capture[1], device=device, min_seconds=min_seconds
        )
    return report


def write_report(report: Dict[str, Any], path: Optional[Path] = None) -> Path:
    """Write the BENCH payload to its trajectory location (repo root).

    The :data:`PRESERVED_SECTIONS` (``cluster_scale``,
    ``daemon_throughput``) are written by different benchmarks than the
    main throughput run, so whichever writes second must not clobber the
    others' sections.
    """
    from repro.service import serialize

    target = Path(path) if path is not None else _repo_root() / BENCH_FILENAME
    missing = [name for name in PRESERVED_SECTIONS if name not in report]
    if missing and target.exists():
        try:
            previous = json.loads(target.read_text())
        except ValueError:
            previous = {}
        carried = {name: previous[name] for name in missing if name in previous}
        if carried:
            report = {**report, **carried}
    target.write_text(serialize.dumps(report) + "\n")
    return target


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a BENCH payload."""
    from repro.bench.reporting import format_table

    rows = [
        [
            name,
            entry["ops"],
            f"{entry['scalar_ops_per_sec']:,.0f}",
            f"{entry['vectorized_ops_per_sec']:,.0f}",
            f"{entry['speedup']:.1f}x",
        ]
        for name, entry in report["workloads"].items()
    ]
    text = format_table(
        ["workload", "ops", "scalar ops/s", "vectorized ops/s", "speedup"],
        rows,
        title=f"Replay-engine throughput on {report['device']}",
    )
    profiler = report.get("profiler")
    if profiler:
        text += (
            f"\nprofiler overhead: {profiler['overhead_pct']:.1f}% "
            f"({profiler['baseline_ops_per_sec']:,.0f} -> "
            f"{profiler['profiled_ops_per_sec']:,.0f} ops/s, scalar loop)"
        )
    telemetry = report.get("telemetry_overhead")
    if telemetry:
        text += (
            f"\ntelemetry overhead: {telemetry['overhead_pct']:.1f}% "
            f"({telemetry['baseline_ops_per_sec']:,.0f} -> "
            f"{telemetry['telemetry_ops_per_sec']:,.0f} ops/s, scalar loop)"
        )
    return text


# ----------------------------------------------------------------------
# Event-scheduler fleet throughput (the cluster_scale BENCH section)
# ----------------------------------------------------------------------
def synthesize_fleet(world_size: int, device: str = "A100") -> List[ExecutionTrace]:
    """A what-if fleet at ``world_size`` ranks from ONE captured rank.

    Capturing 1024 real ranks would dwarf the measurement, so the scale
    benchmark captures a single DDP-RM rank-0 trace whose collectives are
    recorded over the full world, then clones it across every rank: node
    lists are shared (replay never mutates them) and only the per-trace
    ``metadata["rank"]`` differs.  Every clone issues the same collective
    sequence, which is exactly what keeps the rendezvous fully matched.
    """
    from repro.workloads.ddp import DistributedRunner
    from repro.workloads.rm import RMConfig, RMWorkload

    # Deliberately tiny: the benchmark measures the *scheduler* across
    # many ranks, not the per-op pricing (BENCH_WORKLOADS covers that).
    config = RMConfig(
        batch_size=16,
        num_tables=4,
        rows_per_table=512,
        embedding_dim=16,
        pooling_factor=2,
        bottom_mlp=(32, 16),
        top_mlp=(32, 16),
    )
    runner = DistributedRunner(
        lambda rank, world: RMWorkload(config, rank=rank, world_size=world),
        world_size=world_size,
        device=device,
    )
    template = runner.run_rank(0).execution_trace
    return [
        ExecutionTrace(nodes=template.nodes, metadata={**template.metadata, "rank": rank})
        for rank in range(world_size)
    ]


def run_cluster_scale_benchmark(
    world_size: int = 1024,
    device: str = "A100",
    topology: Optional[str] = None,
) -> Dict[str, Any]:
    """Replay a synthetic ``world_size``-rank DDP-RM fleet and measure the
    scheduler's fleet throughput in rank-ops/s (total replayed operators
    across every rank, per wall-clock second)."""
    from repro.cluster.engine import ClusterReplayer

    fleet = synthesize_fleet(world_size, device=device)
    replay_config = ReplayConfig(
        device=device,
        iterations=1,
        warmup_iterations=0,
        world_size=world_size,
        topology=topology,
    )
    replayer = ClusterReplayer(replay_config)
    start = time.perf_counter()
    report = replayer.replay(fleet)
    wall_s = time.perf_counter() - start
    total_ops = sum(rank.summary.replayed_ops for rank in report.ranks)
    return {
        "world_size": world_size,
        "engine": "event",
        "topology": topology if topology is not None else "flat",
        "replicas": report.num_replicas,
        "total_replayed_ops": total_ops,
        "wall_s": wall_s,
        "rank_ops_per_sec": total_ops / wall_s if wall_s > 0 else 0.0,
        "matched_collectives": report.matched_collectives,
        "critical_path_us": report.critical_path_us,
    }


def format_cluster_scale(section: Dict[str, Any]) -> str:
    """Human-readable one-liner for the cluster_scale BENCH section."""
    return (
        f"cluster scale: {section['replicas']} ranks ({section['engine']} engine, "
        f"{section['topology']} topology) replayed "
        f"{section['total_replayed_ops']:,} ops in {section['wall_s']:.1f}s "
        f"= {section['rank_ops_per_sec']:,.0f} rank-ops/s; "
        f"critical path {section['critical_path_us']:,.0f}us, "
        f"{section['matched_collectives']} matched collectives"
    )


def merge_section(
    name: str, section: Dict[str, Any], path: Optional[Path] = None
) -> Path:
    """Record one named section into the BENCH trajectory file, preserving
    everything the other benchmarks already wrote."""
    target = Path(path) if path is not None else _repo_root() / BENCH_FILENAME
    report: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": "repro.bench.throughput",
    }
    if target.exists():
        try:
            report = json.loads(target.read_text())
        except ValueError:
            pass
    report[name] = section
    return write_report(report, path=target)


def merge_cluster_scale(
    section: Dict[str, Any], path: Optional[Path] = None
) -> Path:
    """Record the cluster_scale section (see :func:`merge_section`)."""
    return merge_section(CLUSTER_SCALE_SECTION, section, path=path)


# ----------------------------------------------------------------------
# Daemon throughput: sustained jobs/sec under concurrent clients
# ----------------------------------------------------------------------
def run_daemon_throughput_benchmark(
    clients: int = 8,
    jobs_per_client: int = 4,
    workers: int = 4,
) -> Dict[str, Any]:
    """Drive a real :class:`~repro.daemon.daemon.ReplayDaemon` (with its
    HTTP front-end) from ``clients`` concurrent client threads and measure
    sustained jobs/sec through the full path: HTTP submit -> fair queue ->
    executor -> replay -> HTTP result.

    Every job is a one-point sweep over the small param_linear bench
    trace with a unique power-limit axis value, so nothing is served from
    cache and each job prices real replay work.
    """
    import shutil
    import tempfile
    import threading

    from repro.daemon.client import DaemonClient
    from repro.daemon.daemon import ReplayDaemon
    from repro.daemon.server import DaemonServer
    from repro.service.repository import TraceRepository

    root = Path(tempfile.mkdtemp(prefix="repro-daemon-bench-"))
    try:
        trace, _ = capture_bench_workload("param_linear")
        repo_dir = root / "traces"
        TraceRepository(repo_dir).add("param_linear", trace)

        daemon = ReplayDaemon(root / "state", workers=workers)
        states: List[str] = []
        states_lock = threading.Lock()
        with DaemonServer(daemon, port=0) as server:

            def drive(index: int) -> None:
                client = DaemonClient(server.url, client_id=f"client-{index}")
                job_ids = []
                for offset in range(jobs_per_client):
                    payload = {
                        "repo": str(repo_dir),
                        "traces": None,
                        "devices": ["A100"],
                        # Unique axis value per job: no cache hits.
                        "axes": {"power_limit_w": [200.0 + 10.0 * index + offset]},
                        "base": {"iterations": 1},
                    }
                    job_ids.append(client.submit("sweep", payload)["id"])
                finals = [client.wait(job_id, timeout=600.0) for job_id in job_ids]
                with states_lock:
                    states.extend(final["state"] for final in finals)

            threads = [
                threading.Thread(target=drive, args=(index,), name=f"bench-client-{index}")
                for index in range(clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall_s = time.perf_counter() - start
            cache_entries = daemon.cache.stats()["entries"]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    total = clients * jobs_per_client
    completed = sum(1 for state in states if state == "completed")
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "workers": workers,
        "jobs_total": total,
        "jobs_completed": completed,
        "wall_s": wall_s,
        "jobs_per_sec": completed / wall_s if wall_s > 0 else 0.0,
        "cache_entries": cache_entries,
    }


def format_daemon_throughput(section: Dict[str, Any]) -> str:
    """Human-readable one-liner for the daemon_throughput BENCH section."""
    return (
        f"daemon throughput: {section['clients']} clients x "
        f"{section['jobs_per_client']} jobs ({section['workers']} workers) -> "
        f"{section['jobs_completed']}/{section['jobs_total']} completed in "
        f"{section['wall_s']:.1f}s = {section['jobs_per_sec']:.1f} jobs/s"
    )


def merge_daemon_throughput(
    section: Dict[str, Any], path: Optional[Path] = None
) -> Path:
    """Record the daemon_throughput section (see :func:`merge_section`)."""
    return merge_section(DAEMON_THROUGHPUT_SECTION, section, path=path)
