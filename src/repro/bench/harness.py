"""Capture / run / replay / compare harness.

This is the workflow of Figure 3 wired end to end for a single process:

1. run the workload with the ExecutionGraphObserver and profiler attached
   and capture one iteration (:func:`capture_workload`),
2. measure the original workload (:func:`run_original`),
3. replay the captured traces as a generated benchmark
   (:func:`replay_capture`),
4. compare the two (:func:`compare_workload`), producing the Table 4 /
   Figure 5 quantities: original time, original time excluding unsupported
   operators, replay time, and the macro system metrics of both runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.pipeline import ReplayHook, ReplayPipeline, run_replay
from repro.core.registry import ReplaySupport
from repro.core.replayer import ReplayConfig, ReplayResult
from repro.core.selection import OperatorSelector
from repro.et.trace import ExecutionTrace
from repro.hardware.counters import SystemMetrics, compute_system_metrics
from repro.hardware.gpu import TimelineStats
from repro.torchsim.kernel import KernelLaunch
from repro.torchsim.observer import ExecutionGraphObserver
from repro.torchsim.profiler import Profiler, ProfilerTrace
from repro.torchsim.runtime import Runtime
from repro.workloads.base import Workload


@dataclass
class CaptureResult:
    """Traces and measurements captured from one original iteration."""

    workload_name: str
    device: str
    execution_trace: ExecutionTrace
    profiler_trace: ProfilerTrace
    iteration_time_us: float
    timeline_stats: TimelineStats
    system_metrics: SystemMetrics
    kernel_launches: List[KernelLaunch] = field(default_factory=list)


@dataclass
class OriginalRunResult:
    """Measurements of the original workload over several iterations."""

    workload_name: str
    device: str
    iteration_times_us: List[float]
    timeline_stats: TimelineStats
    system_metrics: SystemMetrics
    kernel_launches: List[KernelLaunch] = field(default_factory=list)

    @property
    def mean_iteration_time_us(self) -> float:
        if not self.iteration_times_us:
            return 0.0
        return sum(self.iteration_times_us) / len(self.iteration_times_us)

    @property
    def mean_iteration_time_ms(self) -> float:
        return self.mean_iteration_time_us / 1e3


@dataclass
class ComparisonResult:
    """Original-vs-replay comparison for one workload (one Table 4 row)."""

    workload_name: str
    device: str
    original_time_us: float
    original_time_excl_unsupported_us: float
    replay_time_us: float
    original_metrics: SystemMetrics
    replay_metrics: SystemMetrics
    coverage_count: float
    coverage_time: float
    capture: Optional[CaptureResult] = None
    replay: Optional[ReplayResult] = None

    @property
    def replay_error(self) -> float:
        """Relative error of the replay vs the calibrated original time."""
        reference = self.original_time_excl_unsupported_us
        if reference <= 0:
            return 0.0
        return abs(self.replay_time_us - reference) / reference


# ----------------------------------------------------------------------
def capture_workload(
    workload: Workload,
    device: str = "A100",
    warmup_iterations: int = 1,
    power_limit_w: Optional[float] = None,
    runtime: Optional[Runtime] = None,
) -> CaptureResult:
    """Capture the execution trace and profiler trace of one iteration.

    Mirrors the hook placement of Section 4.1: warm-up iterations run
    without instrumentation, then exactly one iteration is captured.
    """
    runtime = runtime if runtime is not None else Runtime(device=device, power_limit_w=power_limit_w)
    observer = runtime.attach_observer(ExecutionGraphObserver())
    observer.register_callback(None)
    profiler = runtime.attach_profiler(Profiler())

    for _ in range(warmup_iterations):
        workload.run_iteration(runtime)
        runtime.synchronize()

    observer.start()
    profiler.start()
    start = runtime.synchronize()
    workload.run_iteration(runtime)
    end = runtime.synchronize()
    observer.stop()
    profiler.stop()

    stats = runtime.timeline_stats(window_start=start, window_end=end)
    metrics = compute_system_metrics(stats, runtime.spec, power_limit_w)
    trace = observer.trace
    assert trace is not None
    trace.metadata.update({"workload": workload.name, "device": device, "world_size": 1})
    launches = [k for k in runtime.gpu.launches if k.start is not None and k.start >= start]
    return CaptureResult(
        workload_name=workload.name,
        device=device,
        execution_trace=trace,
        profiler_trace=profiler.trace,
        iteration_time_us=end - start,
        timeline_stats=stats,
        system_metrics=metrics,
        kernel_launches=launches,
    )


def run_original(
    workload: Workload,
    device: str = "A100",
    iterations: int = 1,
    warmup_iterations: int = 1,
    power_limit_w: Optional[float] = None,
) -> OriginalRunResult:
    """Measure the original workload without trace capture."""
    runtime = Runtime(device=device, power_limit_w=power_limit_w)
    for _ in range(warmup_iterations):
        workload.run_iteration(runtime)
        runtime.synchronize()
    start = runtime.synchronize()
    times = workload.run_training(runtime, iterations)
    end = runtime.synchronize()
    stats = runtime.timeline_stats(window_start=start, window_end=end)
    metrics = compute_system_metrics(stats, runtime.spec, power_limit_w)
    launches = [k for k in runtime.gpu.launches if k.start is not None and k.start >= start]
    return OriginalRunResult(
        workload_name=workload.name,
        device=device,
        iteration_times_us=times,
        timeline_stats=stats,
        system_metrics=metrics,
        kernel_launches=launches,
    )


def replay_capture(
    capture: CaptureResult,
    config: Optional[ReplayConfig] = None,
    support: Optional[ReplaySupport] = None,
    hooks: Optional[List[ReplayHook]] = None,
    pipeline: Optional[ReplayPipeline] = None,
) -> ReplayResult:
    """Replay a captured iteration as a generated benchmark.

    Runs through the stage pipeline; pass ``hooks`` to observe the replay
    or ``pipeline`` to customise its stages.
    """
    config = config if config is not None else ReplayConfig(device=capture.device)
    return run_replay(
        capture.execution_trace,
        config=config,
        profiler_trace=capture.profiler_trace,
        support=support,
        hooks=hooks,
        pipeline=pipeline,
    )


def unsupported_gpu_time_us(capture: CaptureResult, support: Optional[ReplaySupport] = None) -> float:
    """GPU time of the operators the replay policy cannot reproduce."""
    selector = OperatorSelector(support if support is not None else ReplaySupport())
    selection = selector.select(capture.execution_trace, capture.profiler_trace)
    coverage = selection.coverage()
    return coverage.total_gpu_time_us - coverage.supported_gpu_time_us


@dataclass
class DistributedComparisonResult:
    """Original-vs-replay comparison for a distributed fleet (Table 5)."""

    workload_name: str
    device: str
    world_size: int
    ranks_simulated: int
    #: Per-GPU averages of the original run (``DistributedRunner.aggregate_metrics``).
    original: Dict[str, float]
    #: The same per-GPU averages measured from the cluster co-replay.
    replay: Dict[str, float]
    #: The full cluster report (per-rank timelines, skew, critical path).
    report: "ClusterReport"  # noqa: F821 - imported lazily in compare_distributed

    @property
    def replay_error(self) -> Dict[str, float]:
        """Relative error of the replay per metric."""
        errors: Dict[str, float] = {}
        for key, value in self.original.items():
            if value:
                errors[key] = abs(self.replay.get(key, 0.0) - value) / abs(value)
        return errors


def compare_distributed(
    workload_factory,
    world_size: int,
    device: str = "A100",
    ranks_to_simulate: Optional[int] = None,
    config: Optional[ReplayConfig] = None,
    warmup_iterations: int = 1,
) -> DistributedComparisonResult:
    """One Table-5 row through the multi-rank replay engine.

    Runs the workload across ``world_size`` simulated ranks (optionally
    capturing only ``ranks_to_simulate`` of them — data-parallel ranks are
    symmetric), co-replays the captured fleet through
    :class:`~repro.cluster.engine.ClusterReplayer`, and compares the
    per-GPU averages of both runs.
    """
    from repro.cluster.engine import ClusterReplayer
    from repro.workloads.ddp import DistributedRunner

    if config is None:
        config = ReplayConfig(device=device)
    runner = DistributedRunner(
        workload_factory,
        world_size=world_size,
        device=device,
        interconnect=config.interconnect,
        warmup_iterations=warmup_iterations,
        power_limit_w=config.power_limit_w,
    )
    captures = runner.run(ranks_to_simulate=ranks_to_simulate)
    original = DistributedRunner.aggregate_metrics(captures)

    report = ClusterReplayer(config).replay(captures)
    count = float(report.num_replicas) or 1.0
    replay = {
        "execution_time_ms": sum(r.mean_iteration_time_us for r in report.ranks) / count / 1e3,
        "sm_utilization_pct": sum(r.summary.sm_utilization_pct for r in report.ranks) / count,
        "hbm_bandwidth_gbps": sum(r.summary.hbm_bandwidth_gbps for r in report.ranks) / count,
        "gpu_power_w": sum(r.summary.gpu_power_w for r in report.ranks) / count,
    }
    return DistributedComparisonResult(
        workload_name=captures[0].execution_trace.metadata.get("workload", ""),
        device=device,
        world_size=world_size,
        ranks_simulated=len(captures),
        original=original,
        replay=replay,
        report=report,
    )


def compare_workload(
    workload: Workload,
    device: str = "A100",
    replay_iterations: int = 1,
    power_limit_w: Optional[float] = None,
    support: Optional[ReplaySupport] = None,
    config: Optional[ReplayConfig] = None,
    capture: Optional[CaptureResult] = None,
) -> ComparisonResult:
    """Produce one Table 4 row: original, calibrated original and replay time."""
    if capture is None:
        capture = capture_workload(workload, device=device, power_limit_w=power_limit_w)
    if config is None:
        config = ReplayConfig(device=device, iterations=replay_iterations, power_limit_w=power_limit_w)
    replay = replay_capture(capture, config=config, support=support)

    missing = unsupported_gpu_time_us(capture, support)
    calibrated = max(0.0, capture.iteration_time_us - missing)
    return ComparisonResult(
        workload_name=capture.workload_name,
        device=device,
        original_time_us=capture.iteration_time_us,
        original_time_excl_unsupported_us=calibrated,
        replay_time_us=replay.mean_iteration_time_us,
        original_metrics=capture.system_metrics,
        replay_metrics=replay.system_metrics,
        coverage_count=replay.coverage.count_coverage,
        coverage_time=replay.coverage.time_coverage,
        capture=capture,
        replay=replay,
    )
