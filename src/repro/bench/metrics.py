"""Metric post-processing for the evaluation.

Turns raw kernel launches into the quantities the paper plots:

* per-kernel micro-architectural counters, aggregated by kernel name
  (Figure 6 compares the top-10 kernels of ResNet by runtime),
* per-operator GPU-time breakdowns (the zoomed-in comparison of Figure 4),
* normalisation helpers shared by the figure-regeneration benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.hardware.counters import KernelCounters, compute_kernel_counters
from repro.hardware.specs import DeviceSpec
from repro.torchsim.kernel import KernelLaunch


def kernel_counters_by_name(
    launches: Iterable[KernelLaunch], spec: DeviceSpec
) -> Dict[str, KernelCounters]:
    """Duration-weighted micro counters aggregated per kernel name."""
    grouped: Dict[str, List[KernelLaunch]] = {}
    for launch in launches:
        grouped.setdefault(launch.desc.name, []).append(launch)

    aggregated: Dict[str, KernelCounters] = {}
    for name, group in grouped.items():
        total_duration = sum(launch.duration for launch in group)
        if total_duration <= 0:
            total_duration = float(len(group))
            weights = [1.0] * len(group)
        else:
            weights = [launch.duration for launch in group]
        per_launch = [
            compute_kernel_counters(launch.desc, spec, launch.duration) for launch in group
        ]
        aggregated[name] = KernelCounters(
            kernel_name=name,
            ipc=sum(c.ipc * w for c, w in zip(per_launch, weights)) / total_duration,
            l1_hit_rate=sum(c.l1_hit_rate * w for c, w in zip(per_launch, weights)) / total_duration,
            l2_hit_rate=sum(c.l2_hit_rate * w for c, w in zip(per_launch, weights)) / total_duration,
            sm_throughput=sum(c.sm_throughput * w for c, w in zip(per_launch, weights)) / total_duration,
            duration_us=sum(launch.duration for launch in group),
        )
    return aggregated


def top_kernel_names(launches: Iterable[KernelLaunch], top_k: int = 10) -> List[str]:
    """Kernel names ranked by total runtime (Figure 6's top-10 selection)."""
    totals: Dict[str, float] = {}
    for launch in launches:
        totals[launch.desc.name] = totals.get(launch.desc.name, 0.0) + launch.duration
    return sorted(totals, key=lambda name: totals[name], reverse=True)[:top_k]


def operator_gpu_time_breakdown(launches: Iterable[KernelLaunch]) -> Dict[str, float]:
    """Total GPU kernel time per launching operator name."""
    totals: Dict[str, float] = {}
    for launch in launches:
        totals[launch.op_name] = totals.get(launch.op_name, 0.0) + launch.duration
    return totals


def normalize_to(reference: Dict[str, float], values: Dict[str, float]) -> Dict[str, float]:
    """Normalise ``values`` to ``reference`` key by key (ratio = value/ref)."""
    normalized: Dict[str, float] = {}
    for key, ref in reference.items():
        if ref == 0:
            normalized[key] = 0.0 if values.get(key, 0.0) == 0 else float("inf")
        else:
            normalized[key] = values.get(key, 0.0) / ref
    return normalized
