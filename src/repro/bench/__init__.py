"""Benchmark harness utilities.

This subpackage contains the glue the evaluation (tests/ and benchmarks/)
uses to regenerate every table and figure of the paper:

* :mod:`~repro.bench.harness` — capture a workload's traces, run the
  original, replay the generated benchmark, and compare the two,
* :mod:`~repro.bench.metrics` — per-kernel counter aggregation (Figure 6)
  and operator-time breakdowns (Figure 4),
* :mod:`~repro.bench.reporting` — plain-text table/series formatting plus
  the static reference data of Table 1,
* :mod:`~repro.bench.aggregate` — roll-ups over batch replay results
  (per-job tables, per-device aggregates, cache accounting) used by the
  ``repro.service`` sweep layer and CLI,
* :mod:`~repro.bench.throughput` — the replay *engine's* own throughput
  (scalar vs vectorized ops/sec, profiler overhead), written to the
  versioned ``BENCH_replay_throughput.json`` trajectory file.
"""

from repro.bench.harness import (
    CaptureResult,
    ComparisonResult,
    OriginalRunResult,
    capture_workload,
    compare_workload,
    replay_capture,
    run_original,
)
from repro.bench.metrics import kernel_counters_by_name, top_kernel_names, operator_gpu_time_breakdown
from repro.bench.reporting import format_table, format_series, MLPERF_TRAINING_BENCHMARKS
from repro.bench.aggregate import (
    aggregate_by_device,
    cache_summary_line,
    format_batch_report,
    format_device_aggregate,
)
from repro.bench.throughput import (
    BENCH_FILENAME,
    BENCH_SCHEMA_VERSION,
    format_report as format_throughput_report,
    measure_execute_throughput,
    measure_profiler_overhead,
    run_benchmark as run_throughput_benchmark,
    write_report as write_throughput_report,
)

__all__ = [
    "aggregate_by_device",
    "cache_summary_line",
    "format_batch_report",
    "format_device_aggregate",
    "CaptureResult",
    "ComparisonResult",
    "OriginalRunResult",
    "capture_workload",
    "compare_workload",
    "replay_capture",
    "run_original",
    "kernel_counters_by_name",
    "top_kernel_names",
    "operator_gpu_time_breakdown",
    "format_table",
    "format_series",
    "MLPERF_TRAINING_BENCHMARKS",
    "BENCH_FILENAME",
    "BENCH_SCHEMA_VERSION",
    "format_throughput_report",
    "measure_execute_throughput",
    "measure_profiler_overhead",
    "run_throughput_benchmark",
    "write_throughput_report",
]
