"""repro.telemetry — unified tracing, metrics and timeline export.

The package gives every layer of the replay system one observability
surface:

``tracer``
    :class:`Span` / :class:`Tracer` — wall-time *and* virtual-time spans
    with a correlation context (job id, sweep point, rank) that nests
    across threads.  A disabled tracer records nothing and costs one
    attribute read per call site.

``hook``
    :class:`TelemetryHook` — a :class:`~repro.core.pipeline.ReplayHook`
    that turns pipeline stage boundaries into spans.  It rides the
    existing ``notify = bool(context.hooks)`` fast path, so replays
    without telemetry keep the zero-overhead guarantee and byte-identical
    results/digests.

``metrics``
    :class:`MetricsRegistry` — counters, gauges and histograms with a
    versioned snapshot schema and Prometheus text exposition (served by
    the daemon's ``GET /metrics``).

``export``
    Chrome-trace/Perfetto JSON export: wall-time spans become host
    lanes, virtual-time slices become per-rank Gantt lanes
    (compute / comms / exposed-comm / stall), written by
    ``python -m repro replay-dist --trace-out`` and
    ``session.export_trace()``.

``logging``
    :func:`get_logger` — structured JSON-lines logging that stamps the
    tracer's current correlation scope onto every record (used by the
    daemon's HTTP access log).
"""

from repro.telemetry.tracer import (
    TELEMETRY_SCHEMA_VERSION,
    Span,
    Tracer,
)
from repro.telemetry.hook import TelemetryHook
from repro.telemetry.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.export import (
    record_cluster_timeline,
    record_replay_timeline,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.logging import JsonLineFormatter, get_logger

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "TelemetryHook",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_replay_timeline",
    "record_cluster_timeline",
    "to_chrome_trace",
    "write_chrome_trace",
    "JsonLineFormatter",
    "get_logger",
]
