"""Counters, gauges and histograms with Prometheus text exposition.

The registry is deliberately small: named metrics with optional help
strings, thread-safe updates, a versioned :meth:`MetricsRegistry.snapshot`
payload (serialized through ``service/serialize.py``) and
:meth:`MetricsRegistry.render_prometheus` producing the text format
``text/plain; version=0.0.4`` that the daemon's ``GET /metrics`` serves.
No labels — the daemon's cardinality needs are covered by per-state
counters, and keeping the model flat keeps exposition trivially correct.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Version of the snapshot payload schema.  Adding keys is fine;
#: renaming or removing existing ones is breaking.
METRICS_SCHEMA_VERSION = 1

#: Default histogram buckets (seconds) — tuned for job durations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


def _format_value(value: float) -> str:
    """Prometheus renders integers without a trailing ``.0``."""
    if value == int(value):
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} counter")
        lines.append(f"{self.name} {_format_value(self.value)}")
        return lines


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} gauge")
        lines.append(f"{self.name} {_format_value(self.value)}")
        return lines


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": {
                    repr(bound): count
                    for bound, count in zip(self.buckets, self._bucket_counts)
                },
                "sum": self._sum,
                "count": self._count,
            }

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        with self._lock:
            cumulative = 0
            for bound, count in zip(self.buckets, self._bucket_counts):
                cumulative = count  # counts are already cumulative per-bucket
                lines.append(
                    f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            lines.append(f"{self.name}_sum {_format_value(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry; the single source the daemon exposes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        kwargs: Dict[str, Any] = {"help": help}
        if buckets is not None:
            kwargs["buckets"] = buckets
        return self._get_or_create(name, Histogram, **kwargs)

    # ------------------------------------------------------------------
    def counter_totals(self) -> Dict[str, float]:
        """Just the counters — folded into the daemon's ``/health``."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: m.snapshot() for m in metrics if isinstance(m, Counter)}

    def snapshot(self) -> Dict[str, Any]:
        """Versioned JSON-able payload of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                histograms[metric.name] = metric.snapshot()
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
